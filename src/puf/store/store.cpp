#include "puf/store/store.hpp"

#include <filesystem>
#include <utility>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace xpuf::puf::store {

namespace {

/// Issued-challenge keys per ISSUE record: 65536 keys of a 4096-stage model
/// stay far below kMaxRecordPayloadBytes, so compaction and snapshotting of
/// arbitrarily large ledgers never produce an oversized record.
constexpr std::size_t kLedgerKeysPerRecord = 65536;

std::string shard_gauge_name(std::uint32_t k) {
  return "db.shard_ledger_size." + std::to_string(k);
}

/// Appends ISSUE records covering [first, last), chunked so each record's
/// payload stays bounded.
template <typename Iter>
void append_issue_records(std::vector<std::uint8_t>& out, std::uint64_t device_id,
                          std::uint32_t stages, Iter first, Iter last) {
  XPUF_REQUIRE(stages > 0, "issue records need the model geometry");
  std::vector<std::string> chunk;
  while (first != last) {
    chunk.clear();
    for (std::size_t n = 0; n < kLedgerKeysPerRecord && first != last; ++n, ++first)
      chunk.push_back(*first);
    encode_record(out, OpType::kIssue, device_id, encode_ledger(stages, chunk));
  }
}

}  // namespace

EnrollmentStore::EnrollmentStore(ShardedLog log, StoreOptions options)
    : options_(options),
      log_(std::move(log)),
      cache_(options.cache_capacity),
      shard_mu_(std::make_unique<std::mutex[]>(log_.n_shards())),
      cache_mu_(std::make_unique<std::mutex>()),
      shard_ledger_total_(std::make_unique<std::atomic<std::uint64_t>[]>(log_.n_shards())) {
  auto& registry = MetricsRegistry::global();
  shard_gauges_.reserve(log_.n_shards());
  for (std::uint32_t k = 0; k < log_.n_shards(); ++k)
    shard_gauges_.push_back(&registry.gauge(shard_gauge_name(k)));
}

EnrollmentStore EnrollmentStore::open(const std::string& dir, StoreOptions options) {
  XPUF_TRACE_SPAN("db.store_open");
  EnrollmentStore store(ShardedLog::open(dir, options.n_shards), options);
  for (std::uint32_t k = 0; k < store.n_shards(); ++k) {
    store.replay_shard(k);
    store.refresh_ledger_gauges(k);
  }
  static Gauge& devices = MetricsRegistry::global().gauge("db.devices");
  devices.set(static_cast<double>(store.index_.size()));
  return store;
}

void EnrollmentStore::replay_shard(std::uint32_t k) {
  static Counter& truncations = MetricsRegistry::global().counter("db.log_truncated");
  AppendLog& shard = log_.shard(k);
  std::vector<std::uint8_t> bytes;
  shard.read_all(bytes);
  const auto corrupt = [&](std::uint64_t offset, const std::string& what) {
    return ParseError("store log " + shard.path() + " at offset " +
                      std::to_string(offset) + ": " + what);
  };
  std::uint64_t offset = 0;
  while (offset < bytes.size()) {
    RecordView view;
    const RecordStatus status = decode_record(bytes.data(), bytes.size(), offset, view);
    if (status == RecordStatus::kTruncated) {
      // Torn tail from a crash mid-append: everything before `offset` is
      // intact (each record is crc'd), so cut the residue and carry on.
      truncations.add(1);
      shard.truncate_to(offset);
      return;
    }
    if (status != RecordStatus::kOk) throw corrupt(offset, to_string(status));
    switch (view.op) {
      case OpType::kRegister: {
        if (index_.count(view.device_id) != 0)
          throw corrupt(offset, "REGISTER for already-registered device " +
                                    std::to_string(view.device_id));
        std::uint32_t puf_count = 0;
        std::uint32_t stages = 0;
        if (peek_model_shape(view.payload, view.payload_len, puf_count, stages) !=
                RecordStatus::kOk ||
            view.payload_len != model_payload_bytes(puf_count, stages))
          throw corrupt(offset, "malformed model payload");
        index_[view.device_id] =
            DeviceRecord{k, view.begin, view.end - view.begin, puf_count, stages};
        ledgers_[view.device_id];
        break;
      }
      case OpType::kRevoke: {
        if (view.payload_len != 0) throw corrupt(offset, "REVOKE with a payload");
        const auto it = ledgers_.find(view.device_id);
        if (it == ledgers_.end() || index_.erase(view.device_id) == 0)
          throw corrupt(offset, "REVOKE for unknown device " +
                                    std::to_string(view.device_id));
        shard_ledger_total_[k].fetch_sub(it->second.size(), std::memory_order_relaxed);
        ledgers_.erase(it);
        break;
      }
      case OpType::kIssue: {
        const auto it = ledgers_.find(view.device_id);
        if (it == ledgers_.end())
          throw corrupt(offset, "orphaned ISSUE record for unknown device " +
                                    std::to_string(view.device_id) +
                                    " — issued challenges must never be forgotten");
        std::uint32_t stages = 0;
        std::vector<std::string> keys;
        if (decode_ledger(view.payload, view.payload_len, stages, keys) != RecordStatus::kOk)
          throw corrupt(offset, "malformed ledger payload");
        if (stages != index_.at(view.device_id).stages)
          throw corrupt(offset, "ledger geometry does not match the registered model");
        std::uint64_t inserted = 0;
        for (std::string& key : keys)
          if (it->second.insert(std::move(key)).second) ++inserted;
        shard_ledger_total_[k].fetch_add(inserted, std::memory_order_relaxed);
        break;
      }
    }
    offset = view.end;
  }
}

std::vector<std::uint64_t> EnrollmentStore::device_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(index_.size());
  for (const auto& [id, rec] : index_) ids.push_back(id);
  return ids;
}

const DeviceRecord& EnrollmentStore::device_record(std::uint64_t device_id) const {
  const auto it = index_.find(device_id);
  XPUF_REQUIRE(it != index_.end(), "unknown device id");
  return it->second;
}

void EnrollmentStore::append_record(std::uint32_t shard,
                                    const std::vector<std::uint8_t>& bytes) {
  XPUF_REQUIRE(shard < n_shards(), "shard index out of range");
  std::lock_guard<std::mutex> lock(shard_mu_[shard]);
  log_.shard(shard).append(bytes);
}

void EnrollmentStore::register_device(ServerModel model) {
  XPUF_REQUIRE(!knows(model.chip_id()), "device already registered");
  XPUF_REQUIRE(model.puf_count() >= 1 && model.puf_count() <= kMaxPufsPerModel,
               "model PUF count outside store bounds");
  XPUF_REQUIRE(model.stages() >= 1 && model.stages() <= kMaxStagesPerModel,
               "model stage count outside store bounds");
  static Counter& evictions = MetricsRegistry::global().counter("db.cache_evictions");
  const std::uint64_t id = model.chip_id();
  const std::uint32_t k = log_.shard_of(id);
  std::vector<std::uint8_t> bytes;
  encode_record(bytes, OpType::kRegister, id, encode_model(model));
  std::uint64_t end = 0;
  {
    std::lock_guard<std::mutex> lock(shard_mu_[k]);
    end = log_.shard(k).append(bytes);
  }
  index_[id] = DeviceRecord{k, end - bytes.size(), bytes.size(),
                            static_cast<std::uint32_t>(model.puf_count()),
                            static_cast<std::uint32_t>(model.stages())};
  ledgers_[id];
  auto shared = std::make_shared<const ServerModel>(std::move(model));
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    evictions.add(cache_.put(id, std::move(shared)));
  }
  static Gauge& devices = MetricsRegistry::global().gauge("db.devices");
  devices.set(static_cast<double>(index_.size()));
}

void EnrollmentStore::revoke_device(std::uint64_t device_id) {
  XPUF_REQUIRE(knows(device_id), "revoking an unknown device");
  const std::uint32_t k = log_.shard_of(device_id);
  std::vector<std::uint8_t> bytes;
  encode_record(bytes, OpType::kRevoke, device_id, {});
  append_record(k, bytes);
  shard_ledger_total_[k].fetch_sub(ledgers_.at(device_id).size(),
                                   std::memory_order_relaxed);
  index_.erase(device_id);
  ledgers_.erase(device_id);
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    cache_.erase(device_id);
  }
  refresh_ledger_gauges(k);
  static Gauge& devices = MetricsRegistry::global().gauge("db.devices");
  devices.set(static_cast<double>(index_.size()));
}

std::shared_ptr<const ServerModel> EnrollmentStore::model(std::uint64_t device_id) const {
  auto& registry = MetricsRegistry::global();
  static Counter& hits = registry.counter("db.cache_hits");
  static Counter& misses = registry.counter("db.cache_misses");
  static Counter& evictions = registry.counter("db.cache_evictions");
  const auto it = index_.find(device_id);
  XPUF_REQUIRE(it != index_.end(), "unknown device id");
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    if (auto cached = cache_.get(device_id)) {
      hits.add(1);
      return cached;
    }
  }
  misses.add(1);
  const DeviceRecord& rec = it->second;
  std::vector<std::uint8_t> bytes;
  {
    std::lock_guard<std::mutex> lock(shard_mu_[rec.shard]);
    log_.shard(rec.shard).read_at(rec.offset, rec.length, bytes);
  }
  RecordView view;
  if (decode_record(bytes.data(), bytes.size(), 0, view) != RecordStatus::kOk ||
      view.op != OpType::kRegister || view.device_id != device_id)
    throw ParseError("stored REGISTER record for device " + std::to_string(device_id) +
                     " is corrupt");
  auto decoded = std::make_shared<ServerModel>();
  if (decode_model(view.payload, view.payload_len, device_id, *decoded) != RecordStatus::kOk)
    throw ParseError("stored model payload for device " + std::to_string(device_id) +
                     " is corrupt");
  std::shared_ptr<const ServerModel> shared = std::move(decoded);
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    evictions.add(cache_.put(device_id, shared));
  }
  return shared;
}

std::set<std::string>& EnrollmentStore::ledger(std::uint64_t device_id) {
  const auto it = ledgers_.find(device_id);
  XPUF_REQUIRE(it != ledgers_.end(), "unknown device id");
  return it->second;
}

const std::set<std::string>& EnrollmentStore::ledger(std::uint64_t device_id) const {
  const auto it = ledgers_.find(device_id);
  XPUF_REQUIRE(it != ledgers_.end(), "unknown device id");
  return it->second;
}

void EnrollmentStore::record_issued(std::uint64_t device_id, std::uint32_t stages,
                                    const std::vector<std::string>& fresh) {
  XPUF_REQUIRE(knows(device_id), "unknown device id");
  if (fresh.empty()) return;
  const std::uint32_t k = log_.shard_of(device_id);
  std::vector<std::uint8_t> bytes;
  append_issue_records(bytes, device_id, stages, fresh.begin(), fresh.end());
  append_record(k, bytes);
  shard_ledger_total_[k].fetch_add(fresh.size(), std::memory_order_relaxed);
  refresh_ledger_gauges(k);
}

std::uint64_t EnrollmentStore::issued_total() const {
  std::uint64_t total = 0;
  for (std::uint32_t k = 0; k < n_shards(); ++k)
    total += shard_ledger_total_[k].load(std::memory_order_relaxed);
  return total;
}

std::uint64_t EnrollmentStore::shard_issued_total(std::uint32_t k) const {
  XPUF_REQUIRE(k < n_shards(), "shard index out of range");
  return shard_ledger_total_[k].load(std::memory_order_relaxed);
}

void EnrollmentStore::refresh_ledger_gauges(std::uint32_t shard) const {
  static Gauge& fleet = MetricsRegistry::global().gauge("db.ledger_size");
  fleet.set(static_cast<double>(issued_total()));
  shard_gauges_[shard]->set(
      static_cast<double>(shard_ledger_total_[shard].load(std::memory_order_relaxed)));
}

void EnrollmentStore::compact() {
  XPUF_TRACE_SPAN("db.compact");
  for (std::uint32_t k = 0; k < n_shards(); ++k) {
    std::vector<std::uint8_t> fresh;
    std::map<std::uint64_t, DeviceRecord> rewritten;
    for (const auto& [id, rec] : index_) {
      if (rec.shard != k) continue;
      // Copy the REGISTER record bytes verbatim: the model survives
      // compaction bit-exactly without ever being decoded.
      std::vector<std::uint8_t> record_bytes;
      log_.shard(k).read_at(rec.offset, rec.length, record_bytes);
      DeviceRecord updated = rec;
      updated.offset = fresh.size();
      fresh.insert(fresh.end(), record_bytes.begin(), record_bytes.end());
      rewritten[id] = updated;
      const std::set<std::string>& keys = ledgers_.at(id);
      append_issue_records(fresh, id, rec.stages, keys.begin(), keys.end());
    }
    if (fresh.empty()) {
      // No live devices route here; truncating (one syscall) beats renaming
      // an empty file into place, and replay of an empty shard is a no-op.
      log_.shard(k).truncate_to(0);
    } else {
      log_.shard(k).replace_with(fresh);
    }
    for (const auto& [id, rec] : rewritten) index_[id] = rec;
  }
}

std::size_t EnrollmentStore::cache_size() const {
  std::lock_guard<std::mutex> lock(*cache_mu_);
  return cache_.size();
}

void write_snapshot(const std::string& dir, std::uint32_t default_shards,
                    const std::map<std::size_t, ServerModel>& models,
                    const std::map<std::size_t, std::set<std::string>>& ledgers) {
  XPUF_REQUIRE(default_shards > 0, "write_snapshot: zero shards");
  ensure_directory(dir);
  std::uint32_t n_shards = default_shards;
  if (!read_manifest(dir, n_shards))
    write_file_atomic(dir + "/store_manifest", encode_manifest(n_shards));
  std::vector<std::vector<std::uint8_t>> buffers(n_shards);
  for (const auto& [id, m] : models) {
    std::vector<std::uint8_t>& out = buffers[id % n_shards];
    encode_record(out, OpType::kRegister, id, encode_model(m));
    const auto lit = ledgers.find(id);
    if (lit == ledgers.end() || lit->second.empty()) continue;
    append_issue_records(out, id, static_cast<std::uint32_t>(m.stages()),
                         lit->second.begin(), lit->second.end());
  }
  namespace fs = std::filesystem;
  for (std::uint32_t k = 0; k < n_shards; ++k) {
    const std::string path = dir + "/shard_" + std::to_string(k) + ".log";
    if (buffers[k].empty()) {
      // A shard with no surviving devices is represented by file absence —
      // a crash right here just leaves an empty-equivalent old file.
      fs::remove(path);
      fs::remove(path + ".tmp");
    } else {
      write_file_atomic(path, buffers[k]);
    }
  }
}

}  // namespace xpuf::puf::store
