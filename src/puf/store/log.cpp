// The store's stdio-based record log predates the net/async syscall wrapper
// layer and reports fopen/fwrite failures through errno_suffix(); its errno
// reads never branch on EINTR/EAGAIN, so routing them through the socket
// wrappers would add a dependency without removing a hazard.
// xpuf-lint: allow-file(raw-syscall)
#include "puf/store/log.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "puf/store/record.hpp"

namespace xpuf::puf::store {

namespace {

std::string errno_suffix() {
  return errno != 0 ? std::string(": ") + std::strerror(errno) : std::string();
}

/// Reads a whole file; returns false when the file does not exist, throws
/// AccessError on any other I/O failure.
bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  XPUF_REQUIRE(!path.empty(), "read_file: empty path");
  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    throw AccessError("cannot stat " + path + errno_suffix());
  }
  out.resize(static_cast<std::size_t>(end));
  std::fseek(f, 0, SEEK_SET);
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (got != out.size()) throw AccessError("short read from " + path);
  return true;
}

}  // namespace

void write_file_atomic(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  XPUF_REQUIRE(!bytes.empty(), "write_file_atomic: refusing to commit an empty file");
  const std::string tmp = path + ".tmp";
  errno = 0;
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw AccessError("cannot create " + tmp + errno_suffix());
  const std::size_t put = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (put != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw AccessError("short write to " + tmp);
  }
  errno = 0;
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw AccessError("cannot rename " + tmp + " over " + path + errno_suffix());
}

// --- AppendLog ---------------------------------------------------------------

AppendLog::~AppendLog() {
  if (file_ != nullptr) std::fclose(file_);
}

AppendLog::AppendLog(AppendLog&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)),
      size_(std::exchange(other.size_, 0)) {}

AppendLog& AppendLog::operator=(AppendLog&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

AppendLog AppendLog::open(const std::string& path) {
  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) throw AccessError("cannot open log " + path + errno_suffix());
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    throw AccessError("cannot stat log " + path + errno_suffix());
  }
  AppendLog log;
  log.file_ = f;
  log.path_ = path;
  log.size_ = static_cast<std::uint64_t>(end);
  return log;
}

std::uint64_t AppendLog::append(const std::vector<std::uint8_t>& bytes) {
  XPUF_REQUIRE(is_open(), "append on a closed log");
  std::fseek(file_, 0, SEEK_END);
  const std::size_t put = std::fwrite(bytes.data(), 1, bytes.size(), file_);
  if (put != bytes.size() || std::fflush(file_) != 0)
    throw AccessError("short append to " + path_);
  size_ += bytes.size();
  return size_;
}

void AppendLog::read_all(std::vector<std::uint8_t>& out) const {
  XPUF_REQUIRE(is_open(), "read_all on a closed log");
  out.resize(static_cast<std::size_t>(size_));
  std::fseek(file_, 0, SEEK_SET);
  const std::size_t got = std::fread(out.data(), 1, out.size(), file_);
  if (got != out.size()) throw AccessError("short read from " + path_);
}

void AppendLog::read_at(std::uint64_t offset, std::uint64_t length,
                        std::vector<std::uint8_t>& out) const {
  XPUF_REQUIRE(is_open(), "read_at on a closed log");
  if (offset > size_ || length > size_ - offset)
    throw AccessError("read window [" + std::to_string(offset) + ", +" +
                      std::to_string(length) + ") outside " + path_ + " (size " +
                      std::to_string(size_) + "): index/log mismatch");
  out.resize(static_cast<std::size_t>(length));
  std::fseek(file_, static_cast<long>(offset), SEEK_SET);
  const std::size_t got = std::fread(out.data(), 1, out.size(), file_);
  if (got != out.size()) throw AccessError("short read from " + path_);
}

void AppendLog::truncate_to(std::uint64_t new_size) {
  XPUF_REQUIRE(is_open(), "truncate_to on a closed log");
  XPUF_REQUIRE(new_size <= size_, "truncate_to cannot grow the log");
  std::fflush(file_);
  if (ftruncate(fileno(file_), static_cast<off_t>(new_size)) != 0)
    throw AccessError("cannot truncate " + path_ + errno_suffix());
  size_ = new_size;
}

void AppendLog::replace_with(const std::vector<std::uint8_t>& bytes) {
  XPUF_REQUIRE(is_open(), "replace_with on a closed log");
  const std::string tmp = path_ + ".tmp";
  errno = 0;
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw AccessError("cannot create " + tmp + errno_suffix());
  const std::size_t put = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (put != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw AccessError("short write to " + tmp);
  }
  // The rename is the commit point: readers see the complete old file up to
  // this call and the complete new file after it, never a mix.
  std::fclose(file_);
  file_ = nullptr;
  errno = 0;
  if (std::rename(tmp.c_str(), path_.c_str()) != 0)
    throw AccessError("cannot rename " + tmp + " over " + path_ + errno_suffix());
  file_ = std::fopen(path_.c_str(), "r+b");
  if (file_ == nullptr) throw AccessError("cannot reopen " + path_ + errno_suffix());
  size_ = bytes.size();
}

// --- ShardedLog --------------------------------------------------------------

bool read_manifest(const std::string& dir, std::uint32_t& n_shards) {
  const std::string manifest_path = dir + "/store_manifest";
  std::vector<std::uint8_t> manifest;
  if (!read_file(manifest_path, manifest)) return false;
  const RecordStatus status = decode_manifest(manifest.data(), manifest.size(), n_shards);
  if (status != RecordStatus::kOk)
    throw ParseError("store manifest " + manifest_path + ": " + std::string(to_string(status)));
  return true;
}

ShardedLog ShardedLog::open(const std::string& dir, std::uint32_t default_shards) {
  XPUF_REQUIRE(default_shards > 0, "ShardedLog: zero shards");
  ensure_directory(dir);
  std::uint32_t n_shards = default_shards;
  if (!read_manifest(dir, n_shards))
    write_file_atomic(dir + "/store_manifest", encode_manifest(n_shards));
  ShardedLog log;
  log.dir_ = dir;
  log.shards_.reserve(n_shards);
  for (std::uint32_t k = 0; k < n_shards; ++k)
    log.shards_.push_back(AppendLog::open(dir + "/shard_" + std::to_string(k) + ".log"));
  return log;
}

bool ShardedLog::is_store_dir(const std::string& dir) {
  return std::filesystem::exists(std::filesystem::path(dir) / "store_manifest");
}

AppendLog& ShardedLog::shard(std::uint32_t k) {
  XPUF_REQUIRE(k < shards_.size(), "shard index out of range");
  return shards_[k];
}

const AppendLog& ShardedLog::shard(std::uint32_t k) const {
  XPUF_REQUIRE(k < shards_.size(), "shard index out of range");
  return shards_[k];
}

}  // namespace xpuf::puf::store
