#include "puf/store/cache.hpp"

#include "common/error.hpp"

namespace xpuf::puf::store {

ModelCache::ModelCache(std::size_t capacity) : capacity_(capacity) {
  XPUF_REQUIRE(capacity >= 1, "ModelCache: capacity must be >= 1");
}

std::shared_ptr<const ServerModel> ModelCache::get(std::uint64_t device_id) {
  const auto it = by_id_.find(device_id);
  if (it == by_id_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

std::size_t ModelCache::put(std::uint64_t device_id,
                            std::shared_ptr<const ServerModel> model) {
  const auto it = by_id_.find(device_id);
  if (it != by_id_.end()) {
    it->second->second = std::move(model);
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  lru_.emplace_front(device_id, std::move(model));
  by_id_[device_id] = lru_.begin();
  if (by_id_.size() <= capacity_) return 0;
  by_id_.erase(lru_.back().first);
  lru_.pop_back();
  return 1;
}

bool ModelCache::erase(std::uint64_t device_id) {
  const auto it = by_id_.find(device_id);
  if (it == by_id_.end()) return false;
  lru_.erase(it->second);
  by_id_.erase(it);
  return true;
}

void ModelCache::clear() {
  lru_.clear();
  by_id_.clear();
}

}  // namespace xpuf::puf::store
