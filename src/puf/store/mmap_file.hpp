// Read-only file mapping for zero-copy model serving.
//
// A MappedFile maps a fixed-length prefix of a shard log so the store's LRU
// cold path can hand out ModelViews whose weight spans point straight into
// the page cache — no pread, no record decode, no ServerModel allocation.
// The mapping is length-frozen at creation: records appended after the map
// was taken lie beyond size() and are served through the pread+decode
// fallback until the next remap (compaction remaps every shard).
//
// Lifetime: the store holds each shard's mapping as a shared_ptr and every
// handed-out view copies that shared_ptr as its owner, so compaction can
// replace-and-remap a shard while old views stay valid — the superseded
// mapping is unmapped when its last view dies. Failure to map (no file,
// empty prefix, exotic filesystem) is not an error; the store just keeps
// serving through the decode path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace xpuf::puf::store {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  /// Maps the first `length` bytes of `path` read-only (advised for random
  /// access). Returns null on any failure — absent file, zero length, or a
  /// refused mmap — so callers can fall back to pread serving without
  /// distinguishing why.
  static std::shared_ptr<const MappedFile> map_prefix(const std::string& path,
                                                      std::uint64_t length);

  const std::uint8_t* data() const { return data_; }
  std::uint64_t size() const { return size_; }

 private:
  std::uint8_t* data_ = nullptr;
  std::uint64_t size_ = 0;
};

}  // namespace xpuf::puf::store
