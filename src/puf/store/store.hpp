// EnrollmentStore — the crash-safe, bounded-memory device registry.
//
// Durability model: every mutation (register / revoke / issue) is one
// framed, crc'd record appended to the device's shard log and flushed
// before the call returns. Recovery replays each shard front to back; a
// torn tail record (the residue of a crash mid-append) is truncated away
// and counted, while any *mid-file* corruption is a loud ParseError — the
// ledger is the replay defense, so guessing at its contents is a security
// bug. Because replay applies ops in order, a revoked device can never be
// resurrected by older records, and compaction (write-temp-then-rename per
// shard) only ever swaps a complete old shard for a complete new one.
//
// Memory model: the index (device -> shard/offset/geometry) and the
// issued-challenge ledgers stay resident; model weights — the bulk of the
// bytes — are decoded on demand through a capacity-bounded LRU cache
// (db.cache_hits / db.cache_misses / db.cache_evictions), so serving a
// million-device fleet needs cache_capacity models in RAM, not a million.
//
// Concurrency contract mirrors ServerDatabase: model()/ledger()/
// record_issued() are safe concurrently for DISTINCT registered devices
// (the cache has its own lock, appends take the shard's lock);
// register_device / revoke_device / compact / open require exclusive
// access. Gauges are last-writer-wins under concurrent issue, like every
// gauge in the registry; counters are exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "puf/store/cache.hpp"
#include "puf/store/log.hpp"
#include "puf/store/record.hpp"

namespace xpuf {
class Gauge;
}

namespace xpuf::puf::store {

struct StoreOptions {
  std::uint32_t n_shards = 16;      ///< shard fan-out for a NEW store dir
  std::size_t cache_capacity = 1024;  ///< resident decoded models (>= 1)
};

/// Index entry: where a device's REGISTER record lives and its geometry.
struct DeviceRecord {
  std::uint32_t shard = 0;
  std::uint64_t offset = 0;   ///< record begin within the shard file
  std::uint64_t length = 0;   ///< framed record length (header+payload+crc)
  std::uint32_t puf_count = 0;
  std::uint32_t stages = 0;
};

class EnrollmentStore {
 public:
  /// Opens (creating if needed) the store at `dir` and replays the shard
  /// logs into the in-memory index/ledgers. Torn tails are truncated and
  /// counted under db.log_truncated; mid-file corruption throws ParseError.
  static EnrollmentStore open(const std::string& dir, StoreOptions options);

  /// True when `dir` holds a binary store (manifest present).
  static bool is_store_dir(const std::string& dir) { return ShardedLog::is_store_dir(dir); }

  const std::string& dir() const { return log_.dir(); }
  const StoreOptions& options() const { return options_; }
  std::uint32_t n_shards() const { return log_.n_shards(); }

  std::size_t device_count() const { return index_.size(); }
  bool knows(std::uint64_t device_id) const { return index_.count(device_id) != 0; }
  std::vector<std::uint64_t> device_ids() const;
  const DeviceRecord& device_record(std::uint64_t device_id) const;

  /// Appends a REGISTER record (flushed before returning) and warms the
  /// cache. Rejects duplicate ids and out-of-bounds geometry.
  void register_device(ServerModel model);

  /// Appends a REVOKE record and drops the device from index, ledger and
  /// cache. Replay order guarantees it stays gone after recovery.
  void revoke_device(std::uint64_t device_id);

  /// The device's model, through the LRU cache (hit) or decoded from its
  /// REGISTER record (miss). The shared_ptr keeps the model alive across a
  /// concurrent eviction.
  std::shared_ptr<const ServerModel> model(std::uint64_t device_id) const;

  /// The device's memory-resident replay ledger (packed challenge keys).
  std::set<std::string>& ledger(std::uint64_t device_id);
  const std::set<std::string>& ledger(std::uint64_t device_id) const;

  /// Durably acknowledges freshly issued challenges: appends one ISSUE
  /// record with `fresh` (already inserted into ledger() by the caller) and
  /// updates the fleet-wide + per-shard ledger gauges. The append's flush
  /// is the acknowledgement point the torture test pins.
  void record_issued(std::uint64_t device_id, std::uint32_t stages,
                     const std::vector<std::string>& fresh);

  /// Fleet-wide issued-challenge total (sum of per-shard totals).
  std::uint64_t issued_total() const;
  std::uint64_t shard_issued_total(std::uint32_t k) const;

  /// Rewrites every shard to its minimal form — one REGISTER record plus
  /// chunked ISSUE records per live device, revoked devices gone — each
  /// shard committed via write-temp-then-rename. Register record bytes are
  /// copied verbatim, so models stay bit-exact without being decoded.
  void compact();

  /// Current end offset of shard `k` — the durable high-water mark the
  /// truncation torture test records after each op.
  std::uint64_t shard_size(std::uint32_t k) const { return log_.shard(k).size(); }

  std::size_t cache_size() const;
  std::size_t cache_capacity() const { return cache_.capacity(); }

 private:
  EnrollmentStore(ShardedLog log, StoreOptions options);

  void replay_shard(std::uint32_t k);
  void append_record(std::uint32_t shard, const std::vector<std::uint8_t>& bytes);
  void refresh_ledger_gauges(std::uint32_t shard) const;

  StoreOptions options_;
  ShardedLog log_;
  std::map<std::uint64_t, DeviceRecord> index_;
  std::map<std::uint64_t, std::set<std::string>> ledgers_;
  mutable ModelCache cache_;
  std::unique_ptr<std::mutex[]> shard_mu_;
  mutable std::unique_ptr<std::mutex> cache_mu_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> shard_ledger_total_;
  std::vector<Gauge*> shard_gauges_;
};

/// Writes a complete binary store (manifest + shard logs) for an in-memory
/// registry, honouring an existing manifest's fan-out when `dir` already is
/// a store. Every file is committed via write-temp-then-rename and shard
/// files with no surviving devices are removed — at no point can a reader
/// observe a partial file. This is ServerDatabase::save()'s backend and the
/// CSV -> binary migration writer.
void write_snapshot(const std::string& dir, std::uint32_t default_shards,
                    const std::map<std::size_t, ServerModel>& models,
                    const std::map<std::size_t, std::set<std::string>>& ledgers);

}  // namespace xpuf::puf::store
