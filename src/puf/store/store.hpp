// EnrollmentStore — the crash-safe, bounded-memory device registry.
//
// Durability model: every mutation (register / revoke / issue) is one
// framed, crc'd record appended to the device's shard log and flushed
// before the call returns. Recovery replays each shard front to back; a
// torn tail record (the residue of a crash mid-append) is truncated away
// and counted, while any *mid-file* corruption is a loud ParseError — the
// ledger is the replay defense, so guessing at its contents is a security
// bug. Because replay applies ops in order, a revoked device can never be
// resurrected by older records, and compaction (write-temp-then-rename per
// shard) only ever swaps a complete old shard for a complete new one.
//
// Memory model: the index (device -> shard/offset/geometry) and the
// issued-challenge ledgers stay resident; model weights — the bulk of the
// bytes — are decoded on demand through a capacity-bounded LRU cache
// (db.cache_hits / db.cache_misses / db.cache_evictions), so serving a
// million-device fleet needs cache_capacity models in RAM, not a million.
// The model_view() path goes further: a cache miss whose REGISTER record
// lies inside the shard's read-only mapping is served zero-copy straight
// from the page cache (db.mmap_hits / db.mmap_bytes) — crc-checked per
// view, no decode, no allocation, flat RSS at any fleet size.
//
// Concurrency contract mirrors ServerDatabase: model()/model_view()/
// ledger()/record_issued() and the pool accessors (record_pool /
// read_pool_slice / set_pool_head) are safe concurrently for DISTINCT
// registered devices
// (the cache has its own lock, appends take the shard's lock);
// register_device / revoke_device / compact / open require exclusive
// access. Gauges are last-writer-wins under concurrent issue, like every
// gauge in the registry; counters are exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "puf/store/cache.hpp"
#include "puf/store/log.hpp"
#include "puf/store/mmap_file.hpp"
#include "puf/store/record.hpp"

namespace xpuf {
class Gauge;
}

namespace xpuf::puf::store {

struct StoreOptions {
  std::uint32_t n_shards = 16;      ///< shard fan-out for a NEW store dir
  std::size_t cache_capacity = 1024;  ///< resident decoded models (>= 1)
};

/// Index entry: where a device's REGISTER record lives and its geometry.
struct DeviceRecord {
  std::uint32_t shard = 0;
  std::uint64_t offset = 0;   ///< record begin within the shard file
  std::uint64_t length = 0;   ///< framed record length (header+payload+crc)
  std::uint32_t puf_count = 0;
  std::uint32_t stages = 0;
};

/// Index entry for a device's latest POOL record plus the in-memory drain
/// cursor. `head` (entries already handed out this process lifetime) is NOT
/// durable: after a crash it resets to 0 and the replay ledger filters out
/// the already-issued prefix, so a pool entry can never be issued twice.
struct PoolSlot {
  std::uint32_t shard = 0;
  std::uint64_t offset = 0;   ///< POOL record begin within the shard file
  std::uint64_t length = 0;   ///< framed record length
  std::uint32_t count = 0;    ///< entries in the record
  std::uint32_t head = 0;     ///< entries drained (in-memory only)
  std::uint32_t epoch = 0;    ///< pool generation (refills bump it)
  std::uint64_t cursor = 0;   ///< candidate-stream index the next refill resumes at
};

class EnrollmentStore {
 public:
  /// Opens (creating if needed) the store at `dir` and replays the shard
  /// logs into the in-memory index/ledgers. Torn tails are truncated and
  /// counted under db.log_truncated; mid-file corruption throws ParseError.
  static EnrollmentStore open(const std::string& dir, StoreOptions options);

  /// True when `dir` holds a binary store (manifest present).
  static bool is_store_dir(const std::string& dir) { return ShardedLog::is_store_dir(dir); }

  const std::string& dir() const { return log_.dir(); }
  const StoreOptions& options() const { return options_; }
  std::uint32_t n_shards() const { return log_.n_shards(); }

  std::size_t device_count() const { return index_.size(); }
  bool knows(std::uint64_t device_id) const { return index_.count(device_id) != 0; }
  std::vector<std::uint64_t> device_ids() const;
  const DeviceRecord& device_record(std::uint64_t device_id) const;

  /// Appends a REGISTER record (flushed before returning) and warms the
  /// cache. Rejects duplicate ids and out-of-bounds geometry.
  void register_device(ServerModel model);

  /// Appends a REVOKE record and drops the device from index, ledger and
  /// cache. Replay order guarantees it stays gone after recovery.
  void revoke_device(std::uint64_t device_id);

  /// The device's model, through the LRU cache (hit) or decoded from its
  /// REGISTER record (miss). The shared_ptr keeps the model alive across a
  /// concurrent eviction.
  std::shared_ptr<const ServerModel> model(std::uint64_t device_id) const;

  /// Zero-copy-preferring model access: LRU hit (db.cache_hits) -> view over
  /// the cached ServerModel; else, when the record lies inside the shard's
  /// read-only mapping, a crc-checked view whose weight spans point straight
  /// into the mapped bytes (db.mmap_hits / db.mmap_bytes — no decode, no
  /// allocation, no cache churn); else the decode path of model()
  /// (db.cache_misses). The view's owner keeps the backing mapping or model
  /// alive, so it stays valid across compaction and eviction.
  ModelView model_view(std::uint64_t device_id) const;

  /// Durably replaces the device's stable-challenge pool: appends one POOL
  /// record (flushed before returning) and points the device's pool slot at
  /// it with head = 0. Replay keeps the record appended last.
  void record_pool(std::uint64_t device_id, const PoolPayload& pool);

  /// Reads and decodes the device's latest POOL record in full. Returns
  /// false when the device has no pool. Corrupt stored bytes throw
  /// ParseError.
  bool read_pool(std::uint64_t device_id, PoolPayload& out) const;

  /// Appends entries [first, first + n) of the device's pool — packed keys
  /// and expected bits — to `keys`/`expected`. The stored record is
  /// crc-checked on every read (served from the shard mapping when the
  /// record lies inside it, pread otherwise), and only the requested slice
  /// is materialized, so a drain of c challenges costs O(record + c), not
  /// O(pool) allocations. Requires first + n <= the slot's count.
  void read_pool_slice(std::uint64_t device_id, std::uint32_t first, std::uint32_t n,
                       std::vector<std::string>& keys,
                       std::vector<std::uint8_t>& expected) const;

  /// Copies the device's pool slot into `out`; false when it has none.
  bool pool_slot(std::uint64_t device_id, PoolSlot& out) const;

  /// Advances the in-memory drain cursor (monotonic, <= count).
  void set_pool_head(std::uint64_t device_id, std::uint32_t head);

  /// Undrained pool entries across the fleet (sum of count - head).
  std::uint64_t pool_entries_total() const;

  /// The device's memory-resident replay ledger (packed challenge keys).
  std::set<std::string>& ledger(std::uint64_t device_id);
  const std::set<std::string>& ledger(std::uint64_t device_id) const;

  /// Durably acknowledges freshly issued challenges: appends one ISSUE
  /// record with `fresh` (already inserted into ledger() by the caller) and
  /// updates the fleet-wide + per-shard ledger gauges. The append's flush
  /// is the acknowledgement point the torture test pins.
  void record_issued(std::uint64_t device_id, std::uint32_t stages,
                     const std::vector<std::string>& fresh);

  /// Fleet-wide issued-challenge total (sum of per-shard totals).
  std::uint64_t issued_total() const;
  std::uint64_t shard_issued_total(std::uint32_t k) const;

  /// Rewrites every shard to its minimal form — one REGISTER record plus
  /// chunked ISSUE records per live device, revoked devices gone — each
  /// shard committed via write-temp-then-rename. Register record bytes are
  /// copied verbatim, so models stay bit-exact without being decoded.
  void compact();

  /// Current end offset of shard `k` — the durable high-water mark the
  /// truncation torture test records after each op.
  std::uint64_t shard_size(std::uint32_t k) const { return log_.shard(k).size(); }

  std::size_t cache_size() const;
  std::size_t cache_capacity() const { return cache_.capacity(); }

 private:
  EnrollmentStore(ShardedLog log, StoreOptions options);

  void replay_shard(std::uint32_t k);
  void append_record(std::uint32_t shard, const std::vector<std::uint8_t>& bytes);
  void refresh_ledger_gauges(std::uint32_t shard) const;

  void remap_shard(std::uint32_t k);

  StoreOptions options_;
  ShardedLog log_;
  std::map<std::uint64_t, DeviceRecord> index_;
  std::map<std::uint64_t, PoolSlot> pools_;
  /// Fleet-wide undrained pool entries (sum of count - head over pools_),
  /// maintained incrementally at every slot mutation so the auth.pool_size
  /// gauge refresh on the issue() hot path is O(1) instead of an O(fleet)
  /// map scan. Guarded by pool_mu_.
  std::uint64_t pool_undrained_ = 0;
  /// Per-shard read-only mappings for zero-copy serving. Length-frozen at
  /// open()/compact(); records appended later fall back to the decode path.
  /// Handed-out views co-own their mapping, so swapping a shard's entry
  /// never invalidates a live view.
  std::vector<std::shared_ptr<const MappedFile>> maps_;
  std::map<std::uint64_t, std::set<std::string>> ledgers_;
  mutable ModelCache cache_;
  std::unique_ptr<std::mutex[]> shard_mu_;
  mutable std::unique_ptr<std::mutex> cache_mu_;
  mutable std::unique_ptr<std::mutex> pool_mu_;  ///< guards pools_
  std::unique_ptr<std::atomic<std::uint64_t>[]> shard_ledger_total_;
  std::vector<Gauge*> shard_gauges_;
};

/// Writes a complete binary store (manifest + shard logs) for an in-memory
/// registry, honouring an existing manifest's fan-out when `dir` already is
/// a store. Every file is committed via write-temp-then-rename and shard
/// files with no surviving devices are removed — at no point can a reader
/// observe a partial file. This is ServerDatabase::save()'s backend and the
/// CSV -> binary migration writer.
void write_snapshot(const std::string& dir, std::uint32_t default_shards,
                    const std::map<std::size_t, ServerModel>& models,
                    const std::map<std::size_t, std::set<std::string>>& ledgers);

}  // namespace xpuf::puf::store
