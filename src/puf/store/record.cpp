#include "puf/store/record.hpp"

#include <array>
#include <utility>

#include "common/error.hpp"
#include "linalg/vector.hpp"

namespace xpuf::puf::store {

bool is_known_op(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(OpType::kRegister) &&
         raw <= static_cast<std::uint8_t>(OpType::kPad);
}

const char* to_string(OpType op) {
  switch (op) {
    case OpType::kRegister: return "REGISTER";
    case OpType::kRevoke: return "REVOKE";
    case OpType::kIssue: return "ISSUE";
    case OpType::kPool: return "POOL";
    case OpType::kPad: return "PAD";
  }
  return "UNKNOWN";
}

const char* to_string(RecordStatus status) {
  switch (status) {
    case RecordStatus::kOk: return "ok";
    case RecordStatus::kTruncated: return "truncated record";
    case RecordStatus::kBadMagic: return "bad magic";
    case RecordStatus::kBadVersion: return "unsupported version";
    case RecordStatus::kBadOp: return "unknown op type";
    case RecordStatus::kBadLength: return "payload length out of range";
    case RecordStatus::kBadChecksum: return "checksum mismatch";
    case RecordStatus::kBadPayload: return "malformed payload";
  }
  return "unknown record status";
}

// --- crc32 ------------------------------------------------------------------

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (std::uint32_t k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

/// Fixed byte footprint of a REGISTER payload's geometry + beta prefix:
/// u32 puf_count + u32 stages (the f64 betas follow but are not part of the
/// put_uN accounting).
constexpr std::uint32_t kModelFixedBytes = 8;
/// Fixed byte footprint of an ISSUE payload prefix: u32 count + u32 stages.
constexpr std::uint32_t kLedgerFixedBytes = 8;

std::uint64_t row_bytes_for(std::uint64_t stages) { return (stages + 7) / 8; }

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::uint64_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint64_t i = 0; i < size; ++i)
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

// --- record framing ---------------------------------------------------------

void encode_record(std::vector<std::uint8_t>& out, OpType op, std::uint64_t device_id,
                   const std::vector<std::uint8_t>& payload) {
  XPUF_REQUIRE(payload.size() <= kMaxRecordPayloadBytes,
               "encode_record: payload exceeds kMaxRecordPayloadBytes");
  out.reserve(out.size() + kRecordHeaderBytes + payload.size() + kRecordTrailerBytes);
  const std::size_t begin = out.size();
  put_u16(out, kRecordMagic);
  put_u8(out, kStoreVersion);
  put_u8(out, static_cast<std::uint8_t>(op));
  put_u64(out, device_id);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32(out, crc32(out.data() + begin, out.size() - begin));
}

RecordStatus decode_record(const std::uint8_t* data, std::uint64_t size,
                           std::uint64_t offset, RecordView& out) {
  if (offset > size) return RecordStatus::kTruncated;
  RecordReader reader(data + offset, size - offset);
  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t op = 0;
  std::uint64_t device_id = 0;
  std::uint32_t payload_len = 0;
  if (!reader.read_u16(magic)) return RecordStatus::kTruncated;
  if (magic != kRecordMagic) return RecordStatus::kBadMagic;
  if (!reader.read_u8(version)) return RecordStatus::kTruncated;
  if (version != kStoreVersion) return RecordStatus::kBadVersion;
  if (!reader.read_u8(op)) return RecordStatus::kTruncated;
  if (!is_known_op(op)) return RecordStatus::kBadOp;
  if (!reader.read_u64(device_id)) return RecordStatus::kTruncated;
  if (!reader.read_u32(payload_len)) return RecordStatus::kTruncated;
  if (payload_len > kMaxRecordPayloadBytes) return RecordStatus::kBadLength;
  if (!reader.skip(payload_len)) return RecordStatus::kTruncated;
  std::uint32_t stored_crc = 0;
  if (!reader.read_u32(stored_crc)) return RecordStatus::kTruncated;
  const std::uint64_t body_bytes = kRecordHeaderBytes + payload_len;
  if (crc32(data + offset, body_bytes) != stored_crc) return RecordStatus::kBadChecksum;
  out.op = static_cast<OpType>(op);
  out.device_id = device_id;
  out.payload = data + offset + kRecordHeaderBytes;
  out.payload_len = payload_len;
  out.begin = offset;
  out.end = offset + body_bytes + kRecordTrailerBytes;
  return RecordStatus::kOk;
}

// --- model payload -----------------------------------------------------------

std::vector<std::uint8_t> encode_model(const ServerModel& model) {
  const std::size_t puf_count = model.puf_count();
  const std::size_t stages = model.stages();
  const std::size_t per_puf = (4 + stages + 1) * sizeof(double);
  std::vector<std::uint8_t> out;
  out.reserve(kModelFixedBytes + 2 * sizeof(double) + puf_count * per_puf);
  put_u32(out, static_cast<std::uint32_t>(puf_count));
  put_u32(out, static_cast<std::uint32_t>(stages));
  put_f64(out, model.betas().beta0);
  put_f64(out, model.betas().beta1);
  for (std::size_t p = 0; p < puf_count; ++p) {
    const PufEnrollment& e = model.puf(p);
    put_f64(out, e.thresholds.thr0);
    put_f64(out, e.thresholds.thr1);
    put_f64(out, e.train_r_squared);
    put_f64(out, e.fit_time_ms);
    const linalg::Vector& w = e.model.weights();
    for (std::size_t i = 0; i < w.size(); ++i) put_f64(out, w[i]);
  }
  return out;
}

RecordStatus decode_model(const std::uint8_t* payload, std::uint32_t len,
                          std::uint64_t device_id, ServerModel& out) {
  RecordReader reader(payload, len);
  std::uint32_t puf_count = 0;
  std::uint32_t stages = 0;
  if (!reader.read_u32(puf_count)) return RecordStatus::kBadPayload;
  if (!reader.read_u32(stages)) return RecordStatus::kBadPayload;
  if (puf_count == 0 || puf_count > kMaxPufsPerModel) return RecordStatus::kBadPayload;
  if (stages == 0 || stages > kMaxStagesPerModel) return RecordStatus::kBadPayload;
  if (len != model_payload_bytes(puf_count, stages)) return RecordStatus::kBadPayload;
  BetaFactors betas;
  if (!reader.read_f64(betas.beta0)) return RecordStatus::kBadPayload;
  if (!reader.read_f64(betas.beta1)) return RecordStatus::kBadPayload;
  std::vector<PufEnrollment> pufs;
  pufs.reserve(puf_count);
  for (std::uint32_t p = 0; p < puf_count; ++p) {
    PufEnrollment e;
    if (!reader.read_f64(e.thresholds.thr0)) return RecordStatus::kBadPayload;
    if (!reader.read_f64(e.thresholds.thr1)) return RecordStatus::kBadPayload;
    if (!reader.read_f64(e.train_r_squared)) return RecordStatus::kBadPayload;
    if (!reader.read_f64(e.fit_time_ms)) return RecordStatus::kBadPayload;
    std::vector<double> weights(stages + 1);
    for (double& w : weights)
      if (!reader.read_f64(w)) return RecordStatus::kBadPayload;
    e.model = ArbiterPufModel(linalg::Vector(std::move(weights)));
    pufs.push_back(std::move(e));
  }
  out = ServerModel(static_cast<std::size_t>(device_id), std::move(pufs));
  out.set_betas(betas);
  return RecordStatus::kOk;
}

std::uint64_t model_payload_bytes(std::uint32_t puf_count, std::uint32_t stages) {
  const std::uint64_t per_puf = (4 + static_cast<std::uint64_t>(stages) + 1) * sizeof(double);
  return kModelFixedBytes + 2 * sizeof(double) + static_cast<std::uint64_t>(puf_count) * per_puf;
}

RecordStatus peek_model_shape(const std::uint8_t* payload, std::uint32_t len,
                              std::uint32_t& puf_count, std::uint32_t& stages) {
  RecordReader reader(payload, len);
  if (!reader.read_u32(puf_count)) return RecordStatus::kBadPayload;
  if (!reader.read_u32(stages)) return RecordStatus::kBadPayload;
  if (puf_count == 0 || puf_count > kMaxPufsPerModel) return RecordStatus::kBadPayload;
  if (stages == 0 || stages > kMaxStagesPerModel) return RecordStatus::kBadPayload;
  return RecordStatus::kOk;
}

// --- ledger payload ----------------------------------------------------------

std::vector<std::uint8_t> encode_ledger(std::uint32_t stages,
                                        const std::vector<std::string>& keys) {
  XPUF_REQUIRE(stages > 0, "encode_ledger: zero stages");
  const std::uint64_t row = row_bytes_for(stages);
  std::vector<std::uint8_t> out;
  out.reserve(kLedgerFixedBytes + keys.size() * row);
  put_u32(out, static_cast<std::uint32_t>(keys.size()));
  put_u32(out, stages);
  for (const std::string& key : keys) {
    XPUF_REQUIRE(key.size() == row, "encode_ledger: key width != ceil(stages/8)");
    out.insert(out.end(), key.begin(), key.end());
  }
  return out;
}

RecordStatus decode_ledger(const std::uint8_t* payload, std::uint32_t len,
                           std::uint32_t& stages, std::vector<std::string>& keys) {
  XPUF_REQUIRE(payload != nullptr || len == 0,
               "decode_ledger: null payload with nonzero length");
  RecordReader reader(payload, len);
  std::uint32_t count = 0;
  if (!reader.read_u32(count)) return RecordStatus::kBadPayload;
  if (!reader.read_u32(stages)) return RecordStatus::kBadPayload;
  if (stages == 0 || stages > kMaxStagesPerModel) return RecordStatus::kBadPayload;
  const std::uint64_t row = row_bytes_for(stages);
  if (static_cast<std::uint64_t>(len) != kLedgerFixedBytes + count * row)
    return RecordStatus::kBadPayload;
  keys.clear();
  keys.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string key;
    if (!reader.read_bytes(row, key)) return RecordStatus::kBadPayload;
    keys.push_back(std::move(key));
  }
  return RecordStatus::kOk;
}

// --- pool payload ------------------------------------------------------------

namespace {

/// Fixed byte footprint of a POOL payload prefix: u32 count + u32 stages +
/// u32 epoch + u32 reserved + u64 cursor.
constexpr std::uint32_t kPoolFixedBytes = 24;

}  // namespace

std::vector<std::uint8_t> encode_pool(const PoolPayload& pool) {
  XPUF_REQUIRE(pool.stages > 0 && pool.stages <= kMaxStagesPerModel,
               "encode_pool: stages out of range");
  XPUF_REQUIRE(pool.expected.size() == pool.keys.size(),
               "encode_pool: one expected bit per pool entry");
  const std::uint64_t row = row_bytes_for(pool.stages);
  const std::uint64_t bitmap = (pool.keys.size() + 7) / 8;
  std::vector<std::uint8_t> out;
  out.reserve(kPoolFixedBytes + bitmap + pool.keys.size() * row);
  put_u32(out, static_cast<std::uint32_t>(pool.keys.size()));
  put_u32(out, pool.stages);
  put_u32(out, pool.epoch);
  put_u32(out, 0);  // reserved
  put_u64(out, pool.cursor);
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(bitmap), 0);
  for (std::size_t i = 0; i < pool.expected.size(); ++i)
    if (pool.expected[i] != 0) bits[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  out.insert(out.end(), bits.begin(), bits.end());
  for (const std::string& key : pool.keys) {
    XPUF_REQUIRE(key.size() == row, "encode_pool: key width != ceil(stages/8)");
    out.insert(out.end(), key.begin(), key.end());
  }
  return out;
}

RecordStatus decode_pool(const std::uint8_t* payload, std::uint32_t len,
                         PoolPayload& out) {
  XPUF_REQUIRE(payload != nullptr || len == 0,
               "decode_pool: null payload with nonzero length");
  RecordReader reader(payload, len);
  std::uint32_t count = 0;
  std::uint32_t reserved = 0;
  if (!reader.read_u32(count)) return RecordStatus::kBadPayload;
  if (!reader.read_u32(out.stages)) return RecordStatus::kBadPayload;
  if (!reader.read_u32(out.epoch)) return RecordStatus::kBadPayload;
  if (!reader.read_u32(reserved)) return RecordStatus::kBadPayload;
  if (reserved != 0) return RecordStatus::kBadPayload;
  if (!reader.read_u64(out.cursor)) return RecordStatus::kBadPayload;
  if (out.stages == 0 || out.stages > kMaxStagesPerModel) return RecordStatus::kBadPayload;
  const std::uint64_t row = row_bytes_for(out.stages);
  const std::uint64_t bitmap = (static_cast<std::uint64_t>(count) + 7) / 8;
  if (static_cast<std::uint64_t>(len) != kPoolFixedBytes + bitmap + count * row)
    return RecordStatus::kBadPayload;
  std::string bits;
  if (!reader.read_bytes(bitmap, bits)) return RecordStatus::kBadPayload;
  out.expected.assign(count, 0);
  for (std::uint32_t i = 0; i < count; ++i)
    out.expected[i] =
        static_cast<std::uint8_t>((static_cast<std::uint8_t>(bits[i / 8]) >> (i % 8)) & 1u);
  out.keys.clear();
  out.keys.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string key;
    if (!reader.read_bytes(row, key)) return RecordStatus::kBadPayload;
    out.keys.push_back(std::move(key));
  }
  return RecordStatus::kOk;
}

// --- zero-copy model view ----------------------------------------------------

bool model_view_from_payload(const std::uint8_t* payload, std::uint32_t len,
                             std::uint64_t device_id,
                             std::shared_ptr<const void> owner, ModelView& out) {
  std::uint32_t puf_count = 0;
  std::uint32_t stages = 0;
  if (peek_model_shape(payload, len, puf_count, stages) != RecordStatus::kOk) return false;
  if (len != model_payload_bytes(puf_count, stages)) return false;
  // The f64 region starts right after the two u32 geometry fields. Serving
  // weights in place requires it to sit on an 8-byte boundary — guaranteed
  // for records written through append_alignment_pad, checked here so a
  // store predating aligned compaction just falls back to the decode path.
  const std::uint8_t* f64_begin = payload + 8;
  if (reinterpret_cast<std::uintptr_t>(f64_begin) % alignof(double) != 0) return false;
  // On-disk doubles are IEEE-754 little-endian bit patterns (put_f64), which
  // on this target IS the in-memory representation, so pointing spans at the
  // mapping is exact. The static_assert keeps a big-endian port honest.
  static_assert(std::endian::native == std::endian::little,
                "zero-copy model serving assumes little-endian doubles");
  const double* d = reinterpret_cast<const double*>(f64_begin);
  BetaFactors betas;
  betas.beta0 = d[0];
  betas.beta1 = d[1];
  const std::size_t per_puf = 4 + static_cast<std::size_t>(stages) + 1;
  std::vector<const double*> weights;
  std::vector<ThresholdPair> thresholds;
  weights.reserve(puf_count);
  thresholds.reserve(puf_count);
  for (std::uint32_t p = 0; p < puf_count; ++p) {
    const double* block = d + 2 + static_cast<std::size_t>(p) * per_puf;
    ThresholdPair thr;
    thr.thr0 = block[0];
    thr.thr1 = block[1];
    // block[2] (r^2) and block[3] (fit time) are enrollment bookkeeping the
    // hot path never reads.
    thresholds.push_back(thr);
    weights.push_back(block + 4);
  }
  out = ModelView::from_parts(device_id, stages, betas, std::move(weights),
                              std::move(thresholds), std::move(owner));
  return true;
}

// --- alignment pad -----------------------------------------------------------

// Every (buffer, base offset) pair is legal — the pad length is pure mod-8
// arithmetic on their sum.  xpuf-lint: allow(require-guard)
void append_alignment_pad(std::vector<std::uint8_t>& out, std::uint64_t base_offset) {
  const std::uint64_t offset = base_offset + out.size();
  if (offset % 8 == 0) return;
  // Pad record total = header (16) + payload (p) + crc (4); choose p in
  // [0, 7] so the next record begins on an 8-byte boundary.
  const std::uint64_t p = (8 - ((offset + kRecordHeaderBytes + kRecordTrailerBytes) % 8)) % 8;
  const std::vector<std::uint8_t> payload(static_cast<std::size_t>(p), 0);
  encode_record(out, OpType::kPad, 0, payload);
}

// --- shard manifest ----------------------------------------------------------

std::vector<std::uint8_t> encode_manifest(std::uint32_t n_shards) {
  XPUF_REQUIRE(n_shards > 0, "encode_manifest: zero shards");
  std::vector<std::uint8_t> out;
  out.reserve(kManifestBytes);
  put_u16(out, kManifestMagic);
  put_u8(out, kStoreVersion);
  put_u8(out, 0);
  put_u32(out, n_shards);
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

RecordStatus decode_manifest(const std::uint8_t* data, std::uint64_t size,
                             std::uint32_t& n_shards) {
  if (size < kManifestBytes) return RecordStatus::kTruncated;
  if (size > kManifestBytes) return RecordStatus::kBadLength;
  RecordReader reader(data, size);
  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t reserved = 0;
  if (!reader.read_u16(magic)) return RecordStatus::kTruncated;
  if (magic != kManifestMagic) return RecordStatus::kBadMagic;
  if (!reader.read_u8(version)) return RecordStatus::kTruncated;
  if (version != kStoreVersion) return RecordStatus::kBadVersion;
  if (!reader.read_u8(reserved)) return RecordStatus::kTruncated;
  if (!reader.read_u32(n_shards)) return RecordStatus::kTruncated;
  std::uint32_t stored_crc = 0;
  if (!reader.read_u32(stored_crc)) return RecordStatus::kTruncated;
  if (crc32(data, kManifestBytes - kRecordTrailerBytes) != stored_crc)
    return RecordStatus::kBadChecksum;
  if (n_shards == 0) return RecordStatus::kBadPayload;
  return RecordStatus::kOk;
}

// --- packed challenge keys ---------------------------------------------------

std::string pack_challenge(const Challenge& challenge) {
  XPUF_REQUIRE(!challenge.empty(), "pack_challenge: empty challenge");
  std::string key(static_cast<std::size_t>(row_bytes_for(challenge.size())), '\0');
  for (std::size_t i = 0; i < challenge.size(); ++i)
    if (challenge[i] != 0)
      key[i / 8] = static_cast<char>(static_cast<std::uint8_t>(key[i / 8]) |
                                     static_cast<std::uint8_t>(1u << (i % 8)));
  return key;
}

Challenge unpack_challenge(const std::string& key, std::size_t bits) {
  XPUF_REQUIRE(key.size() == row_bytes_for(bits),
               "unpack_challenge: key width != ceil(bits/8)");
  Challenge challenge(bits, 0);
  for (std::size_t i = 0; i < bits; ++i)
    challenge[i] =
        static_cast<std::uint8_t>((static_cast<std::uint8_t>(key[i / 8]) >> (i % 8)) & 1u);
  return challenge;
}

}  // namespace xpuf::puf::store
