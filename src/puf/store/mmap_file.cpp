#include "puf/store/mmap_file.hpp"

// This TU is the second of exactly two places (after store/log.cpp) that talk
// to the kernel directly: mmap has no istream equivalent and the whole point
// is to avoid the copy a stream read would make.
// xpuf-lint: allow-file(raw-syscall)

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace xpuf::puf::store {

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, static_cast<std::size_t>(size_));
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, static_cast<std::size_t>(size_));
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

std::shared_ptr<const MappedFile> MappedFile::map_prefix(const std::string& path,
                                                         std::uint64_t length) {
  if (length == 0) return nullptr;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return nullptr;
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0 ||
      static_cast<std::uint64_t>(st.st_size) < length) {
    ::close(fd);
    return nullptr;
  }
  void* p = ::mmap(nullptr, static_cast<std::size_t>(length), PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the pages alive without the descriptor
  if (p == MAP_FAILED) return nullptr;
  // Model lookups are scattered across the shard; readahead would only churn
  // the page cache. Advice failure is harmless, so the result is ignored.
  ::madvise(p, static_cast<std::size_t>(length), MADV_RANDOM);
  auto mapped = std::make_shared<MappedFile>();
  mapped->data_ = static_cast<std::uint8_t*>(p);
  mapped->size_ = length;
  return mapped;
}

}  // namespace xpuf::puf::store
