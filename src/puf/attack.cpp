#include "puf/attack.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "ml/metrics.hpp"
#include "puf/transform.hpp"

namespace xpuf::puf {

namespace {
// Fixed shard sizes for the parallel CRP measurement loop and the XOR-LR
// gradient reduction (thread-count independent, see common/parallel.hpp).
constexpr std::size_t kCrpChunk = 64;
constexpr std::size_t kGradChunk = 512;
}  // namespace

AttackDataset build_stable_attack_dataset(const sim::XorPufChip& chip,
                                          const AttackDatasetConfig& config, Rng& rng) {
  XPUF_REQUIRE(config.n_pufs >= 1 && config.n_pufs <= chip.puf_count(),
               "attack n_pufs out of range");
  XPUF_REQUIRE(config.train_fraction > 0.0 && config.train_fraction < 1.0,
               "train_fraction must be in (0, 1)");
  XPUF_REQUIRE(config.trials > 0, "soft-response measurement needs at least one trial");

  const std::size_t k = chip.stages();

  // Each challenge draws its generation AND measurement randomness from a
  // private stream keyed by its index, so the corpus is bit-identical for
  // any thread count. Results land in per-index slots and are compacted in
  // index order below.
  //
  // The noise-free probabilities go through the batched evaluation core:
  // each chunk materializes its challenges first (keeping every item stream
  // alive), runs one GEMM tile for all (challenge, PUF) cells, then draws
  // the binomial counters per item — in PUF order with the historical
  // early exit at the first unstable tap, so each item stream consumes
  // draws exactly as the per-cell measurement loop did.
  const sim::ChipLinearView view =
      chip.linear_view(config.environment, config.n_pufs);
  const StreamFamily streams(rng.fork_base());
  std::vector<Challenge> drawn(config.challenges);
  std::vector<std::uint8_t> keep(config.challenges, 0);
  std::vector<std::uint8_t> bits(config.challenges, 0);
  parallel_for(config.challenges, kCrpChunk,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 const std::size_t m = end - begin;
                 std::vector<Rng> item_rngs;
                 std::vector<Challenge> batch;
                 item_rngs.reserve(m);
                 batch.reserve(m);
                 for (std::size_t i = begin; i < end; ++i) {
                   item_rngs.push_back(streams.stream(i));
                   batch.push_back(random_challenge(k, item_rngs.back()));
                 }
                 const sim::FeatureBlock block(std::move(batch));
                 std::vector<double> probs(m * config.n_pufs);
                 view.one_probabilities_into(block, 0, m, probs.data());
                 for (std::size_t r = 0; r < m; ++r) {
                   Rng& item_rng = item_rngs[r];
                   const double* row = probs.data() + r * config.n_pufs;
                   bool all_stable = true;
                   bool xorr = false;
                   for (std::size_t p = 0; p < config.n_pufs; ++p) {
                     const std::uint64_t ones = item_rng.binomial(config.trials, row[p]);
                     if (ones != 0 && ones != config.trials) {
                       all_stable = false;
                       break;
                     }
                     xorr ^= (ones == config.trials);
                   }
                   if (all_stable) {
                     drawn[begin + r] = block.challenge(r);
                     keep[begin + r] = 1;
                     bits[begin + r] = xorr ? 1 : 0;
                   }
                 }
               });

  std::vector<Challenge> stable_challenges;
  std::vector<double> xor_bits;
  for (std::size_t i = 0; i < config.challenges; ++i) {
    if (!keep[i]) continue;
    stable_challenges.push_back(std::move(drawn[i]));
    xor_bits.push_back(bits[i] ? 1.0 : 0.0);
  }

  AttackDataset out;
  out.n_pufs = config.n_pufs;
  out.challenges_measured = config.challenges;
  out.stable_fraction = config.challenges == 0
                            ? 0.0
                            : static_cast<double>(stable_challenges.size()) /
                                  static_cast<double>(config.challenges);
  if (stable_challenges.empty()) return out;

  ml::Dataset all;
  all.x = feature_matrix(stable_challenges);
  all.y = linalg::Vector(std::move(xor_bits));
  // Challenges were drawn i.i.d., so a head split is already random.
  const auto n_train = static_cast<std::size_t>(
      config.train_fraction * static_cast<double>(all.size()));
  auto [train, test] = all.head_split(n_train);
  out.train = std::move(train);
  out.test = std::move(test);
  return out;
}

AttackResult run_mlp_attack(const AttackDataset& data, const MlpAttackConfig& config) {
  XPUF_REQUIRE(!data.train.empty(), "MLP attack needs a non-empty training set");
  XPUF_REQUIRE(config.restarts >= 1, "MLP attack needs at least one restart");

  AttackResult result;
  result.train_size = data.train.size();
  result.test_size = data.test.size();

  double best_loss = 0.0;
  ml::Mlp best_model(data.train.features(), config.mlp);
  Timer timer;
  for (std::size_t r = 0; r < config.restarts; ++r) {
    ml::MlpOptions opts = config.mlp;
    opts.seed = config.mlp.seed + r;
    ml::Mlp mlp(data.train.features(), opts);
    const ml::LbfgsResult fit = mlp.fit(data.train, config.lbfgs);
    result.optimizer_iterations += fit.iterations;
    if (r == 0 || fit.value < best_loss) {
      best_loss = fit.value;
      best_model = std::move(mlp);
    }
  }
  result.train_time_ms = timer.millis();

  const linalg::Vector train_pred = best_model.predict(data.train.x);
  result.train_accuracy = ml::accuracy(train_pred.span(), data.train.y.span());
  if (!data.test.empty()) {
    const linalg::Vector test_pred = best_model.predict(data.test.x);
    result.test_accuracy = ml::accuracy(test_pred.span(), data.test.y.span());
  }
  return result;
}

namespace {

/// Per-shard accumulator for the XOR-LR gradient reduction.
struct XorLossGrad {
  double loss = 0.0;
  linalg::Vector grad;
};

/// BCE loss and gradient of the product-of-linear-delays XOR model:
/// z = prod_i (w_i . phi), p = sigmoid(z), target = XOR bit. Rows are
/// sharded across the thread pool; shard partials combine in fixed order.
double xor_lr_objective(const ml::Dataset& data, std::size_t n_pufs,
                        const linalg::Vector& params, linalg::Vector& grad) {
  const std::size_t d = data.features();
  const std::size_t n = data.size();
  const double inv_n = 1.0 / static_cast<double>(n);
  XorLossGrad zero;
  zero.grad = linalg::Vector(params.size());
  XorLossGrad total = parallel_reduce(
      n, kGradChunk, zero,
      [&](XorLossGrad& acc, std::size_t begin, std::size_t end) {
        std::vector<double> delta(n_pufs);
        for (std::size_t r = begin; r < end; ++r) {
          const double* row = data.x.row(r);
          double z = 1.0;
          for (std::size_t p = 0; p < n_pufs; ++p) {
            const double s = linalg::dot({params.data() + p * d, d}, {row, d});
            delta[p] = s;
            z *= s;
          }
          const double t = data.y[r] >= 0.5 ? 1.0 : 0.0;
          acc.loss += t > 0.5 ? softplus(-z) : softplus(z);
          const double dz = (sigmoid(z) - t) * inv_n;
          for (std::size_t p = 0; p < n_pufs; ++p) {
            // d z / d w_p = (prod_{q != p} delta_q) * phi. Guard the division:
            // recompute the leave-one-out product when delta_p is tiny.
            double loo;
            if (std::fabs(delta[p]) > 1e-12) {
              loo = z / delta[p];
            } else {
              loo = 1.0;
              for (std::size_t q = 0; q < n_pufs; ++q)
                if (q != p) loo *= delta[q];
            }
            const double coef = dz * loo;
            double* g = acc.grad.data() + p * d;
            for (std::size_t c = 0; c < d; ++c) g[c] += coef * row[c];
          }
        }
      },
      [](XorLossGrad& acc, XorLossGrad&& part) {
        acc.loss += part.loss;
        acc.grad += part.grad;
      });
  grad = std::move(total.grad);
  return total.loss * inv_n;
}

}  // namespace

AttackResult run_lr_xor_attack(const AttackDataset& data, const LrXorAttackConfig& config) {
  XPUF_REQUIRE(!data.train.empty(), "LR-XOR attack needs a non-empty training set");
  XPUF_REQUIRE(config.restarts >= 1, "LR-XOR attack needs at least one restart");
  const std::size_t d = data.train.features();
  const std::size_t n_pufs = data.n_pufs;

  AttackResult result;
  result.train_size = data.train.size();
  result.test_size = data.test.size();

  ml::Objective obj = [&](const linalg::Vector& w, linalg::Vector& g) {
    return xor_lr_objective(data.train, n_pufs, w, g);
  };

  linalg::Vector best(d * n_pufs);
  double best_loss = 0.0;
  Timer timer;
  for (std::size_t r = 0; r < config.restarts; ++r) {
    Rng rng(config.seed + r);
    linalg::Vector w0(d * n_pufs);
    for (auto& v : w0) v = rng.normal(0.0, config.init_scale);
    const ml::LbfgsResult fit = ml::minimize_lbfgs(obj, std::move(w0), config.lbfgs);
    result.optimizer_iterations += fit.iterations;
    if (r == 0 || fit.value < best_loss) {
      best_loss = fit.value;
      best = fit.x;
    }
  }
  result.train_time_ms = timer.millis();

  auto evaluate = [&](const ml::Dataset& set) {
    if (set.empty()) return 0.0;
    std::size_t hits = 0;
    for (std::size_t r = 0; r < set.size(); ++r) {
      const double* row = set.x.row(r);
      double z = 1.0;
      for (std::size_t p = 0; p < n_pufs; ++p)
        z *= linalg::dot({best.data() + p * d, d}, {row, d});
      if ((z > 0.0) == (set.y[r] >= 0.5)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(set.size());
  };
  result.train_accuracy = evaluate(data.train);
  result.test_accuracy = evaluate(data.test);
  return result;
}

}  // namespace xpuf::puf
