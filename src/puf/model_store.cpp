#include "puf/model_store.hpp"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace xpuf::puf {

namespace {
constexpr const char* kFormatVersion = "xpuf-server-model-v1";

std::string format_double(double v) {
  // Round-trippable double formatting.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double parse_double(const std::string& s, const std::string& context) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw ParseError("");
    return v;
  } catch (const std::exception&) {
    throw ParseError("server-model file: bad number '" + s + "' in " + context);
  }
}

/// Exact unsigned-integer parse for count-like header fields. Going through
/// parse_double silently rounds ids above 2^53 to a *different* device and
/// accepts "1e3"/"12.0"/"-1" spellings; from_chars rejects sign characters,
/// fractions, exponents and trailing junk, and round-trips every uint64.
std::size_t parse_index(const std::string& s, const std::string& context) {
  std::size_t v = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end || s.empty())
    throw ParseError("server-model file: bad integer '" + s + "' in " + context);
  return v;
}
}  // namespace

void save_server_model(const ServerModel& model, const std::string& path) {
  XPUF_REQUIRE(model.puf_count() > 0, "cannot save an empty ServerModel");
  // Header row: format, chip id, betas, geometry. Data rows: one per PUF.
  CsvWriter csv(path, {kFormatVersion, std::to_string(model.chip_id()),
                       format_double(model.betas().beta0),
                       format_double(model.betas().beta1),
                       std::to_string(model.puf_count()),
                       std::to_string(model.stages())});
  for (std::size_t p = 0; p < model.puf_count(); ++p) {
    const PufEnrollment& e = model.puf(p);
    std::vector<std::string> row;
    row.push_back(std::to_string(p));
    row.push_back(format_double(e.thresholds.thr0));
    row.push_back(format_double(e.thresholds.thr1));
    row.push_back(format_double(e.train_r_squared));
    row.push_back(format_double(e.fit_time_ms));
    for (double w : e.model.weights()) row.push_back(format_double(w));
    csv.write_row(row);
  }
}

ServerModel load_server_model(const std::string& path) {
  const CsvData data = read_csv(path);
  if (data.header.size() != 6 || data.header[0] != kFormatVersion)
    throw ParseError("not a " + std::string(kFormatVersion) + " file: " + path);
  const std::size_t chip_id = parse_index(data.header[1], "chip id");
  BetaFactors betas;
  betas.beta0 = parse_double(data.header[2], "beta0");
  betas.beta1 = parse_double(data.header[3], "beta1");
  const std::size_t puf_count = parse_index(data.header[4], "puf count");
  const std::size_t stages = parse_index(data.header[5], "stages");
  if (data.rows.size() != puf_count)
    throw ParseError("server-model file: expected " + std::to_string(puf_count) +
                     " PUF rows, found " + std::to_string(data.rows.size()));

  std::vector<PufEnrollment> pufs;
  pufs.reserve(puf_count);
  for (std::size_t p = 0; p < puf_count; ++p) {
    const auto& row = data.rows[p];
    const std::size_t expected_cells = 5 + stages + 1;
    if (row.size() != expected_cells)
      throw ParseError("server-model file: PUF row " + std::to_string(p) + " has " +
                       std::to_string(row.size()) + " cells, expected " +
                       std::to_string(expected_cells));
    const std::size_t index = parse_index(row[0], "puf index");
    if (index != p) throw ParseError("server-model file: PUF rows out of order");
    PufEnrollment e;
    e.thresholds.thr0 = parse_double(row[1], "thr0");
    e.thresholds.thr1 = parse_double(row[2], "thr1");
    e.train_r_squared = parse_double(row[3], "r_squared");
    e.fit_time_ms = parse_double(row[4], "fit_time_ms");
    linalg::Vector w(stages + 1);
    for (std::size_t i = 0; i < stages + 1; ++i)
      w[i] = parse_double(row[5 + i], "weight");
    e.model = ArbiterPufModel(std::move(w));
    pufs.push_back(std::move(e));
  }
  ServerModel model(chip_id, std::move(pufs));
  model.set_betas(betas);
  return model;
}

}  // namespace xpuf::puf
