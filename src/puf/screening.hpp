// Batched stable-challenge screening — the authentication hot-path core.
//
// The paper's issuance is rejection sampling: draw random challenges, keep
// those predicted stable on ALL n PUFs (acceptance ~0.800^n, ~10.7% at
// n = 10). ChallengeScreener runs that walk either serially (the reference)
// or in blocks through sim::FeatureBlock + the ChipLinearView tile kernels
// (one Phi build + one register-blocked weight product per block), with a
// determinism contract that makes the two modes — and any block size or
// thread count — bit-invisible:
//
//   candidate j of a screening walk is a pure function of (family, j): its
//   challenge bits come from StreamFamily::stream(first_index + j) alone.
//
// So the issued-challenge sequence, the expected-response bits, and the
// exact candidates_tried count are identical across serial/batched modes,
// block sizes, and thread counts; and a screening walk consumes NOTHING
// from the caller's RNG beyond the one fork_base() draw that seeded the
// family. The walk is resumable: Outcome::next_index is the index the next
// refill continues from (the pool cursor persisted in POOL records).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "puf/model_view.hpp"
#include "sim/linear.hpp"

namespace xpuf::puf {

struct ScreeningOptions {
  /// Max candidates evaluated per block in batched mode. Any value >= 1
  /// yields the identical issued sequence; it only trades GEMM amortization
  /// against wasted tail evaluations past the quota.
  std::size_t block = 256;
  /// false = the serial per-candidate reference walk (bench A/B + tests).
  bool batched = true;
};

class ChallengeScreener {
 public:
  /// Outcome of one screening walk.
  struct Outcome {
    std::size_t tried = 0;     ///< candidates examined (== stream indices consumed)
    std::size_t stable = 0;    ///< candidates predicted stable on all n PUFs
    std::size_t accepted = 0;  ///< stable candidates the sink counted toward the quota
    bool filled = false;       ///< quota reached within max_attempts
    std::uint64_t next_index = 0;  ///< resume cursor: first_index + tried
  };

  /// Receives each stable candidate in index order with its expected XOR
  /// bit; returns true to count it toward the quota (false = caller-side
  /// rejection, e.g. the replay ledger — the walk continues).
  using Sink = std::function<bool(Challenge&&, bool)>;

  /// Screens the first `n_pufs` PUFs of `view`; the view must outlive the
  /// screener.
  ChallengeScreener(const ModelView& view, std::size_t n_pufs,
                    ScreeningOptions options = {});

  /// Walks candidates first_index, first_index + 1, ... until `count` were
  /// accepted by the sink or `tried` reached max_attempts.
  Outcome screen(const StreamFamily& family, std::uint64_t first_index,
                 std::size_t count, std::size_t max_attempts, const Sink& sink);

  /// The candidate generator both modes share: stage bits drawn 64 per
  /// next_u64() word (LSB-first). Faster than per-bit bernoulli and equally
  /// uniform; the per-candidate stream makes the draw count per candidate
  /// irrelevant to every other candidate.
  static void candidate_into(Challenge& out, std::size_t stages, Rng& rng);

  const ScreeningOptions& options() const { return options_; }

 private:
  Outcome screen_serial(const StreamFamily& family, std::uint64_t first_index,
                        std::size_t count, std::size_t max_attempts, const Sink& sink);
  Outcome screen_batched(const StreamFamily& family, std::uint64_t first_index,
                         std::size_t count, std::size_t max_attempts, const Sink& sink);

  const ModelView* view_;
  std::size_t n_pufs_;
  ScreeningOptions options_;
  std::vector<ThresholdPair> thresholds_;  ///< beta-adjusted, derived once
  sim::ChipLinearView chip_view_;          ///< stacked weights for the tile kernels
  // Reused batch storage: challenge rows, their Phi block, and the raw
  // prediction tile (block rows x n_pufs) — allocated on the first block,
  // refilled in place after.
  std::vector<Challenge> candidates_;
  sim::FeatureBlock block_;
  std::vector<double> raw_;
};

/// Selection-cost accounting shared by every screening call site (the
/// selectors, database issuance, and pool refills): bumps
/// selection.candidates_tried / selection.accepted and observes the
/// per-walk candidate count in the selection.batch_candidates histogram.
void record_screening(std::size_t tried, std::size_t accepted);

}  // namespace xpuf::puf
