#include "puf/attack_reliability.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "puf/transform.hpp"

namespace xpuf::puf {

std::vector<ReliabilityCrp> collect_xor_reliability_crps(const sim::XorPufChip& chip,
                                                         std::size_t n_challenges,
                                                         std::uint64_t trials,
                                                         const sim::Environment& env,
                                                         Rng& rng) {
  XPUF_REQUIRE(n_challenges > 0, "reliability collection needs challenges");
  std::vector<ReliabilityCrp> out;
  out.reserve(n_challenges);
  for (std::size_t i = 0; i < n_challenges; ++i) {
    ReliabilityCrp crp;
    crp.challenge = random_challenge(chip.stages(), rng);
    crp.soft =
        chip.measure_xor_soft_response(crp.challenge, env, trials, rng).soft_response();
    out.push_back(std::move(crp));
  }
  return out;
}

namespace {

/// Candidate layout: the weight vector itself. The hypothetical reliability
/// of a constituent with weights w is smooth in the margin:
/// h_hat = tanh(|w . phi| / (0.5 * rms-margin)) — Becker's thresholded
/// indicator relaxed so CMA-ES sees a gradient-bearing landscape (the
/// normalization makes the objective scale-invariant in w).
struct ReliabilityObjective {
  const linalg::Matrix& phi;            // n x (k+1)
  const std::vector<double>& measured;  // reliability h per row

  double operator()(const linalg::Vector& cand) const {
    const std::size_t n = phi.rows();
    const std::size_t dim = phi.cols();
    std::vector<double> margin(n);
    double rms = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double s = linalg::dot({phi.row(r), dim}, cand.span());
      margin[r] = std::fabs(s);
      rms += s * s;
    }
    rms = std::sqrt(rms / static_cast<double>(n));
    if (rms <= 0.0) return 1.0;  // degenerate all-zero candidate
    const double scale = 0.5 * rms;
    std::vector<double> predicted(n);
    for (std::size_t r = 0; r < n; ++r) predicted[r] = std::tanh(margin[r] / scale);
    // Maximize correlation <=> minimize its negation.
    return -pearson_correlation(predicted, measured);
  }
};

}  // namespace

bool ReliabilityAttackResult::predict(const Challenge& challenge) const {
  XPUF_REQUIRE(!recovered.empty(), "predict on an empty attack result");
  bool parity = parity_flip;
  for (const auto& w : recovered) {
    // Delay-domain sign decision (not the 0.5-centered soft space).
    double s = 0.0;
    double acc = 1.0;
    s += w[challenge.size()];
    for (std::size_t ii = challenge.size(); ii > 0; --ii) {
      const std::size_t i = ii - 1;
      acc *= challenge[i] ? -1.0 : 1.0;
      s += w[i] * acc;
    }
    parity ^= s > 0.0;
  }
  return parity;
}

ReliabilityAttackResult run_reliability_attack(const std::vector<ReliabilityCrp>& observations,
                                               const ml::Dataset& holdout,
                                               const ReliabilityAttackConfig& config) {
  XPUF_REQUIRE(!observations.empty(), "reliability attack needs observations");
  XPUF_REQUIRE(config.n_pufs >= 1, "reliability attack needs a positive XOR width");

  const std::size_t stages = observations.front().challenge.size();
  const std::size_t dim = stages + 1;

  std::vector<Challenge> challenges;
  std::vector<double> reliability;
  challenges.reserve(observations.size());
  reliability.reserve(observations.size());
  for (const auto& o : observations) {
    XPUF_REQUIRE(o.challenge.size() == stages, "mixed challenge lengths");
    challenges.push_back(o.challenge);
    reliability.push_back(o.reliability());
  }
  const linalg::Matrix phi = feature_matrix(challenges);
  const ReliabilityObjective objective{phi, reliability};

  ReliabilityAttackResult result;
  Rng seed_rng(config.seed);

  auto is_duplicate = [&](const linalg::Vector& w) {
    for (const auto& prev : result.recovered) {
      const double wc = std::fabs(pearson_correlation(
          std::span<const double>(w.data(), dim),
          std::span<const double>(prev.data(), dim)));
      if (wc > config.distinct_threshold) return true;
    }
    return false;
  };

  // One slot per hoped-for constituent: several CMA-ES runs from different
  // seeds, keep the best-fitting candidate that is distinct from previous
  // finds. Weak local optima lose to genuine constituent basins this way.
  for (std::size_t slot = 0;
       slot < config.max_restarts && result.recovered.size() < config.n_pufs; ++slot) {
    ++result.restarts_used;
    double best_corr = -1.0;
    linalg::Vector best_w;
    for (std::size_t attempt = 0; attempt < config.seeds_per_slot; ++attempt) {
      Rng init_rng = seed_rng.fork();
      linalg::Vector x0(dim);
      for (std::size_t i = 0; i < dim; ++i) x0[i] = init_rng.normal();
      ml::CmaEsOptions copts = config.cmaes;
      copts.seed = init_rng.next_u64();
      const ml::CmaEsResult run = ml::minimize_cmaes(objective, std::move(x0), copts);
      result.evaluations += run.evaluations;
      const double corr = -run.value;
      if (corr <= best_corr) continue;
      linalg::Vector w(dim);
      for (std::size_t i = 0; i < dim; ++i) w[i] = run.x[i];
      if (is_duplicate(w)) continue;
      best_corr = corr;
      best_w = std::move(w);
    }
    // Genuine constituent basins fit distinctly better than blended local
    // optima; once one constituent is found, later finds must reach a
    // comparable correlation or the slot is retried with fresh seeds.
    double dynamic_floor = config.min_fitness_corr;
    for (double f2 : result.fitness) dynamic_floor = std::max(dynamic_floor, 0.55 * f2);
    if (best_corr < dynamic_floor || best_w.empty()) continue;
    result.recovered.push_back(std::move(best_w));
    result.fitness.push_back(best_corr);
  }
  result.complete = result.recovered.size() == config.n_pufs;

  // Calibrate the single global parity against the holdout, if usable.
  if (!result.recovered.empty() && !holdout.empty()) {
    std::size_t hits = 0;
    for (std::size_t r = 0; r < holdout.size(); ++r) {
      const Challenge c = challenge_from_features(
          linalg::Vector(std::vector<double>(holdout.x.row(r),
                                             holdout.x.row(r) + holdout.features())));
      if (result.predict(c) == (holdout.y[r] >= 0.5)) ++hits;
    }
    if (2 * hits < holdout.size()) result.parity_flip = true;
  }
  return result;
}

double reliability_attack_accuracy(const ReliabilityAttackResult& result,
                                   const ml::Dataset& labeled) {
  XPUF_REQUIRE(!labeled.empty(), "accuracy on an empty set");
  if (result.recovered.empty()) return 0.5;  // no model: chance
  std::size_t hits = 0;
  for (std::size_t r = 0; r < labeled.size(); ++r) {
    const Challenge c = challenge_from_features(
        linalg::Vector(std::vector<double>(labeled.x.row(r),
                                           labeled.x.row(r) + labeled.features())));
    if (result.predict(c) == (labeled.y[r] >= 0.5)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labeled.size());
}

}  // namespace xpuf::puf
