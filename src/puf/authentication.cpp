#include "puf/authentication.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace xpuf::puf {

AuthenticationServer::AuthenticationServer(ServerModel model, std::size_t n_pufs,
                                           AuthenticationPolicy policy)
    : model_(std::move(model)), n_pufs_(n_pufs), policy_(policy) {
  XPUF_REQUIRE(n_pufs >= 1 && n_pufs <= model_.puf_count(),
               "authentication n_pufs out of range");
  XPUF_REQUIRE(policy.challenge_count > 0, "authentication needs at least one challenge");
}

ChallengeBatch AuthenticationServer::issue(Rng& rng) const {
  XPUF_TRACE_SPAN("auth.issue");
  ModelBasedSelector selector(model_, n_pufs_);
  SelectionResult sel =
      selector.select(policy_.challenge_count, rng, policy_.max_selection_attempts);
  if (!sel.filled)
    throw NumericalError(
        "challenge selection exhausted its attempt budget: only " +
        std::to_string(sel.challenges.size()) + " of " +
        std::to_string(policy_.challenge_count) + " stable challenges found");
  ChallengeBatch batch;
  batch.challenges = std::move(sel.challenges);
  batch.expected = std::move(sel.expected_responses);
  batch.candidates_tried = sel.candidates_tried;
  static Counter& issued = MetricsRegistry::global().counter("auth.batches_issued");
  issued.add(1);
  return batch;
}

ChallengeBatch AuthenticationServer::issue_random(Rng& rng) const {
  XPUF_TRACE_SPAN("auth.issue_random");
  ChallengeBatch batch;
  batch.challenges.reserve(policy_.challenge_count);
  batch.expected.reserve(policy_.challenge_count);
  for (std::size_t i = 0; i < policy_.challenge_count; ++i) {
    Challenge c = random_challenge(model_.stages(), rng);
    // The unfiltered baseline is deliberately the historical per-challenge
    // walk: each prediction interleaves with a shared-RNG challenge draw, so
    // there is no block to batch.  xpuf-lint: allow(scalar-eval)
    batch.expected.push_back(model_.predict_xor(c, n_pufs_));
    batch.challenges.push_back(std::move(c));
  }
  // Unfiltered issuance tries exactly one candidate per issued challenge.
  batch.candidates_tried = policy_.challenge_count;
  return batch;
}

AuthenticationOutcome apply_auth_policy(const ChallengeBatch& batch,
                                        const std::vector<bool>& responses,
                                        const AuthenticationPolicy& policy) {
  XPUF_REQUIRE(responses.size() == batch.challenges.size(),
               "response count does not match issued challenge count");
  AuthenticationOutcome out;
  out.challenges_used = batch.challenges.size();
  out.candidates_tried = batch.candidates_tried;
  for (std::size_t i = 0; i < responses.size(); ++i)
    if (responses[i] != batch.expected[i]) ++out.mismatches;
  out.approved = out.mismatches <= policy.max_hamming_distance;
  static Counter& verifications = MetricsRegistry::global().counter("auth.verifications");
  static Counter& mismatches = MetricsRegistry::global().counter("auth.mismatches");
  static Counter& approved = MetricsRegistry::global().counter("auth.approved");
  static Counter& denied = MetricsRegistry::global().counter("auth.denied");
  verifications.add(1);
  mismatches.add(out.mismatches);
  (out.approved ? approved : denied).add(1);
  return out;
}

AuthenticationOutcome AuthenticationServer::verify(const ChallengeBatch& batch,
                                                   const std::vector<bool>& responses) const {
  return apply_auth_policy(batch, responses, policy_);
}

AuthenticationOutcome AuthenticationServer::authenticate(const sim::XorPufChip& chip,
                                                         const sim::Environment& env,
                                                         Rng& rng,
                                                         bool model_selected) const {
  XPUF_TRACE_SPAN("auth.authenticate");
  const ChallengeBatch batch = model_selected ? issue(rng) : issue_random(rng);
  // One-shot sampling: the selected CRPs are 100% stable, so a single
  // evaluation suffices (paper Sec 2.2). Note the XOR width of the physical
  // chip is fixed by its wiring; the server-side n_pufs must match it, which
  // is checked here.
  XPUF_REQUIRE(chip.puf_count() == n_pufs_,
               "chip XOR width differs from the server's enrolled width");
  std::vector<bool> responses;
  responses.reserve(batch.challenges.size());
  for (const auto& c : batch.challenges) responses.push_back(chip.xor_response(c, env, rng));
  AuthenticationOutcome out = verify(batch, responses);
  return out;
}

}  // namespace xpuf::puf
