#include "puf/selection.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "puf/screening.hpp"

namespace xpuf::puf {

namespace {

/// Selection-cost accounting shared by both selector flavors — delegates to
/// the screening module, which owns the selection.* counters.
void record_selection(const SelectionResult& result) {
  record_screening(result.candidates_tried, result.challenges.size());
}

/// The per-candidate stable-check/XOR-accumulate measurement shared by
/// MeasurementBasedSelector::select and ::filter: measures the first n_pufs
/// taps in order, stopping at the first unstable one (so RNG consumption
/// matches the historical early-exit loop).
struct MeasuredCandidate {
  bool all_stable = true;
  bool xor_response = false;
};

MeasuredCandidate measure_candidate(const sim::XorPufChip& chip, const Challenge& c,
                                    const sim::Environment& env, std::uint64_t trials,
                                    std::size_t n_pufs, Rng& rng) {
  MeasuredCandidate out;
  for (std::size_t p = 0; p < n_pufs; ++p) {
    // The measurement-based baseline is inherently per-cell: each tap read
    // consumes shared-RNG draws and the early exit below depends on the
    // previous tap's outcome.  xpuf-lint: allow(scalar-eval)
    const sim::SoftMeasurement m = chip.measure_soft_response(p, c, env, trials, rng);
    if (!m.fully_stable()) {
      out.all_stable = false;
      break;
    }
    out.xor_response ^= m.ones == m.trials;
  }
  return out;
}

}  // namespace

ModelBasedSelector::ModelBasedSelector(const ServerModel& model, std::size_t n_pufs,
                                       ScreeningOptions options)
    : model_(&model), n_pufs_(n_pufs), options_(options) {
  XPUF_REQUIRE(n_pufs >= 1 && n_pufs <= model.puf_count(),
               "selector n_pufs out of range");
}

// Any (count, max_attempts) pair is legal — running out of attempts is the
// reported-not-thrown `filled == false` outcome the yield experiments probe.
// xpuf-lint: allow(require-guard)
SelectionResult ModelBasedSelector::select(std::size_t count, Rng& rng,
                                           std::size_t max_attempts) const {
  XPUF_TRACE_SPAN("selection.select");
  SelectionResult result;
  // The walk is keyed off ONE draw from the caller's stream: candidate j is
  // a pure function of (family, j), so block size, batched-vs-serial mode,
  // and thread count are all invisible in the issued sequence AND in the
  // caller's RNG consumption (see puf/screening.hpp).
  const StreamFamily family(rng.fork_base());
  const ModelView view = ModelView::of(*model_);
  ChallengeScreener screener(view, n_pufs_, options_);
  const ChallengeScreener::Outcome outcome =
      screener.screen(family, 0, count, max_attempts, [&](Challenge&& c, bool bit) {
        result.challenges.push_back(std::move(c));
        result.expected_responses.push_back(bit);
        return true;
      });
  result.candidates_tried = outcome.tried;
  result.filled = outcome.filled;
  record_selection(result);
  return result;
}

SelectionResult ModelBasedSelector::filter(const std::vector<Challenge>& candidates) const {
  for (const auto& c : candidates)
    XPUF_REQUIRE(c.size() == model_->stages(), "candidate challenge length != stage count");
  SelectionResult result;
  result.candidates_tried = candidates.size();
  if (!candidates.empty()) {
    const FeatureBlock block(candidates);
    const linalg::Matrix raw = model_->predict_raw_batch(block, n_pufs_);
    std::vector<ThresholdPair> thresholds;
    thresholds.reserve(n_pufs_);
    for (std::size_t p = 0; p < n_pufs_; ++p)
      thresholds.push_back(model_->adjusted_thresholds(p));
    for (std::size_t i = 0; i < block.size(); ++i) {
      bool stable = true;
      for (std::size_t p = 0; p < n_pufs_ && stable; ++p)
        stable = thresholds[p].classify(raw(i, p)) != StableClass::kUnstable;
      if (!stable) continue;
      bool bit = false;
      for (std::size_t p = 0; p < n_pufs_; ++p) bit ^= raw(i, p) > 0.5;
      result.challenges.push_back(block.challenge(i));
      result.expected_responses.push_back(bit);
    }
  }
  result.filled = true;
  return result;
}

MeasurementBasedSelector::MeasurementBasedSelector(const sim::XorPufChip& chip,
                                                   sim::Environment env,
                                                   std::uint64_t trials,
                                                   std::size_t n_pufs)
    : chip_(&chip), env_(env), trials_(trials), n_pufs_(n_pufs) {
  XPUF_REQUIRE(n_pufs >= 1 && n_pufs <= chip.puf_count(), "selector n_pufs out of range");
  XPUF_REQUIRE(trials > 0, "measurement-based selection needs trials > 0");
}

// Any (count, max_attempts) pair is legal — see ModelBasedSelector::select.
// xpuf-lint: allow(require-guard)
SelectionResult MeasurementBasedSelector::select(std::size_t count, Rng& rng,
                                                 std::size_t max_attempts) const {
  XPUF_TRACE_SPAN("selection.measure_select");
  SelectionResult result;
  const std::size_t stages = chip_->stages();
  while (result.challenges.size() < count && result.candidates_tried < max_attempts) {
    Challenge c = random_challenge(stages, rng);
    ++result.candidates_tried;
    const MeasuredCandidate m = measure_candidate(*chip_, c, env_, trials_, n_pufs_, rng);
    if (m.all_stable) {
      result.challenges.push_back(std::move(c));
      result.expected_responses.push_back(m.xor_response);
    }
  }
  result.filled = result.challenges.size() >= count;
  record_selection(result);
  return result;
}

SelectionResult MeasurementBasedSelector::filter(const std::vector<Challenge>& candidates,
                                                 Rng& rng) const {
  for (const auto& c : candidates)
    XPUF_REQUIRE(c.size() == chip_->stages(), "candidate challenge length != stage count");
  SelectionResult result;
  result.candidates_tried = candidates.size();
  for (const auto& c : candidates) {
    const MeasuredCandidate m = measure_candidate(*chip_, c, env_, trials_, n_pufs_, rng);
    if (m.all_stable) {
      result.challenges.push_back(c);
      result.expected_responses.push_back(m.xor_response);
    }
  }
  result.filled = true;
  return result;
}

}  // namespace xpuf::puf
