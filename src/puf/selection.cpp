#include "puf/selection.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace xpuf::puf {

namespace {

/// Selection-cost accounting shared by both selector flavors. The
/// per-batch histogram uses fixed decade bounds so batch-cost shapes are
/// comparable across runs and XOR widths (the paper's yield collapses
/// roughly geometrically in n).
void record_selection(const SelectionResult& result) {
  auto& registry = MetricsRegistry::global();
  static Counter& tried = registry.counter("selection.candidates_tried");
  static Counter& accepted = registry.counter("selection.accepted");
  static Histogram& per_batch = registry.histogram(
      "selection.batch_candidates", {10.0, 100.0, 1'000.0, 10'000.0, 100'000.0, 1'000'000.0});
  tried.add(result.candidates_tried);
  accepted.add(result.challenges.size());
  per_batch.observe(static_cast<double>(result.candidates_tried));
}

}  // namespace

ModelBasedSelector::ModelBasedSelector(const ServerModel& model, std::size_t n_pufs)
    : model_(&model), n_pufs_(n_pufs) {
  XPUF_REQUIRE(n_pufs >= 1 && n_pufs <= model.puf_count(),
               "selector n_pufs out of range");
}

// Any (count, max_attempts) pair is legal — running out of attempts is the
// reported-not-thrown `filled == false` outcome the yield experiments probe.
// xpuf-lint: allow(require-guard)
SelectionResult ModelBasedSelector::select(std::size_t count, Rng& rng,
                                           std::size_t max_attempts) const {
  XPUF_TRACE_SPAN("selection.select");
  SelectionResult result;
  const std::size_t stages = model_->stages();
  while (result.challenges.size() < count && result.candidates_tried < max_attempts) {
    Challenge c = random_challenge(stages, rng);
    ++result.candidates_tried;
    if (model_->all_stable(c, n_pufs_)) {
      result.expected_responses.push_back(model_->predict_xor(c, n_pufs_));
      result.challenges.push_back(std::move(c));
    }
  }
  result.filled = result.challenges.size() >= count;
  record_selection(result);
  return result;
}

SelectionResult ModelBasedSelector::filter(const std::vector<Challenge>& candidates) const {
  for (const auto& c : candidates)
    XPUF_REQUIRE(c.size() == model_->stages(), "candidate challenge length != stage count");
  SelectionResult result;
  result.candidates_tried = candidates.size();
  for (const auto& c : candidates) {
    if (model_->all_stable(c, n_pufs_)) {
      result.challenges.push_back(c);
      result.expected_responses.push_back(model_->predict_xor(c, n_pufs_));
    }
  }
  result.filled = true;
  return result;
}

MeasurementBasedSelector::MeasurementBasedSelector(const sim::XorPufChip& chip,
                                                   sim::Environment env,
                                                   std::uint64_t trials,
                                                   std::size_t n_pufs)
    : chip_(&chip), env_(env), trials_(trials), n_pufs_(n_pufs) {
  XPUF_REQUIRE(n_pufs >= 1 && n_pufs <= chip.puf_count(), "selector n_pufs out of range");
  XPUF_REQUIRE(trials > 0, "measurement-based selection needs trials > 0");
}

// Any (count, max_attempts) pair is legal — see ModelBasedSelector::select.
// xpuf-lint: allow(require-guard)
SelectionResult MeasurementBasedSelector::select(std::size_t count, Rng& rng,
                                                 std::size_t max_attempts) const {
  XPUF_TRACE_SPAN("selection.measure_select");
  SelectionResult result;
  const std::size_t stages = chip_->stages();
  while (result.challenges.size() < count && result.candidates_tried < max_attempts) {
    Challenge c = random_challenge(stages, rng);
    ++result.candidates_tried;
    bool all_stable = true;
    bool xor_response = false;
    for (std::size_t p = 0; p < n_pufs_; ++p) {
      const sim::SoftMeasurement m =
          chip_->measure_soft_response(p, c, env_, trials_, rng);
      if (!m.fully_stable()) {
        all_stable = false;
        break;
      }
      xor_response ^= m.ones == m.trials;
    }
    if (all_stable) {
      result.challenges.push_back(std::move(c));
      result.expected_responses.push_back(xor_response);
    }
  }
  result.filled = result.challenges.size() >= count;
  record_selection(result);
  return result;
}

SelectionResult MeasurementBasedSelector::filter(const std::vector<Challenge>& candidates,
                                                 Rng& rng) const {
  for (const auto& c : candidates)
    XPUF_REQUIRE(c.size() == chip_->stages(), "candidate challenge length != stage count");
  SelectionResult result;
  result.candidates_tried = candidates.size();
  for (const auto& c : candidates) {
    bool all_stable = true;
    bool xor_response = false;
    for (std::size_t p = 0; p < n_pufs_; ++p) {
      const sim::SoftMeasurement m =
          chip_->measure_soft_response(p, c, env_, trials_, rng);
      if (!m.fully_stable()) {
        all_stable = false;
        break;
      }
      xor_response ^= m.ones == m.trials;
    }
    if (all_stable) {
      result.challenges.push_back(c);
      result.expected_responses.push_back(xor_response);
    }
  }
  result.filled = true;
  return result;
}

}  // namespace xpuf::puf
