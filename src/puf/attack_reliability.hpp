// Reliability-based CMA-ES modeling attack on XOR arbiter PUFs
// (Becker, CHES 2015 — the paper's ref [9]).
//
// Threat model: after deployment the individual-PUF taps are fused off, but
// the XOR output remains queryable. By asking the SAME challenge many times
// the attacker measures the XOR soft response and hence its *reliability*
// h = |2 s - 1|. A challenge is unreliable iff at least one constituent PUF
// races within its noise margin, so the reliability signal of the XOR leaks
// information about EACH constituent separately: hypothesizing weights w
// for one constituent, predicted reliability (|w . phi| > eps) correlates
// with measured h exactly when w matches some constituent. CMA-ES maximizes
// that correlation; restarts land on different constituents.
//
// The counter-measure implicit in the reproduced paper's protocol: servers
// issue only 100%-stable challenges, whose reliability is identically 1 —
// the transcript then carries no reliability gradient at all (bench ext2).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/cmaes.hpp"
#include "ml/dataset.hpp"
#include "puf/transform.hpp"
#include "sim/chip.hpp"

namespace xpuf::puf {

/// One reliability observation of the XOR output.
struct ReliabilityCrp {
  Challenge challenge;
  double soft = 0.0;  ///< XOR soft response in [0, 1]

  /// Reliability h in [0, 1]; 1 = perfectly stable.
  double reliability() const { return std::abs(2.0 * soft - 1.0); }
};

/// Queries the deployed chip's XOR output `trials` times per challenge —
/// the attack's only required access.
std::vector<ReliabilityCrp> collect_xor_reliability_crps(const sim::XorPufChip& chip,
                                                         std::size_t n_challenges,
                                                         std::uint64_t trials,
                                                         const sim::Environment& env,
                                                         Rng& rng);

struct ReliabilityAttackConfig {
  std::size_t n_pufs = 2;            ///< hypothesized XOR width
  std::size_t max_restarts = 24;     ///< constituent-slot attempts in total
  std::size_t seeds_per_slot = 3;    ///< CMA-ES runs per slot; best distinct wins
  double distinct_threshold = 0.35;  ///< |weight corr| above = duplicate find
  double min_fitness_corr = 0.08;    ///< reject runs with no reliability signal
  /// CMA-ES tuned for the 33-dimensional reliability landscape; the wide
  /// stagnation window matters — the landscape has long plateaus before the
  /// basin of a constituent opens up.
  ml::CmaEsOptions cmaes{.lambda = 20,
                         .initial_sigma = 1.0,
                         .max_generations = 400,
                         .f_tolerance = 1e-12,
                         .stagnation_window = 80};
  std::uint64_t seed = 11;
};

struct ReliabilityAttackResult {
  /// Recovered constituent weight vectors (delay domain; scale and sign are
  /// arbitrary per vector — only the parity calibration below matters).
  std::vector<linalg::Vector> recovered;
  /// Reliability-correlation achieved by each accepted run.
  std::vector<double> fitness;
  std::size_t restarts_used = 0;
  std::size_t evaluations = 0;
  bool complete = false;  ///< found the requested number of constituents

  /// Predicted XOR bit (after calibration) for a challenge.
  bool predict(const Challenge& challenge) const;
  bool parity_flip = false;  ///< global sign calibration result
};

/// Runs the attack on reliability observations; `holdout` (hard XOR bits,
/// parity features as rows) is used only to calibrate the single global
/// parity bit and report accuracy — the recovery itself never sees it.
ReliabilityAttackResult run_reliability_attack(const std::vector<ReliabilityCrp>& observations,
                                               const ml::Dataset& holdout,
                                               const ReliabilityAttackConfig& config);

/// Accuracy of the calibrated result on a labeled set.
double reliability_attack_accuracy(const ReliabilityAttackResult& result,
                                   const ml::Dataset& labeled);

}  // namespace xpuf::puf
