#include "puf/key_generation.hpp"

#include "common/error.hpp"

namespace xpuf::puf {

FuzzyExtractor::FuzzyExtractor(const KeyGenConfig& config)
    : code_(config.bch_m, config.bch_t) {}

crypto::Bits FuzzyExtractor::read_response(const sim::XorPufChip& chip,
                                           const std::vector<Challenge>& challenges,
                                           const sim::Environment& env, Rng& rng) const {
  XPUF_REQUIRE(challenges.size() == code_.n(),
               "key generation needs exactly n = " + std::to_string(code_.n()) +
                   " challenges");
  crypto::Bits response;
  response.reserve(challenges.size());
  for (const auto& c : challenges)
    response.push_back(chip.xor_response(c, env, rng) ? 1 : 0);
  return response;
}

// Dimension guard (challenges.size() == n) lives in read_response, the first
// thing this calls.  xpuf-lint: guarded-by(read_response)
KeyGenResult FuzzyExtractor::generate(const sim::XorPufChip& chip,
                                      const std::vector<Challenge>& challenges,
                                      const sim::Environment& env, Rng& rng) const {
  const crypto::Bits response = read_response(chip, challenges, env, rng);

  crypto::Bits message(code_.k());
  for (auto& bit : message) bit = rng.bernoulli() ? 1 : 0;
  const crypto::Bits codeword = code_.encode(message);

  KeyGenResult result;
  result.helper.challenges = challenges;
  result.helper.offset.resize(code_.n());
  for (std::size_t i = 0; i < code_.n(); ++i)
    result.helper.offset[i] = response[i] ^ codeword[i];
  // key = SHA-256 of the packed message bits.
  std::vector<std::uint8_t> packed((message.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < message.size(); ++i)
    if (message[i]) packed[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  result.key = crypto::sha256(packed);
  return result;
}

KeyRepResult FuzzyExtractor::reproduce_from_bits(const crypto::Bits& response,
                                                 const HelperData& helper) const {
  XPUF_REQUIRE(response.size() == code_.n(), "response length mismatch");
  XPUF_REQUIRE(helper.offset.size() == code_.n(), "helper-data length mismatch");
  crypto::Bits shifted(code_.n());
  for (std::size_t i = 0; i < code_.n(); ++i)
    shifted[i] = response[i] ^ helper.offset[i];
  const crypto::BchCode::DecodeResult decoded = code_.decode(shifted);
  KeyRepResult result;
  if (!decoded.ok) return result;
  result.ok = true;
  result.errors_corrected = decoded.errors_corrected;
  std::vector<std::uint8_t> packed((decoded.message.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < decoded.message.size(); ++i)
    if (decoded.message[i]) packed[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  result.key = crypto::sha256(packed);
  return result;
}

KeyRepResult FuzzyExtractor::reproduce(const sim::XorPufChip& chip,
                                       const HelperData& helper,
                                       const sim::Environment& env, Rng& rng) const {
  const crypto::Bits response = read_response(chip, helper.challenges, env, rng);
  return reproduce_from_bits(response, helper);
}

}  // namespace xpuf::puf
