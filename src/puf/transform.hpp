// Parity-feature transform of arbiter-PUF challenges.
//
// The linear additive delay model predicts the arbiter delay difference as
// delta = w . phi(c) with phi_i(c) = prod_{j >= i} (1 - 2 c_j) and a
// constant phi_{k+1} = 1. This transform is the standard input encoding for
// every model in the paper (enrollment regression and modeling attacks).
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "sim/device.hpp"
#include "sim/linear.hpp"

namespace xpuf::puf {

using sim::Challenge;
using sim::random_challenge;

/// Challenge batch with its cached Phi matrix — the batched evaluation
/// core's caching layer. Defined in sim/linear.hpp (the sim layer consumes
/// it too and cannot depend on puf/); re-exported here because the feature
/// transform is this header's subject.
using sim::FeatureBlock;

/// Canonical batch generator (shared with ChipTester::random_challenges).
using sim::random_challenges;

/// Number of features for a k-stage challenge (k + 1).
inline std::size_t feature_count(std::size_t stages) { return stages + 1; }

/// phi(c): length challenge.size() + 1, entries in {-1, +1}, last entry 1.
linalg::Vector feature_vector(const Challenge& challenge);

/// Writes phi(c) into a caller-provided buffer (length stages + 1); the hot
/// path for million-challenge sweeps.
void feature_vector_into(const Challenge& challenge, double* out);

/// Stacks phi rows for a batch of challenges into an n x (k+1) matrix.
linalg::Matrix feature_matrix(const std::vector<Challenge>& challenges);

/// Inverse direction used by tests: recovers the challenge from its feature
/// vector (phi is a bijection given phi_{k+1} = 1).
Challenge challenge_from_features(const linalg::Vector& phi);

}  // namespace xpuf::puf
