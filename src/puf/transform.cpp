#include "puf/transform.hpp"

#include "common/error.hpp"

namespace xpuf::puf {

// The suffix-product kernel lives in sim/linear.cpp (sim::feature_fill) so
// the sim layer's batch core and this transform share one implementation.
void feature_vector_into(const Challenge& challenge, double* out) {
  sim::feature_fill(challenge, out);
}

linalg::Vector feature_vector(const Challenge& challenge) {
  XPUF_REQUIRE(!challenge.empty(), "feature_vector of an empty challenge");
  linalg::Vector phi(challenge.size() + 1);
  feature_vector_into(challenge, phi.data());
  return phi;
}

linalg::Matrix feature_matrix(const std::vector<Challenge>& challenges) {
  XPUF_REQUIRE(!challenges.empty(), "feature_matrix of an empty batch");
  const std::size_t k = challenges.front().size();
  linalg::Matrix m(challenges.size(), k + 1);
  for (std::size_t r = 0; r < challenges.size(); ++r) {
    XPUF_REQUIRE(challenges[r].size() == k, "mixed challenge lengths in batch");
    feature_vector_into(challenges[r], m.row(r));
  }
  return m;
}

Challenge challenge_from_features(const linalg::Vector& phi) {
  XPUF_REQUIRE(phi.size() >= 2, "feature vector too short");
  XPUF_REQUIRE(phi[phi.size() - 1] == 1.0, "feature vector must end in the constant 1");
  const std::size_t k = phi.size() - 1;
  Challenge c(k);
  // c_i = 0 iff phi_i == phi_{i+1} (the suffix product keeps its sign).
  for (std::size_t i = 0; i < k; ++i) {
    XPUF_REQUIRE(phi[i] == 1.0 || phi[i] == -1.0, "feature entries must be +/-1");
    c[i] = (phi[i] == phi[i + 1]) ? 0 : 1;
  }
  return c;
}

}  // namespace xpuf::puf
