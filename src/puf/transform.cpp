#include "puf/transform.hpp"

#include "common/error.hpp"

namespace xpuf::puf {

void feature_vector_into(const Challenge& challenge, double* out) {
  XPUF_REQUIRE(out != nullptr, "feature_vector_into needs a buffer of size() + 1 doubles");
  const std::size_t k = challenge.size();
  // Suffix products: phi_k = 1 - 2 c_k, phi_i = (1 - 2 c_i) * phi_{i+1}.
  double acc = 1.0;
  out[k] = 1.0;
  for (std::size_t ii = k; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    acc *= challenge[i] ? -1.0 : 1.0;
    out[i] = acc;
  }
}

linalg::Vector feature_vector(const Challenge& challenge) {
  XPUF_REQUIRE(!challenge.empty(), "feature_vector of an empty challenge");
  linalg::Vector phi(challenge.size() + 1);
  feature_vector_into(challenge, phi.data());
  return phi;
}

linalg::Matrix feature_matrix(const std::vector<Challenge>& challenges) {
  XPUF_REQUIRE(!challenges.empty(), "feature_matrix of an empty batch");
  const std::size_t k = challenges.front().size();
  linalg::Matrix m(challenges.size(), k + 1);
  for (std::size_t r = 0; r < challenges.size(); ++r) {
    XPUF_REQUIRE(challenges[r].size() == k, "mixed challenge lengths in batch");
    feature_vector_into(challenges[r], m.row(r));
  }
  return m;
}

Challenge challenge_from_features(const linalg::Vector& phi) {
  XPUF_REQUIRE(phi.size() >= 2, "feature vector too short");
  XPUF_REQUIRE(phi[phi.size() - 1] == 1.0, "feature vector must end in the constant 1");
  const std::size_t k = phi.size() - 1;
  Challenge c(k);
  // c_i = 0 iff phi_i == phi_{i+1} (the suffix product keeps its sign).
  for (std::size_t i = 0; i < k; ++i) {
    XPUF_REQUIRE(phi[i] == 1.0 || phi[i] == -1.0, "feature entries must be +/-1");
    c[i] = (phi[i] == phi[i + 1]) ? 0 : 1;
  }
  return c;
}

std::vector<Challenge> random_challenges(std::size_t stages, std::size_t count, Rng& rng) {
  XPUF_REQUIRE(stages > 0, "challenges need at least one stage");
  std::vector<Challenge> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(random_challenge(stages, rng));
  return out;
}

}  // namespace xpuf::puf
