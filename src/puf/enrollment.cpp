#include "puf/enrollment.hpp"

#include <limits>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "ml/dataset.hpp"
#include "ml/streaming.hpp"

namespace xpuf::puf {

ThresholdPair tighten(const ThresholdPair& thresholds, const BetaFactors& betas) {
  XPUF_REQUIRE(betas.beta0 > 0.0 && betas.beta0 <= 1.0, "beta0 must be in (0, 1]");
  XPUF_REQUIRE(betas.beta1 >= 1.0, "beta1 must be >= 1");
  ThresholdPair out;
  // Multiplicative scaling as in the paper; inverted for negative values so
  // the stable-'0' region always shrinks downward and stable-'1' upward.
  out.thr0 = thresholds.thr0 >= 0.0 ? thresholds.thr0 * betas.beta0
                                    : thresholds.thr0 / betas.beta0;
  out.thr1 = thresholds.thr1 >= 0.0 ? thresholds.thr1 * betas.beta1
                                    : thresholds.thr1 / betas.beta1;
  return out;
}

ServerModel::ServerModel(std::size_t chip_id, std::vector<PufEnrollment> pufs)
    : chip_id_(chip_id), pufs_(std::move(pufs)) {
  XPUF_REQUIRE(!pufs_.empty(), "ServerModel needs at least one PUF enrollment");
}

std::size_t ServerModel::stages() const {
  XPUF_REQUIRE(!pufs_.empty(), "empty ServerModel");
  return pufs_.front().model.stages();
}

const PufEnrollment& ServerModel::puf(std::size_t i) const {
  XPUF_REQUIRE(i < pufs_.size(), "PUF index out of range");
  return pufs_[i];
}

ThresholdPair ServerModel::adjusted_thresholds(std::size_t puf_index) const {
  return tighten(puf(puf_index).thresholds, betas_);
}

double ServerModel::predict_soft(std::size_t puf_index, const Challenge& challenge) const {
  return puf(puf_index).model.predict_raw(challenge);
}

StableClass ServerModel::classify(std::size_t puf_index, const Challenge& challenge) const {
  return adjusted_thresholds(puf_index).classify(predict_soft(puf_index, challenge));
}

bool ServerModel::all_stable(const Challenge& challenge, std::size_t n_pufs) const {
  XPUF_REQUIRE(n_pufs >= 1 && n_pufs <= pufs_.size(), "n_pufs out of range");
  for (std::size_t p = 0; p < n_pufs; ++p)
    if (classify(p, challenge) == StableClass::kUnstable) return false;
  return true;
}

bool ServerModel::predict_xor(const Challenge& challenge, std::size_t n_pufs) const {
  XPUF_REQUIRE(n_pufs >= 1 && n_pufs <= pufs_.size(), "n_pufs out of range");
  bool out = false;
  for (std::size_t p = 0; p < n_pufs; ++p) out ^= pufs_[p].model.predict_response(challenge);
  return out;
}

linalg::Matrix ServerModel::predict_raw_batch(const FeatureBlock& block,
                                              std::size_t n_pufs) const {
  XPUF_REQUIRE(n_pufs >= 1 && n_pufs <= pufs_.size(), "n_pufs out of range");
  if (block.empty()) return linalg::Matrix(0, n_pufs);
  const std::size_t f = stages() + 1;
  XPUF_REQUIRE(block.features() == f, "challenge length mismatch");
  // Stacking the weight rows is O(n_pufs * k) — noise next to the GEMM.
  linalg::Matrix stacked(n_pufs, f);
  for (std::size_t p = 0; p < n_pufs; ++p) {
    const linalg::Vector& w = pufs_[p].model.weights();
    XPUF_REQUIRE(w.size() == f, "mixed stage counts in ServerModel");
    double* row = stacked.row(p);
    for (std::size_t i = 0; i < f; ++i) row[i] = w[i];
  }
  return linalg::matmul_nt(block.phi(), stacked);
}

// Dimension checks live in predict_raw_batch, the first call made.
// xpuf-lint: guarded-by(predict_raw_batch)
std::vector<std::uint8_t> ServerModel::all_stable_batch(const FeatureBlock& block,
                                                        std::size_t n_pufs) const {
  const linalg::Matrix raw = predict_raw_batch(block, n_pufs);
  std::vector<ThresholdPair> thresholds;
  thresholds.reserve(n_pufs);
  for (std::size_t p = 0; p < n_pufs; ++p) thresholds.push_back(adjusted_thresholds(p));
  std::vector<std::uint8_t> out(block.size(), 0);
  for (std::size_t c = 0; c < block.size(); ++c) {
    bool stable = true;
    for (std::size_t p = 0; p < n_pufs && stable; ++p)
      stable = thresholds[p].classify(raw(c, p)) != StableClass::kUnstable;
    out[c] = stable ? 1 : 0;
  }
  return out;
}

// Same.  xpuf-lint: guarded-by(predict_raw_batch)
std::vector<std::uint8_t> ServerModel::predict_xor_batch(const FeatureBlock& block,
                                                         std::size_t n_pufs) const {
  const linalg::Matrix raw = predict_raw_batch(block, n_pufs);
  std::vector<std::uint8_t> out(block.size(), 0);
  for (std::size_t c = 0; c < block.size(); ++c) {
    bool bit = false;
    for (std::size_t p = 0; p < n_pufs; ++p) bit ^= raw(c, p) > 0.5;
    out[c] = bit ? 1 : 0;
  }
  return out;
}

ServerModel Enroller::enroll(const sim::XorPufChip& chip, Rng& rng) const {
  XPUF_TRACE_SPAN("puf.enroll_stream");
  sim::ChipTester tester(config_.environment, config_.trials, rng.fork());
  const std::size_t n_pufs = chip.puf_count();
  const std::size_t features = chip.stages() + 1;
  sim::ChipScanStream stream = tester.stream_individual(
      chip, config_.training_challenges, config_.chunk_challenges);
  XPUF_REQUIRE(stream.total() > 0, "enrollment needs at least one challenge");

  // Pass 1: one measurement sweep accumulates the shared Gram matrix and
  // every PUF's X^T y in O(features^2) memory. One Cholesky then solves all
  // n_pufs regressions — the materialized path redoes the O(n d^2) Gram per
  // PUF, which is where the streaming speedup comes from.
  ml::StreamingNormalEquations normal(features, n_pufs);
  sim::ScanChunk chunk;
  Timer fit_timer;
  double fit_ms = 0.0;
  while (stream.next(chunk)) {
    fit_timer.reset();
    normal.accumulate(chunk.block.phi(), chunk.soft);
    fit_ms += fit_timer.millis();
  }
  fit_timer.reset();
  const linalg::Matrix weights = normal.solve(config_.ridge);
  fit_ms += fit_timer.millis();
  // Per-PUF share of the shared accumulate + solve work; the materialized
  // path's fit_time_ms is per-PUF too.
  const double fit_ms_per_puf = fit_ms / static_cast<double>(n_pufs);

  // Pass 2: replay the identical chunks (reset() rewinds the challenge
  // generator; measurements are pure functions of the cell index) to derive
  // thresholds and R^2 against the fitted weights. Predictions go through
  // matmul_nt, whose per-element accumulation order equals the materialized
  // path's matvec; rss/tss accumulate in ascending row order, so both
  // diagnostics reproduce the materialized values bit for bit.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> thr0(n_pufs, inf);
  std::vector<double> thr1(n_pufs, -inf);
  std::vector<double> rss(n_pufs, 0.0);
  std::vector<double> tss(n_pufs, 0.0);
  std::vector<double> mean(n_pufs, 0.0);
  for (std::size_t p = 0; p < n_pufs; ++p) mean[p] = normal.target_mean(p);
  stream.reset();
  while (stream.next(chunk)) {
    const linalg::Matrix pred = linalg::matmul_nt(chunk.block.phi(), weights);
    for (std::size_t p = 0; p < n_pufs; ++p) {
      const std::vector<double>& soft = chunk.soft[p];
      for (std::size_t r = 0; r < pred.rows(); ++r) {
        const double pr = pred(r, p);
        const double y = soft[r];
        if (y > 0.0 && pr < thr0[p]) thr0[p] = pr;
        if (y < 1.0 && pr > thr1[p]) thr1[p] = pr;
        const double e = pr - y;
        rss[p] += e * e;
        const double d = y - mean[p];
        tss[p] += d * d;
      }
    }
  }

  std::vector<PufEnrollment> pufs;
  pufs.reserve(n_pufs);
  for (std::size_t p = 0; p < n_pufs; ++p) {
    linalg::Vector w(features);
    for (std::size_t c = 0; c < features; ++c) w[c] = weights(p, c);
    PufEnrollment e;
    e.model = ArbiterPufModel(std::move(w));
    e.thresholds = finalize_thresholds(thr0[p], thr1[p]);
    e.train_r_squared = tss[p] > 0.0 ? 1.0 - rss[p] / tss[p] : 0.0;
    e.fit_time_ms = fit_ms_per_puf;
    pufs.push_back(std::move(e));
  }
  return ServerModel(chip.id(), std::move(pufs));
}

ServerModel Enroller::enroll_materialized(const sim::XorPufChip& chip, Rng& rng) const {
  XPUF_TRACE_SPAN("puf.enroll_materialized");
  sim::ChipTester tester(config_.environment, config_.trials, rng.fork());
  // Build the feature block once: the scan's batched evaluation and the
  // per-PUF regressions below share the same Phi matrix.
  const FeatureBlock block(
      tester.random_challenges(chip, config_.training_challenges));
  const sim::ChipSoftScan scan = tester.scan_individual(chip, block);
  return enroll_from_scan(chip.id(), scan, block);
}

ServerModel Enroller::enroll_from_scan(std::size_t chip_id,
                                       const sim::ChipSoftScan& scan) const {
  return enroll_from_scan(chip_id, scan, FeatureBlock(scan.challenges));
}

ServerModel Enroller::enroll_from_scan(std::size_t chip_id, const sim::ChipSoftScan& scan,
                                       const FeatureBlock& block) const {
  XPUF_REQUIRE(!scan.challenges.empty(), "enrollment scan has no challenges");
  XPUF_REQUIRE(!scan.soft.empty(), "enrollment scan has no PUF measurements");
  XPUF_REQUIRE(block.size() == scan.challenges.size(),
               "feature block does not match the scan");

  const linalg::Matrix& phi = block.phi();
  std::vector<PufEnrollment> pufs;
  pufs.reserve(scan.soft.size());

  for (std::size_t p = 0; p < scan.soft.size(); ++p) {
    XPUF_REQUIRE(scan.soft[p].size() == scan.challenges.size(),
                 "scan soft-response row length mismatch");
    ml::Dataset data;
    data.x = phi;
    data.y = linalg::Vector(std::vector<double>(scan.soft[p].begin(), scan.soft[p].end()));

    ml::LinearRegressionOptions opts;
    opts.fit_intercept = false;  // phi carries the constant feature
    opts.ridge = config_.ridge;

    Timer timer;
    ml::LinearRegression reg(opts);
    reg.fit(data);
    const double fit_ms = timer.millis();

    const linalg::Vector predicted = reg.predict(phi);
    PufEnrollment e;
    e.model = ArbiterPufModel(reg.coefficients());
    e.thresholds = derive_thresholds(predicted.span(), std::span<const double>(scan.soft[p]));
    e.train_r_squared = reg.train_r_squared();
    e.fit_time_ms = fit_ms;
    pufs.push_back(std::move(e));
  }
  return ServerModel(chip_id, std::move(pufs));
}

}  // namespace xpuf::puf
