// Enrollment phase of the model-assisted XOR PUF (paper Fig 6).
//
// While the chip's fuses are intact, the authorized tester measures soft
// responses of every individual arbiter PUF for a batch of random
// challenges, fits a linear-regression delay model per PUF (soft responses
// regressed on parity features — linear, not logistic, because soft
// responses are fractional), derives the Thr('0')/Thr('1') stability
// thresholds, and stores everything in the server-side database. The fuses
// are then blown; the server never needs device access again.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/linear_regression.hpp"
#include "puf/model.hpp"
#include "puf/stability.hpp"
#include "sim/tester.hpp"

namespace xpuf::puf {

/// Threshold scaling factors (paper Sec 5): beta0 < 1 tightens the stable-'0'
/// boundary, beta1 > 1 tightens the stable-'1' boundary.
struct BetaFactors {
  double beta0 = 1.0;
  double beta1 = 1.0;
};

/// Applies beta tightening to raw training thresholds. The paper scales the
/// raw threshold values (Fig 9); for the rare negative-threshold case the
/// scale is inverted so tightening always shrinks the acceptance region.
ThresholdPair tighten(const ThresholdPair& thresholds, const BetaFactors& betas);

/// Per-PUF enrollment record stored in the server database.
struct PufEnrollment {
  ArbiterPufModel model;      ///< fitted delay parameters (regression weights)
  ThresholdPair thresholds;   ///< raw training-set thresholds
  double train_r_squared = 0.0;
  double fit_time_ms = 0.0;
};

/// Server-side database entry for one chip: n per-PUF models + common betas.
class ServerModel {
 public:
  ServerModel() = default;
  ServerModel(std::size_t chip_id, std::vector<PufEnrollment> pufs);

  std::size_t chip_id() const { return chip_id_; }
  std::size_t puf_count() const { return pufs_.size(); }
  std::size_t stages() const;
  const PufEnrollment& puf(std::size_t i) const;

  const BetaFactors& betas() const { return betas_; }
  void set_betas(const BetaFactors& betas) { betas_ = betas; }

  /// Thr values after beta tightening for one PUF.
  ThresholdPair adjusted_thresholds(std::size_t puf_index) const;

  /// Model-predicted soft response of one PUF.
  double predict_soft(std::size_t puf_index, const Challenge& challenge) const;

  /// Stability class of one PUF's prediction under the adjusted thresholds.
  StableClass classify(std::size_t puf_index, const Challenge& challenge) const;

  /// True when the first `n_pufs` PUFs are all predicted stable — the
  /// challenge-selection predicate of the authentication flow (Fig 7).
  bool all_stable(const Challenge& challenge, std::size_t n_pufs) const;
  bool all_stable(const Challenge& challenge) const { return all_stable(challenge, puf_count()); }

  /// Predicted XOR response over the first `n_pufs` PUFs.
  bool predict_xor(const Challenge& challenge, std::size_t n_pufs) const;
  bool predict_xor(const Challenge& challenge) const { return predict_xor(challenge, puf_count()); }

  /// Batched raw predictions over a feature block: row c, column p holds
  /// PUF p's prediction for challenge c — one GEMM of Phi against the
  /// stacked model weights, bit-identical to predict_soft per cell (both
  /// accumulate the dot in ascending index order).
  linalg::Matrix predict_raw_batch(const FeatureBlock& block, std::size_t n_pufs) const;
  linalg::Matrix predict_raw_batch(const FeatureBlock& block) const {
    return predict_raw_batch(block, puf_count());
  }

  /// Batched all_stable over a block: out[c] != 0 iff the first n_pufs
  /// predictions for challenge c all clear the adjusted thresholds.
  std::vector<std::uint8_t> all_stable_batch(const FeatureBlock& block,
                                             std::size_t n_pufs) const;

  /// Batched predict_xor over a block.
  std::vector<std::uint8_t> predict_xor_batch(const FeatureBlock& block,
                                              std::size_t n_pufs) const;

 private:
  std::size_t chip_id_ = 0;
  std::vector<PufEnrollment> pufs_;
  BetaFactors betas_;
};

struct EnrollmentConfig {
  std::size_t training_challenges = 5000;  ///< the paper's chosen train size
  std::uint64_t trials = 10'000;           ///< counter evaluations per CRP
  sim::Environment environment = sim::Environment::nominal();
  double ridge = 0.0;  ///< regression regularization (0 = plain OLS)
  /// Challenges per streaming scan chunk: the working-set knob of enroll().
  /// Any value >= 1 yields bit-identical results; it only trades memory
  /// against per-chunk overhead.
  std::size_t chunk_challenges = 4096;
};

/// Runs the full enrollment of Fig 6 against a chip with intact fuses:
/// measure -> fit linear regression per PUF -> derive thresholds.
/// Does NOT blow the fuses — callers decide when to deploy (tests exercise
/// pre/post access rules, and the paper separates the burn as a final step).
class Enroller {
 public:
  explicit Enroller(EnrollmentConfig config) : config_(config) {}

  const EnrollmentConfig& config() const { return config_; }

  /// Enrolls a chip, deriving the training challenges from `rng`. Streams
  /// the scan in config().chunk_challenges-sized chunks and accumulates
  /// normal equations per chunk, so memory stays O(chunk + features^2)
  /// regardless of training_challenges — while the returned model is
  /// bit-identical to enroll_materialized (see DESIGN.md "Streaming
  /// enrollment" for the argument).
  ServerModel enroll(const sim::XorPufChip& chip, Rng& rng) const;

  /// The historical whole-scan path: materialize every challenge and
  /// measurement, then fit per PUF. Kept as the reference the streaming
  /// path is benchmarked and equivalence-tested against; consumes `rng`
  /// exactly as enroll() does and returns the identical model.
  ServerModel enroll_materialized(const sim::XorPufChip& chip, Rng& rng) const;

  /// Enrolls from an existing soft-response scan (used when the same
  /// measurement set feeds several analyses).
  ServerModel enroll_from_scan(std::size_t chip_id, const sim::ChipSoftScan& scan) const;

  /// Same, with the scan's feature block supplied by the caller so Phi is
  /// computed once and shared across scans, corners, and the regression
  /// (block.challenges() must equal scan.challenges).
  ServerModel enroll_from_scan(std::size_t chip_id, const sim::ChipSoftScan& scan,
                               const FeatureBlock& block) const;

 private:
  EnrollmentConfig config_;
};

}  // namespace xpuf::puf
