#include "puf/stabilization.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xpuf::puf {

bool majority_vote_response(const sim::XorPufChip& chip, const sim::Challenge& challenge,
                            const sim::Environment& env, const MajorityVoteConfig& config,
                            Rng& rng) {
  XPUF_REQUIRE(config.votes >= 1 && config.votes % 2 == 1,
               "majority voting needs an odd, positive vote count");
  std::uint64_t ones = 0;
  for (std::uint64_t v = 0; v < config.votes; ++v)
    if (chip.xor_response(challenge, env, rng)) ++ones;
  return 2 * ones > config.votes;
}

double majority_vote_error(double p, std::uint64_t votes) {
  XPUF_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  XPUF_REQUIRE(votes >= 1 && votes % 2 == 1, "vote count must be odd and positive");
  // The "intended" bit is round(p); an error is a majority of the minority
  // side. By symmetry work with q = min(p, 1-p): error = P[Bin(k, q) > k/2].
  const double q = p < 0.5 ? p : 1.0 - p;
  if (q == 0.0) return 0.0;
  // Exact tail via the pmf recurrence.
  double pmf = std::pow(1.0 - q, static_cast<double>(votes));
  double cdf = pmf;
  double error = 0.0;
  const double odds = q / (1.0 - q);
  const std::uint64_t half = votes / 2;  // majority needs > half
  for (std::uint64_t k = 0; k < votes; ++k) {
    pmf *= static_cast<double>(votes - k) / static_cast<double>(k + 1) * odds;
    if (k + 1 > half) error += pmf;
    cdf += pmf;
  }
  (void)cdf;
  return error;
}

StabilizationComparison compare_majority_vote(const sim::XorPufChip& chip,
                                              std::size_t n_challenges,
                                              const sim::Environment& env,
                                              const MajorityVoteConfig& config, Rng& rng) {
  XPUF_REQUIRE(n_challenges > 0, "comparison needs challenges");
  StabilizationComparison out;
  out.votes = config.votes;
  std::size_t one_shot_errors = 0, voted_errors = 0;
  for (std::size_t i = 0; i < n_challenges; ++i) {
    const auto c = sim::random_challenge(chip.stages(), rng);
    // Noise-free reference via the analysis taps.
    bool reference = false;
    for (std::size_t p = 0; p < chip.puf_count(); ++p)
      // Ground-truth sanity check through the analysis escape hatch — one
      // challenge, not a batch.  xpuf-lint: allow(scalar-eval)
      reference ^= chip.device_for_analysis(p).delay_difference(c, env) > 0.0;
    if (chip.xor_response(c, env, rng) != reference) ++one_shot_errors;
    if (majority_vote_response(chip, c, env, config, rng) != reference) ++voted_errors;
  }
  out.one_shot_error =
      static_cast<double>(one_shot_errors) / static_cast<double>(n_challenges);
  out.voted_error =
      static_cast<double>(voted_errors) / static_cast<double>(n_challenges);
  return out;
}

}  // namespace xpuf::puf
