// Temporal majority voting (TMV) — the classic response stabilizer the
// paper's challenge-selection scheme competes with.
//
// Instead of avoiding unstable CRPs, TMV evaluates every CRP k times and
// takes the majority. It reduces the error rate of *mildly* unstable CRPs
// polynomially in k but cannot fix near-0.5 soft responses (majority of a
// fair coin stays fair), and it multiplies authentication latency by k.
// The test suite and abl2 discussion quantify both limits against the
// paper's selection approach.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/chip.hpp"

namespace xpuf::puf {

struct MajorityVoteConfig {
  /// Votes per response bit; odd so ties cannot happen.
  std::uint64_t votes = 11;
};

/// Majority-voted XOR response of a chip (k noisy evaluations).
bool majority_vote_response(const sim::XorPufChip& chip, const sim::Challenge& challenge,
                            const sim::Environment& env, const MajorityVoteConfig& config,
                            Rng& rng);

/// Theoretical error rate of k-vote majority for a bit whose single-read
/// one-probability is p (error = majority lands on the minority side of
/// round(p)). Exact binomial-tail computation.
double majority_vote_error(double p, std::uint64_t votes);

/// Empirical one-shot vs majority-vote error of the XOR output against the
/// noise-free reference, over random challenges. Returns {one_shot, voted}.
struct StabilizationComparison {
  double one_shot_error = 0.0;
  double voted_error = 0.0;
  std::uint64_t votes = 0;
};

StabilizationComparison compare_majority_vote(const sim::XorPufChip& chip,
                                              std::size_t n_challenges,
                                              const sim::Environment& env,
                                              const MajorityVoteConfig& config, Rng& rng);

}  // namespace xpuf::puf
