#include "sim/feedforward.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace xpuf::sim {

FeedForwardArbiterDevice::FeedForwardArbiterDevice(const DeviceParameters& params,
                                                   const EnvironmentModel& env_model,
                                                   std::vector<FeedForwardLoop> loops,
                                                   Rng& rng)
    : params_(params), env_model_(env_model), loops_(std::move(loops)) {
  XPUF_REQUIRE(params.stages > 0, "a PUF needs at least one stage");
  for (const auto& loop : loops_) {
    XPUF_REQUIRE(loop.tap_stage < loop.target_stage,
                 "feed-forward tap must precede its target");
    XPUF_REQUIRE(loop.target_stage < params.stages,
                 "feed-forward target beyond last stage");
  }
  for (std::size_t i = 0; i < loops_.size(); ++i)
    for (std::size_t j = i + 1; j < loops_.size(); ++j)
      XPUF_REQUIRE(loops_[i].target_stage != loops_[j].target_stage,
                   "two loops driving the same stage");
  stage_delays_.resize(params.stages);
  // Same draw order as ArbiterPufDevice so equal seeds fabricate matching
  // silicon (loop-free feed-forward devices must equal linear ones).
  for (auto& s : stage_delays_) {
    s.straight = rng.normal(0.0, params.sigma_process);
    s.crossed = rng.normal(0.0, params.sigma_process);
    s.straight_sensitivity = rng.normal(0.0, params.sigma_sensitivity);
    s.crossed_sensitivity = rng.normal(0.0, params.sigma_sensitivity);
    s.straight_aging = rng.normal(0.0, params.sigma_aging);
    s.crossed_aging = rng.normal(0.0, params.sigma_aging);
  }
}

double FeedForwardArbiterDevice::race(const Challenge& challenge, const Environment& env,
                                      Rng* noise_rng) const {
  XPUF_REQUIRE(challenge.size() == stages(), "challenge length != stage count");
  const double scale = env_model_.delay_scale(env);
  const double shift = env_model_.sensitivity_shift(env);
  const double sigma = params_.sigma_noise * env_model_.noise_scale(env);

  // Select overrides computed by intermediate arbiters as the race passes
  // their tap stages. Map target stage -> forced select bit.
  std::vector<int> forced(stages(), -1);

  double delta = 0.0;
  for (std::size_t i = 0; i < stages(); ++i) {
    const bool select = forced[i] >= 0 ? forced[i] != 0 : challenge[i] != 0;
    const StageDelays& s = stage_delays_[i];
    if (!select) {
      delta += s.straight * scale + s.straight_sensitivity * shift;
    } else {
      delta = -delta + s.crossed * scale + s.crossed_sensitivity * shift;
    }
    // Fire any intermediate arbiter tapping this stage.
    for (const auto& loop : loops_) {
      if (loop.tap_stage != i) continue;
      double observed = delta;
      if (noise_rng != nullptr) observed += noise_rng->normal(0.0, sigma);
      forced[loop.target_stage] = observed > 0.0 ? 1 : 0;
    }
  }
  return delta;
}

double FeedForwardArbiterDevice::delay_difference(const Challenge& challenge,
                                                  const Environment& env) const {
  return race(challenge, env, nullptr);
}

// Challenge length is guarded by race(), the first call made.
// xpuf-lint: guarded-by(race)
bool FeedForwardArbiterDevice::evaluate(const Challenge& challenge, const Environment& env,
                                        Rng& rng) const {
  const double delta = race(challenge, env, &rng);
  const double sigma = params_.sigma_noise * env_model_.noise_scale(env);
  return delta + rng.normal(0.0, sigma) > 0.0;
}

SoftMeasurement FeedForwardArbiterDevice::measure_soft_response(const Challenge& challenge,
                                                                const Environment& env,
                                                                std::uint64_t trials,
                                                                Rng& rng) const {
  XPUF_REQUIRE(trials > 0, "soft-response measurement needs at least one trial");
  // Intermediate arbiters make per-trial outcomes non-i.i.d. in closed form,
  // so sample honestly (no binomial shortcut here).
  std::uint64_t ones = 0;
  for (std::uint64_t t = 0; t < trials; ++t)
    if (evaluate(challenge, env, rng)) ++ones;
  return {ones, trials};
}

}  // namespace xpuf::sim
