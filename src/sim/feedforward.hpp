// Feed-forward MUX arbiter PUF device (the second structure covered by the
// paper's soft-response reference [1]).
//
// A feed-forward loop taps the race at an intermediate stage with an extra
// arbiter and feeds that bit into the select input of a later stage instead
// of a challenge bit. The response is no longer a linear function of the
// parity features — which is exactly why the structure is interesting as an
// extension: the linear enrollment of the main scheme degrades on it, and
// the intermediate arbiters add their own thermal noise (lower stability).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/chip.hpp"

namespace xpuf::sim {

/// One feed-forward loop: the race sign after `tap_stage` drives the select
/// of `target_stage` (challenge bit at target_stage is ignored).
struct FeedForwardLoop {
  std::size_t tap_stage = 0;
  std::size_t target_stage = 0;
};

class FeedForwardArbiterDevice {
 public:
  /// Stage delays are drawn exactly like the linear device's; loops must
  /// satisfy tap_stage < target_stage < stages and have distinct targets.
  FeedForwardArbiterDevice(const DeviceParameters& params,
                           const EnvironmentModel& env_model,
                           std::vector<FeedForwardLoop> loops, Rng& rng);

  std::size_t stages() const { return stage_delays_.size(); }
  const std::vector<FeedForwardLoop>& loops() const { return loops_; }

  /// Noise-free race through the structure; intermediate arbiters decide on
  /// the sign of the accumulated difference (no thermal noise).
  double delay_difference(const Challenge& challenge, const Environment& env) const;

  /// One noisy evaluation: thermal noise is drawn at every intermediate
  /// arbiter and at the final arbiter, so feed-forward loops both flip
  /// select bits and propagate instability (the structure's known weakness).
  bool evaluate(const Challenge& challenge, const Environment& env, Rng& rng) const;

  /// Counter statistic over `trials` noisy evaluations.
  SoftMeasurement measure_soft_response(const Challenge& challenge,
                                        const Environment& env, std::uint64_t trials,
                                        Rng& rng) const;

  const DeviceParameters& parameters() const { return params_; }

 private:
  DeviceParameters params_;
  EnvironmentModel env_model_;
  std::vector<StageDelays> stage_delays_;
  std::vector<FeedForwardLoop> loops_;

  double race(const Challenge& challenge, const Environment& env, Rng* noise_rng) const;
};

}  // namespace xpuf::sim
