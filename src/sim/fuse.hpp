// One-time-programmable fuse bank guarding individual-PUF response taps.
//
// The paper's chips expose each internal arbiter PUF's output through fused
// taps during enrollment; burning the fuses (high current/voltage) before
// deployment makes the taps — and therefore the individual responses the
// modeling attack would need — permanently inaccessible (Sec 3, ref [11]).
#pragma once

#include <cstddef>
#include <vector>

namespace xpuf::sim {

class FuseBank {
 public:
  /// One fuse per guarded tap; all intact initially.
  explicit FuseBank(std::size_t n_fuses);

  std::size_t size() const { return blown_.size(); }

  /// True while the tap is readable.
  bool intact(std::size_t index) const;

  /// Burns one fuse. Irreversible; burning an already-blown fuse is a no-op
  /// (matches real eFuse behaviour).
  void blow(std::size_t index);

  /// Burns every fuse — the pre-deployment step in the paper's Fig 6.
  void blow_all();

  /// True when every fuse is blown (chip is in deployed state).
  bool all_blown() const;

  std::size_t blown_count() const;

 private:
  std::vector<bool> blown_;
};

}  // namespace xpuf::sim
