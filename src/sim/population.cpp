#include "sim/population.hpp"

#include "common/error.hpp"

namespace xpuf::sim {

ChipPopulation::ChipPopulation(const PopulationConfig& config) : config_(config) {
  XPUF_REQUIRE(config.n_chips > 0, "population needs at least one chip");
  Rng fab_rng(config.seed);
  chips_.reserve(config.n_chips);
  for (std::size_t i = 0; i < config.n_chips; ++i)
    chips_.emplace_back(i, config.n_pufs_per_chip, config.device, config.environment,
                        fab_rng);
}

XorPufChip& ChipPopulation::chip(std::size_t i) {
  XPUF_REQUIRE(i < chips_.size(), "chip index out of range");
  return chips_[i];
}

const XorPufChip& ChipPopulation::chip(std::size_t i) const {
  XPUF_REQUIRE(i < chips_.size(), "chip index out of range");
  return chips_[i];
}

Rng ChipPopulation::measurement_rng() const {
  // Offset the seed so measurement noise never replays fabrication draws.
  return Rng(config_.seed ^ 0xa5a5a5a5deadbeefULL);
}

}  // namespace xpuf::sim
