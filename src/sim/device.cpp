#include "sim/device.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "sim/linear.hpp"

namespace xpuf::sim {

// The stages guard lives in random_challenge_into.  xpuf-lint: guarded-by(random_challenge_into)
Challenge random_challenge(std::size_t stages, Rng& rng) {
  Challenge c;
  random_challenge_into(c, stages, rng);
  return c;
}

void random_challenge_into(Challenge& out, std::size_t stages, Rng& rng) {
  XPUF_REQUIRE(stages > 0, "a challenge needs at least one stage");
  out.resize(stages);
  for (auto& bit : out) bit = rng.bernoulli() ? 1 : 0;
}

ArbiterPufDevice::ArbiterPufDevice(const DeviceParameters& params,
                                   const EnvironmentModel& env_model, Rng& rng)
    : params_(params), env_model_(env_model) {
  XPUF_REQUIRE(params.stages > 0, "a PUF needs at least one stage");
  XPUF_REQUIRE(params.sigma_process > 0.0, "sigma_process must be positive");
  XPUF_REQUIRE(params.sigma_noise > 0.0, "sigma_noise must be positive");
  stage_delays_.resize(params.stages);
  for (auto& s : stage_delays_) {
    s.straight = rng.normal(0.0, params.sigma_process);
    s.crossed = rng.normal(0.0, params.sigma_process);
    s.straight_sensitivity = rng.normal(0.0, params.sigma_sensitivity);
    s.crossed_sensitivity = rng.normal(0.0, params.sigma_sensitivity);
    s.straight_aging = rng.normal(0.0, params.sigma_aging);
    s.crossed_aging = rng.normal(0.0, params.sigma_aging);
  }
}

double ArbiterPufDevice::aging_level() const {
  if (stress_hours_ <= 0.0) return 0.0;
  return std::pow(stress_hours_ / 1000.0, params_.aging_exponent);
}

void ArbiterPufDevice::age(double stress_hours) {
  XPUF_REQUIRE(stress_hours >= 0.0, "aging stress must be non-negative");
  stress_hours_ += stress_hours;
}

// Stage index is proven in-range by delay_difference's length guard; this is
// the innermost hot loop.  xpuf-lint: allow(require-guard)
double ArbiterPufDevice::effective_straight(std::size_t i, double scale, double shift,
                                            double aging) const {
  const StageDelays& s = stage_delays_[i];
  return s.straight * scale + s.straight_sensitivity * shift + s.straight_aging * aging;
}

// Same as effective_straight.  xpuf-lint: allow(require-guard)
double ArbiterPufDevice::effective_crossed(std::size_t i, double scale, double shift,
                                           double aging) const {
  const StageDelays& s = stage_delays_[i];
  return s.crossed * scale + s.crossed_sensitivity * shift + s.crossed_aging * aging;
}

double ArbiterPufDevice::delay_difference(const Challenge& challenge,
                                          const Environment& env) const {
  XPUF_REQUIRE(challenge.size() == stages(), "challenge length != stage count");
  const double scale = env_model_.delay_scale(env);
  const double shift = env_model_.sensitivity_shift(env);
  const double aging = aging_level();
  // Recursive race: a crossed stage swaps the two signal paths, negating the
  // accumulated top-minus-bottom difference before adding its own.
  double delta = 0.0;
  for (std::size_t i = 0; i < challenge.size(); ++i) {
    if (challenge[i] == 0) {
      delta += effective_straight(i, scale, shift, aging);
    } else {
      delta = -delta + effective_crossed(i, scale, shift, aging);
    }
  }
  return delta;
}

double ArbiterPufDevice::noise_sigma(const Environment& env) const {
  return params_.sigma_noise * env_model_.noise_scale(env);
}

double ArbiterPufDevice::one_probability(const Challenge& challenge,
                                         const Environment& env) const {
  return normal_cdf(delay_difference(challenge, env) / noise_sigma(env));
}

// Challenge length is guarded by delay_difference, the first call made.
// xpuf-lint: guarded-by(delay_difference)
bool ArbiterPufDevice::evaluate(const Challenge& challenge, const Environment& env,
                                Rng& rng) const {
  const double delta = delay_difference(challenge, env);
  return delta + rng.normal(0.0, noise_sigma(env)) > 0.0;
}

linalg::Vector ArbiterPufDevice::reduced_weights(const Environment& env) const {
  // Standard reduction (Lim / Ruehrmair): with alpha_i = (d0_i - d1_i)/2 and
  // beta_i = (d0_i + d1_i)/2,
  //   w_1 = alpha_1, w_i = alpha_i + beta_{i-1} (i = 2..k), w_{k+1} = beta_k,
  // so that delta = w . phi with phi_i = prod_{j>=i} (1 - 2 c_j), phi_{k+1}=1.
  const double scale = env_model_.delay_scale(env);
  const double shift = env_model_.sensitivity_shift(env);
  const double aging = aging_level();
  const std::size_t k = stages();
  std::vector<double> alpha(k), beta(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double d0 = effective_straight(i, scale, shift, aging);
    const double d1 = effective_crossed(i, scale, shift, aging);
    alpha[i] = 0.5 * (d0 - d1);
    beta[i] = 0.5 * (d0 + d1);
  }
  linalg::Vector w(k + 1);
  w[0] = alpha[0];
  for (std::size_t i = 1; i < k; ++i) w[i] = alpha[i] + beta[i - 1];
  w[k] = beta[k - 1];
  return w;
}

DeviceLinearView ArbiterPufDevice::linear_view(const Environment& env) const {
  return {reduced_weights(env), noise_sigma(env)};
}

linalg::Vector ArbiterPufDevice::delay_differences(const FeatureBlock& block,
                                                   const Environment& env) const {
  return linear_view(env).delay_differences(block);
}

linalg::Vector ArbiterPufDevice::one_probabilities(const FeatureBlock& block,
                                                   const Environment& env) const {
  return linear_view(env).one_probabilities(block);
}

}  // namespace xpuf::sim
