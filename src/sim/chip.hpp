// A simulated XOR arbiter PUF test chip (paper Fig 5).
//
// The chip carries n parallel arbiter PUFs fed the same challenge. The XOR
// of all n responses is always pinned out; each individual PUF's response is
// additionally tapped through a one-time fuse so an authorized tester can
// collect per-PUF soft responses during enrollment. Burning the fuses
// (blow_fuses) puts the chip in its deployed state where only the XOR output
// is observable — the access model the paper's security argument relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/device.hpp"
#include "sim/fuse.hpp"
#include "sim/linear.hpp"

namespace xpuf::sim {

/// Soft-response measurement from an on-chip counter: `ones` of `trials`
/// evaluations returned 1.
struct SoftMeasurement {
  std::uint64_t ones = 0;
  std::uint64_t trials = 0;

  double soft_response() const {
    return trials == 0 ? 0.0 : static_cast<double>(ones) / static_cast<double>(trials);
  }
  /// 100% stable means every evaluation agreed (first/last histogram bin).
  bool fully_stable() const { return trials > 0 && (ones == 0 || ones == trials); }
};

class XorPufChip {
 public:
  /// Fabricates a chip with `n_pufs` devices drawn from the same process.
  XorPufChip(std::size_t chip_id, std::size_t n_pufs, const DeviceParameters& params,
             const EnvironmentModel& env_model, Rng& rng);

  std::size_t id() const { return chip_id_; }
  std::size_t puf_count() const { return devices_.size(); }
  std::size_t stages() const { return devices_.front().stages(); }

  /// One noisy evaluation of the XOR output (always accessible).
  bool xor_response(const Challenge& challenge, const Environment& env, Rng& rng) const;

  /// One noisy evaluation of an individual PUF. Throws AccessError once the
  /// corresponding fuse is blown.
  bool individual_response(std::size_t puf_index, const Challenge& challenge,
                           const Environment& env, Rng& rng) const;

  /// Counter-based soft-response measurement of one individual PUF over
  /// `trials` repeated evaluations. Throws AccessError after fuse blow.
  /// The flip count is sampled from the exact Binomial(trials, p) law of the
  /// device, so "0 flips in 100,000" has the true silicon probability.
  SoftMeasurement measure_soft_response(std::size_t puf_index, const Challenge& challenge,
                                        const Environment& env, std::uint64_t trials,
                                        Rng& rng) const;

  /// Counter-based soft response of the XOR output (always accessible; used
  /// by the marginal-response salvage discussion in paper Sec 2.2).
  SoftMeasurement measure_xor_soft_response(const Challenge& challenge,
                                            const Environment& env, std::uint64_t trials,
                                            Rng& rng) const;

  /// Linear-view snapshot of the first `n_pufs` devices at a corner — the
  /// entry point of the batched evaluation core (sim/linear.hpp). Gated by
  /// the same fuse model as per-PUF measurements: throws AccessError when
  /// any of those taps is blown, because the view carries exactly the
  /// information unlimited tap measurements would reveal. Snapshots do not
  /// track later age() calls; rebuild after aging.
  ChipLinearView linear_view(const Environment& env, std::size_t n_pufs) const;
  ChipLinearView linear_view(const Environment& env) const {
    return linear_view(env, puf_count());
  }

  /// Linear view of a single individual PUF (tap-gated like linear_view).
  DeviceLinearView device_linear_view(std::size_t puf_index, const Environment& env) const;

  /// Batched per-PUF flip probabilities: size() x puf_count(), one GEMM.
  /// Tap-gated like measure_soft_response.
  linalg::Matrix one_probabilities(const FeatureBlock& block, const Environment& env) const;

  /// Batched one-shot XOR responses, challenge i arbitrated with noise from
  /// streams.stream(i) — the same per-device draw order as xor_response, so
  /// a deployed chip answers identically cell for cell. Always accessible.
  /// Runs on the global thread pool; bit-identical at any thread count.
  std::vector<std::uint8_t> xor_responses(const FeatureBlock& block, const Environment& env,
                                          const StreamFamily& streams) const;

  /// Batched counter-based XOR soft responses, challenge i sampling its
  /// binomial from streams.stream(i). Always accessible; parallel and
  /// thread-count invariant like xor_responses.
  std::vector<SoftMeasurement> measure_xor_soft_responses(const FeatureBlock& block,
                                                          const Environment& env,
                                                          std::uint64_t trials,
                                                          const StreamFamily& streams) const;

  /// Whether the per-PUF tap is still readable.
  bool tap_accessible(std::size_t puf_index) const;

  /// Burns all enrollment fuses (pre-deployment step, paper Fig 6).
  void blow_fuses();

  /// Ages every on-chip device by `stress_hours` of operation (BTI drift;
  /// see ArbiterPufDevice::age). Aging is physical and irreversible.
  void age(double stress_hours);

  /// Stress accumulated by the chip's devices.
  double stress_hours() const;

  bool deployed() const { return fuses_.all_blown(); }

  /// Ground-truth device access for tests, calibration, and analysis only.
  /// Protocol code must not call this — it bypasses the fuse model.
  const ArbiterPufDevice& device_for_analysis(std::size_t puf_index) const;

 private:
  std::size_t chip_id_;
  std::vector<ArbiterPufDevice> devices_;
  mutable FuseBank fuses_;  // mutable: blow is a physical, not logical, mutation

  void check_tap(std::size_t puf_index) const;

  /// View over the first n devices with NO tap check — the internal route
  /// the always-accessible XOR paths evaluate through.
  ChipLinearView internal_view(const Environment& env, std::size_t n_pufs) const;
};

}  // namespace xpuf::sim
