#include "sim/interpose.hpp"

#include "common/error.hpp"

namespace xpuf::sim {

InterposePuf::InterposePuf(const InterposeConfig& config, const DeviceParameters& params,
                           const EnvironmentModel& env_model, Rng& rng)
    : config_(config) {
  XPUF_REQUIRE(config.upper_pufs >= 1 && config.lower_pufs >= 1,
               "interpose PUF needs at least one PUF per layer");
  XPUF_REQUIRE(config.stages >= 1, "interpose PUF needs at least one stage");
  XPUF_REQUIRE(config.interpose_position <= config.stages,
               "interpose position beyond the lower challenge");
  DeviceParameters upper_params = params;
  upper_params.stages = config.stages;
  DeviceParameters lower_params = params;
  lower_params.stages = config.stages + 1;  // room for the interposed bit
  for (std::size_t i = 0; i < config.upper_pufs; ++i)
    upper_.emplace_back(upper_params, env_model, rng);
  for (std::size_t i = 0; i < config.lower_pufs; ++i)
    lower_.emplace_back(lower_params, env_model, rng);
}

// Internal helper: evaluate/response guard the challenge length, and each
// device's delay_difference re-checks it.  xpuf-lint: guarded-by(delay_difference)
bool InterposePuf::upper_bit(const Challenge& challenge, const Environment& env,
                             Rng* rng) const {
  bool bit = false;
  for (const auto& d : upper_) {
    if (rng != nullptr) bit ^= d.evaluate(challenge, env, *rng);
    else bit ^= d.delay_difference(challenge, env) > 0.0;
  }
  return bit;
}

bool InterposePuf::lower_bit(const Challenge& challenge, bool interposed,
                             const Environment& env, Rng* rng) const {
  XPUF_REQUIRE(config_.interpose_position <= challenge.size(),
               "interpose position beyond the challenge");
  Challenge extended;
  extended.reserve(challenge.size() + 1);
  extended.insert(extended.end(), challenge.begin(),
                  challenge.begin() + static_cast<std::ptrdiff_t>(config_.interpose_position));
  extended.push_back(interposed ? 1 : 0);
  extended.insert(extended.end(),
                  challenge.begin() + static_cast<std::ptrdiff_t>(config_.interpose_position),
                  challenge.end());
  bool bit = false;
  for (const auto& d : lower_) {
    if (rng != nullptr) bit ^= d.evaluate(extended, env, *rng);
    else bit ^= d.delay_difference(extended, env) > 0.0;
  }
  return bit;
}

bool InterposePuf::evaluate(const Challenge& challenge, const Environment& env,
                            Rng& rng) const {
  XPUF_REQUIRE(challenge.size() == config_.stages, "challenge length mismatch");
  return lower_bit(challenge, upper_bit(challenge, env, &rng), env, &rng);
}

bool InterposePuf::response(const Challenge& challenge, const Environment& env) const {
  XPUF_REQUIRE(challenge.size() == config_.stages, "challenge length mismatch");
  return lower_bit(challenge, upper_bit(challenge, env, nullptr), env, nullptr);
}

SoftMeasurement InterposePuf::measure_soft_response(const Challenge& challenge,
                                                    const Environment& env,
                                                    std::uint64_t trials,
                                                    Rng& rng) const {
  XPUF_REQUIRE(trials > 0, "soft-response measurement needs at least one trial");
  // The interposed bit couples the layers, so trials are sampled honestly.
  std::uint64_t ones = 0;
  for (std::uint64_t t = 0; t < trials; ++t)
    if (evaluate(challenge, env, rng)) ++ones;
  return {ones, trials};
}

}  // namespace xpuf::sim
