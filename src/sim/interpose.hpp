// Interpose PUF (iPUF) — a post-paper construction (Nguyen et al., 2019)
// included as the natural "future work" comparison point: the response of
// an upper x-XOR PUF is *interposed* as an extra challenge bit into the
// middle of a lower y-XOR PUF's challenge. This breaks the pure-XOR
// structure that both the MLP-on-parity-features attack and the LR product
// model assume, at roughly the hardware cost of an (x+y)-XOR.
//
// Included to let the benches/tests contrast its stability with a plain
// (x+y)-XOR: the interposed bit inherits the upper PUF's noise, so iPUF
// stability sits close to the (x+y)-XOR while its modeling resistance is
// structurally higher.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/chip.hpp"

namespace xpuf::sim {

struct InterposeConfig {
  std::size_t upper_pufs = 1;   ///< x: XOR width of the upper layer
  std::size_t lower_pufs = 1;   ///< y: XOR width of the lower layer
  std::size_t stages = 32;      ///< challenge length of the upper layer
  /// Interpose position in the lower challenge (default: middle, the
  /// hardest spot for divide-and-conquer attacks). The lower PUFs have
  /// stages + 1 stages.
  std::size_t interpose_position = 16;
};

class InterposePuf {
 public:
  InterposePuf(const InterposeConfig& config, const DeviceParameters& params,
               const EnvironmentModel& env_model, Rng& rng);

  std::size_t stages() const { return config_.stages; }
  const InterposeConfig& config() const { return config_; }

  /// One noisy evaluation: upper layer first, its bit spliced into the
  /// lower challenge at the interpose position.
  bool evaluate(const Challenge& challenge, const Environment& env, Rng& rng) const;

  /// Noise-free response (upper bit decided by the noise-free upper delay).
  bool response(const Challenge& challenge, const Environment& env) const;

  /// Counter statistic over repeated noisy evaluations.
  SoftMeasurement measure_soft_response(const Challenge& challenge,
                                        const Environment& env, std::uint64_t trials,
                                        Rng& rng) const;

 private:
  InterposeConfig config_;
  std::vector<ArbiterPufDevice> upper_;
  std::vector<ArbiterPufDevice> lower_;

  bool upper_bit(const Challenge& challenge, const Environment& env, Rng* rng) const;
  bool lower_bit(const Challenge& challenge, bool interposed, const Environment& env,
                 Rng* rng) const;
};

}  // namespace xpuf::sim
