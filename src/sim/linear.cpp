#include "sim/linear.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/error.hpp"
#include "common/math.hpp"

namespace xpuf::sim {

void feature_fill(const Challenge& challenge, double* out) {
  XPUF_REQUIRE(out != nullptr, "feature_fill needs a buffer of size() + 1 doubles");
  const std::size_t k = challenge.size();
  // Suffix products: phi_k = 1 - 2 c_k, phi_i = (1 - 2 c_i) * phi_{i+1}.
  double acc = 1.0;
  out[k] = 1.0;
  for (std::size_t ii = k; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    acc *= challenge[i] ? -1.0 : 1.0;
    out[i] = acc;
  }
}

// An empty batch is a legal no-op block (empty scans are no-ops too).
std::vector<Challenge> random_challenges(std::size_t stages, std::size_t count, Rng& rng) {
  XPUF_REQUIRE(stages > 0, "challenges need at least one stage");
  std::vector<Challenge> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(random_challenge(stages, rng));
  return out;
}

// Same: an empty block is legal and yields no rows.
FeatureBlock::FeatureBlock(std::vector<Challenge> challenges)
    : challenges_(std::move(challenges)) {
  if (challenges_.empty()) return;
  stages_ = challenges_.front().size();
  XPUF_REQUIRE(stages_ > 0, "feature block of zero-stage challenges");
  phi_ = linalg::Matrix(challenges_.size(), stages_ + 1);
  for (std::size_t r = 0; r < challenges_.size(); ++r) {
    XPUF_REQUIRE(challenges_[r].size() == stages_, "mixed challenge lengths in batch");
    feature_fill(challenges_[r], phi_.row(r));
  }
}

// Same empty-block contract as the constructor.
void FeatureBlock::assign(const std::vector<Challenge>& challenges) {
  challenges_ = challenges;
  if (challenges_.empty()) {
    stages_ = 0;
    phi_.resize(0, 0);
    return;
  }
  stages_ = challenges_.front().size();
  XPUF_REQUIRE(stages_ > 0, "feature block of zero-stage challenges");
  phi_.resize(challenges_.size(), stages_ + 1);
  for (std::size_t r = 0; r < challenges_.size(); ++r) {
    XPUF_REQUIRE(challenges_[r].size() == stages_, "mixed challenge lengths in batch");
    feature_fill(challenges_[r], phi_.row(r));
  }
}

double DeviceLinearView::delay(std::span<const double> phi) const {
  XPUF_REQUIRE(phi.size() == weights.size(), "feature length mismatch");
  // linalg::dot is the ascending-order accumulation matmul_nt/matvec use per
  // output element, which is what makes batch == scalar a bit-level claim.
  return linalg::dot(weights.span(), phi);
}

double DeviceLinearView::one_probability(std::span<const double> phi) const {
  return normal_cdf(delay(phi) / noise_sigma);
}

linalg::Vector DeviceLinearView::delay_differences(const FeatureBlock& block) const {
  linalg::Vector out(block.size());
  delay_differences_into(block, 0, block.size(), out.data());
  return out;
}

linalg::Vector DeviceLinearView::one_probabilities(const FeatureBlock& block) const {
  linalg::Vector out(block.size());
  one_probabilities_into(block, 0, block.size(), out.data());
  return out;
}

// Row range is the caller's tile; an empty range writes nothing.
void DeviceLinearView::delay_differences_into(const FeatureBlock& block, std::size_t begin,
                                              std::size_t end, double* out) const {
  XPUF_REQUIRE(end <= block.size() && begin <= end, "tile range out of bounds");
  XPUF_REQUIRE(begin == end || block.features() == weights.size(),
               "feature length mismatch");
  for (std::size_t r = begin; r < end; ++r)
    out[r - begin] = delay({block.row(r), weights.size()});
}

// Same tile contract as delay_differences_into.
// xpuf-lint: allow(require-guard)
void DeviceLinearView::one_probabilities_into(const FeatureBlock& block, std::size_t begin,
                                              std::size_t end, double* out) const {
  delay_differences_into(block, begin, end, out);
  const std::size_t n = end - begin;
  for (std::size_t i = 0; i < n; ++i) out[i] /= noise_sigma;
  normal_cdf_batch({out, n}, {out, n});
}

ChipLinearView::ChipLinearView(std::vector<DeviceLinearView> devices) {
  XPUF_REQUIRE(!devices.empty(), "chip view needs at least one device");
  const std::size_t f = devices.front().features();
  weights_ = linalg::Matrix(devices.size(), f);
  // The transposed copy makes the tile kernels' inner PUF loop contiguous:
  // row i of weights_t_ holds every device's weight for feature i. Rows are
  // zero-padded to a four-lane stride so the AVX2 kernels can issue whole
  // vector loads; the padding lanes accumulate zeros and are never stored.
  weights_t_ = linalg::Matrix(f, (devices.size() + 3) / 4 * 4);
  noise_sigmas_.reserve(devices.size());
  for (std::size_t p = 0; p < devices.size(); ++p) {
    XPUF_REQUIRE(devices[p].features() == f, "mixed stage counts in chip view");
    const double* w = devices[p].weights.data();
    double* row = weights_.row(p);
    for (std::size_t i = 0; i < f; ++i) {
      row[i] = w[i];
      weights_t_(i, p) = w[i];
    }
    noise_sigmas_.push_back(devices[p].noise_sigma);
  }
}

double ChipLinearView::noise_sigma(std::size_t puf_index) const {
  XPUF_REQUIRE(puf_index < noise_sigmas_.size(), "PUF index out of range");
  return noise_sigmas_[puf_index];
}

// Empty blocks produce an empty matrix, mirroring the tile kernels.
linalg::Matrix ChipLinearView::delay_differences(const FeatureBlock& block) const {
  if (block.empty()) return linalg::Matrix(0, puf_count());
  XPUF_REQUIRE(block.features() == features(), "feature length mismatch");
  return linalg::matmul_nt(block.phi(), weights_);
}

// Same empty-block contract.
linalg::Matrix ChipLinearView::one_probabilities(const FeatureBlock& block) const {
  linalg::Matrix delays = delay_differences(block);
  for (std::size_t r = 0; r < delays.rows(); ++r) {
    double* row = delays.row(r);
    for (std::size_t p = 0; p < noise_sigmas_.size(); ++p) row[p] /= noise_sigmas_[p];
  }
  const std::size_t n = delays.rows() * delays.cols();
  std::span<double> flat(delays.row(0), n);
  normal_cdf_batch(flat, flat);
  return delays;
}

namespace {

/// Feature-outer tile kernel for a compile-time PUF count: every output
/// element still sums its w(p, i) * phi[i] terms in ascending i — identical
/// to matmul_nt's per-element order, so the result is bit-identical — but
/// the N accumulation chains are independent, live in registers, and the
/// inner loop is contiguous over the transposed weights.
template <std::size_t N>
[[gnu::noinline]] void delay_tile_fixed(const linalg::Matrix& weights_t,
                                        const FeatureBlock& block, std::size_t begin,
                                        std::size_t end, double* out) {
  const std::size_t f = weights_t.rows();
  for (std::size_t r = begin; r < end; ++r) {
    const double* phi = block.row(r);
    double acc[N] = {};
    for (std::size_t i = 0; i < f; ++i) {
      const double phi_i = phi[i];
      const double* wt = weights_t.row(i);
      for (std::size_t p = 0; p < N; ++p) acc[p] += wt[p] * phi_i;
    }
    double* orow = out + (r - begin) * N;
    for (std::size_t p = 0; p < N; ++p) orow[p] = acc[p];
  }
}

/// Runtime-width fallback, same accumulation order. `n` is the true PUF
/// count; weights_t rows may be zero-padded beyond it.
void delay_tile_generic(const linalg::Matrix& weights_t, std::size_t n,
                        const FeatureBlock& block, std::size_t begin, std::size_t end,
                        double* out) {
  const std::size_t f = weights_t.rows();
  std::vector<double> acc(n);
  for (std::size_t r = begin; r < end; ++r) {
    const double* phi = block.row(r);
    for (std::size_t p = 0; p < n; ++p) acc[p] = 0.0;
    for (std::size_t i = 0; i < f; ++i) {
      const double phi_i = phi[i];
      const double* wt = weights_t.row(i);
      for (std::size_t p = 0; p < n; ++p) acc[p] += wt[p] * phi_i;
    }
    double* orow = out + (r - begin) * n;
    for (std::size_t p = 0; p < n; ++p) orow[p] = acc[p];
  }
}

#if defined(__AVX2__)

/// Inner body of the AVX2 tile: R challenge rows x V four-wide lanes over
/// the zero-padded PUF dimension. Each output element owns one vector lane
/// and accumulates its w(p, i) * phi[i] terms serially in ascending i — the
/// exact scalar order — and vmulpd/vaddpd are per-lane IEEE operations with
/// contraction pinned off, so the result is bit-identical to the scalar
/// dot. Unrolling rows keeps R x V independent add chains in flight, which
/// is what hides the four-cycle vaddpd latency the single-dot walk eats.
template <std::size_t V, std::size_t R>
inline void avx2_rows(const double* w0, std::size_t f, std::size_t stride,
                      const double* const* phi, const double* div, double* tmp) {
  __m256d acc[R][V];
  for (std::size_t q = 0; q < R; ++q)
    for (std::size_t v = 0; v < V; ++v) acc[q][v] = _mm256_setzero_pd();
  const double* wt = w0;
  for (std::size_t i = 0; i < f; ++i, wt += stride) {
    for (std::size_t q = 0; q < R; ++q) {
      const __m256d ph = _mm256_broadcast_sd(phi[q] + i);
      for (std::size_t v = 0; v < V; ++v)
        acc[q][v] =
            _mm256_add_pd(acc[q][v], _mm256_mul_pd(_mm256_loadu_pd(wt + 4 * v), ph));
    }
  }
  // Optionally divide each lane on the way out (the noise-sigma step of
  // one_probabilities): vdivpd is the exact same single IEEE division per
  // element the scalar path performs, four lanes at a time — never a
  // reciprocal multiply.
  for (std::size_t q = 0; q < R; ++q)
    for (std::size_t v = 0; v < V; ++v) {
      __m256d a = acc[q][v];
      if (div != nullptr) a = _mm256_div_pd(a, _mm256_loadu_pd(div + 4 * v));
      _mm256_storeu_pd(tmp + (q * V + v) * 4, a);
    }
}

/// AVX2 tile kernel for PUF counts up to 4 * V. `div`, when non-null, points
/// at `stride` per-lane divisors applied to every row before the store.
template <std::size_t V>
[[gnu::noinline]] void delay_tile_avx2(const linalg::Matrix& weights_t, std::size_t n,
                                       const FeatureBlock& block, std::size_t begin,
                                       std::size_t end, double* out, const double* div) {
  const std::size_t f = weights_t.rows();
  const std::size_t stride = weights_t.cols();
  const double* w0 = weights_t.row(0);
  // Four rows per pass; V == 3 drops to two to stay within sixteen ymm regs.
  constexpr std::size_t kRows = V >= 3 ? 2 : 4;
  double tmp[kRows * V * 4];
  const double* phi[kRows];
  std::size_t r = begin;
  for (; r + kRows <= end; r += kRows) {
    for (std::size_t q = 0; q < kRows; ++q) phi[q] = block.row(r + q);
    avx2_rows<V, kRows>(w0, f, stride, phi, div, tmp);
    double* orow = out + (r - begin) * n;
    for (std::size_t q = 0; q < kRows; ++q)
      for (std::size_t p = 0; p < n; ++p) orow[q * n + p] = tmp[q * V * 4 + p];
  }
  for (; r < end; ++r) {
    phi[0] = block.row(r);
    avx2_rows<V, 1>(w0, f, stride, phi, div, tmp);
    double* orow = out + (r - begin) * n;
    for (std::size_t p = 0; p < n; ++p) orow[p] = tmp[p];
  }
}

/// Dispatches the AVX2 tile for the supported widths; returns false for
/// widths the portable kernels must handle.
bool avx2_dispatch(const linalg::Matrix& weights_t, std::size_t n,
                   const FeatureBlock& block, std::size_t begin, std::size_t end,
                   double* out, const double* div) {
  if (n < 1 || n > 12) return false;
  switch ((n + 3) / 4) {
    case 1: delay_tile_avx2<1>(weights_t, n, block, begin, end, out, div); return true;
    case 2: delay_tile_avx2<2>(weights_t, n, block, begin, end, out, div); return true;
    default: delay_tile_avx2<3>(weights_t, n, block, begin, end, out, div); return true;
  }
}

#endif  // __AVX2__

}  // namespace

// Tile contract as in DeviceLinearView.
void ChipLinearView::delay_differences_into(const FeatureBlock& block, std::size_t begin,
                                            std::size_t end, double* out) const {
  XPUF_REQUIRE(end <= block.size() && begin <= end, "tile range out of bounds");
  XPUF_REQUIRE(begin == end || block.features() == features(), "feature length mismatch");
  // Dispatch to a register-blocked kernel for the paper's XOR widths; every
  // branch computes the exact same IEEE operation sequence per element.
  const std::size_t n = puf_count();
#if defined(__AVX2__)
  if (avx2_dispatch(weights_t_, n, block, begin, end, out, nullptr)) return;
#endif
  switch (n) {
    case 1: delay_tile_fixed<1>(weights_t_, block, begin, end, out); break;
    case 2: delay_tile_fixed<2>(weights_t_, block, begin, end, out); break;
    case 3: delay_tile_fixed<3>(weights_t_, block, begin, end, out); break;
    case 4: delay_tile_fixed<4>(weights_t_, block, begin, end, out); break;
    case 5: delay_tile_fixed<5>(weights_t_, block, begin, end, out); break;
    case 6: delay_tile_fixed<6>(weights_t_, block, begin, end, out); break;
    case 7: delay_tile_fixed<7>(weights_t_, block, begin, end, out); break;
    case 8: delay_tile_fixed<8>(weights_t_, block, begin, end, out); break;
    case 10: delay_tile_fixed<10>(weights_t_, block, begin, end, out); break;
    default: delay_tile_generic(weights_t_, n, block, begin, end, out); break;
  }
}

// Same tile contract.
void ChipLinearView::one_probabilities_into(const FeatureBlock& block, std::size_t begin,
                                            std::size_t end, double* out) const {
  XPUF_REQUIRE(end <= block.size() && begin <= end, "tile range out of bounds");
  XPUF_REQUIRE(begin == end || block.features() == features(), "feature length mismatch");
  const std::size_t n = puf_count();
  const std::size_t total = (end - begin) * n;
#if defined(__AVX2__)
  // Fused path: the sigma division rides the tile's store (one pass over the
  // data instead of two), with padding lanes dividing by 1.0.
  if (n >= 1 && n <= 12) {
    double sig[12 + 3] = {};
    const std::size_t stride = weights_t_.cols();
    for (std::size_t i = 0; i < stride; ++i) sig[i] = i < n ? noise_sigmas_[i] : 1.0;
    if (avx2_dispatch(weights_t_, n, block, begin, end, out, sig)) {
      normal_cdf_batch({out, total}, {out, total});
      return;
    }
  }
#endif
  delay_differences_into(block, begin, end, out);
  for (std::size_t r = 0; r < end - begin; ++r)
    for (std::size_t p = 0; p < n; ++p) out[r * n + p] /= noise_sigmas_[p];
  normal_cdf_batch({out, total}, {out, total});
}

}  // namespace xpuf::sim
