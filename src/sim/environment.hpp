// Operating-condition model: supply voltage and temperature effects on the
// simulated 32 nm arbiter PUF delays.
//
// The paper measures 1M challenges at 9 corners (0.8/0.9/1.0 V x 0/25/60 C)
// and relies on two silicon effects: (i) marginally stable CRPs flip when
// the corner moves, and (ii) the measured-vs-predicted soft-response scatter
// widens (Fig 11) while strongly biased CRPs stay stable. The model below
// reproduces both with three mechanisms:
//
//   delta_i(e) = delta_i * scale(e) + kappa_i * shift(e)     (per stage)
//   sigma_noise(e) = sigma_noise * noise_scale(e)
//
// - scale(e): uniform delay-difference scaling (global drift; does not flip
//   responses by itself but changes the delay-to-noise ratio),
// - shift(e) * kappa_i: per-stage additive sensitivity with chip-specific
//   random coefficients kappa (rotates the effective weight vector, which is
//   what flips marginal responses),
// - noise_scale(e): thermal noise floor grows away from nominal.
#pragma once

#include <string>
#include <vector>

namespace xpuf::sim {

/// One operating condition. Nominal is 0.9 V / 25 C (the paper's enrollment
/// corner).
struct Environment {
  double voltage = 0.9;      ///< volts
  double temperature = 25.0; ///< degrees Celsius

  static Environment nominal() { return {0.9, 25.0}; }

  bool operator==(const Environment&) const = default;

  std::string label() const;  ///< e.g. "0.8V/60C"
};

/// The paper's 3x3 test grid: 0.8/0.9/1.0 V x 0/25/60 C.
std::vector<Environment> paper_corner_grid();

/// Coefficients mapping an Environment to the three mechanisms above.
/// Voltage enters as dv = V - 0.9 (volts); temperature as
/// dt = (T - 25) / 100 (so the paper's span is dt in [-0.25, +0.35]).
struct EnvironmentModel {
  /// Calibration note: the shift (weight-vector rotation) coefficients are
  /// deliberately small — on the paper's silicon (Fig 11), CRPs that flip
  /// under V/T are confined to the moderately-biased middle of the
  /// prediction range, which is what makes multiplicative beta tightening
  /// sufficient. Large rotations would flip even strongly-biased CRPs that
  /// no beta can exclude, contradicting the measured behavior.
  double scale_voltage = -0.80;  ///< d(scale)/dv: delays stretch at low VDD
  double scale_temperature = 0.25;
  double shift_voltage = 0.25;   ///< d(shift)/dv: weight-vector rotation
  double shift_temperature = 0.12;
  double noise_voltage = 2.50;   ///< d(noise_scale)/d|dv|
  double noise_temperature = 1.20;

  /// Multiplicative delay-difference scale; always kept >= 0.1.
  double delay_scale(const Environment& e) const;

  /// Additive sensitivity magnitude multiplying each stage's kappa.
  double sensitivity_shift(const Environment& e) const;

  /// Thermal-noise scale; 1.0 at nominal, grows away from it.
  double noise_scale(const Environment& e) const;
};

}  // namespace xpuf::sim
