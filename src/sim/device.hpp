// Stage-level MUX arbiter PUF device simulation.
//
// This is the "silicon": each of the k delay stages carries a straight and a
// crossed top-minus-bottom delay difference drawn from process variation,
// plus a per-stage environmental sensitivity. Evaluation walks the stages
// recursively — the same signal-propagation structure as the physical race —
// and the arbiter compares the final delay difference against thermal noise.
//
// The device deliberately does NOT use the reduced linear form w . phi for
// evaluation; the attacker/server models in src/puf do. A property test
// proves the recursive walk equals the reduced form, mirroring the
// silicon-validated equivalence the paper's modeling rests on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "linalg/vector.hpp"
#include "sim/environment.hpp"

namespace xpuf::sim {

// Batch-evaluation types (defined in sim/linear.hpp, which includes this
// header; the device only needs to name them in signatures).
class FeatureBlock;
struct DeviceLinearView;

/// Challenge bits, one per stage, c_i in {0, 1}. 0 = straight, 1 = crossed.
using Challenge = std::vector<std::uint8_t>;

/// Draws a uniformly random challenge of the given length.
Challenge random_challenge(std::size_t stages, Rng& rng);

/// Same draw sequence as random_challenge, written into an existing buffer
/// (resized to `stages`) so chunked producers can regenerate challenges
/// without per-challenge allocation.
void random_challenge_into(Challenge& out, std::size_t stages, Rng& rng);

/// Per-stage process parameters: top-minus-bottom delay differences added by
/// the stage for each select value, and the matching V/T sensitivities.
struct StageDelays {
  double straight = 0.0;        ///< delta when the select bit is 0
  double crossed = 0.0;         ///< delta when the select bit is 1
  double straight_sensitivity = 0.0;  ///< kappa multiplying the env shift
  double crossed_sensitivity = 0.0;
  double straight_aging = 0.0;  ///< eta multiplying the aging drift level
  double crossed_aging = 0.0;
};

/// Process/noise parameters for one device.
struct DeviceParameters {
  std::size_t stages = 32;        ///< the paper's chips have 32 MUX stages
  double sigma_process = 1.0;     ///< per-stage delay-difference sigma
  double sigma_sensitivity = 0.5; ///< per-stage kappa sigma
  /// Nominal arbiter thermal-noise sigma. The default places the
  /// delay-to-noise ratio at sqrt(stages)/0.327 ~ 17.3 for 32 stages, which
  /// calibrates the fraction of 100%-stable challenges (at K = 100,000
  /// evaluations) to the paper's measured ~80% (Fig 2/3).
  double sigma_noise = 0.327;
  /// Per-stage BTI aging-drift direction sigma; the drift magnitude follows
  /// the classic power law sigma_aging * (t / 1000 h)^aging_exponent, so a
  /// device accumulates a persistent, device-specific delay shift over its
  /// lifetime (the aging concern the paper lists alongside V/T, Sec 1).
  double sigma_aging = 0.25;
  double aging_exponent = 0.2;
};

class ArbiterPufDevice {
 public:
  /// Fabricates a device: draws all stage parameters from the RNG.
  ArbiterPufDevice(const DeviceParameters& params, const EnvironmentModel& env_model,
                   Rng& rng);

  std::size_t stages() const { return stage_delays_.size(); }

  /// Noise-free total delay difference at the arbiter for a challenge,
  /// computed by the recursive stage walk under the given environment.
  double delay_difference(const Challenge& challenge, const Environment& env) const;

  /// Probability the arbiter outputs 1 for this challenge at this corner:
  /// Phi(delta / sigma_noise(env)). This is what an infinite-trial counter
  /// would converge to, and what the exact binomial counter samples from.
  double one_probability(const Challenge& challenge, const Environment& env) const;

  /// One noisy evaluation: delta plus a fresh thermal-noise draw, arbitrated.
  bool evaluate(const Challenge& challenge, const Environment& env, Rng& rng) const;

  /// Thermal-noise sigma at a corner.
  double noise_sigma(const Environment& env) const;

  /// Accumulates BTI-style stress: the device's delay differences drift by
  /// eta_i * sigma_aging * (t_total / 1000 h)^aging_exponent where the
  /// per-stage directions eta were fixed at fabrication. Irreversible.
  void age(double stress_hours);

  /// Total stress accumulated so far.
  double stress_hours() const { return stress_hours_; }

  /// Ground-truth reduced additive-model weights at a corner (length
  /// stages + 1). Exposed for tests and analysis only — the authentication
  /// protocol never reads this; it must *learn* the weights from soft
  /// responses like the paper's server does.
  linalg::Vector reduced_weights(const Environment& env) const;

  /// Linear-view snapshot at a corner: reduced weights + noise sigma with
  /// the environment scale/shift and aging level baked in once, so batch
  /// evaluation never re-derives them per challenge. The snapshot does not
  /// track later age() calls — rebuild after aging. Same access contract as
  /// reduced_weights (tests/analysis/batch core, not protocol code).
  DeviceLinearView linear_view(const Environment& env) const;

  /// Batch evaluation over a feature block (see sim/linear.hpp): one value
  /// per block row, computed from the linear view. Agrees with the
  /// recursive delay_difference to linear-reduction rounding (~1e-12), and
  /// bit-exactly with linear_view(env).delay(phi) per row.
  linalg::Vector delay_differences(const FeatureBlock& block,
                                   const Environment& env) const;
  linalg::Vector one_probabilities(const FeatureBlock& block,
                                   const Environment& env) const;

  const DeviceParameters& parameters() const { return params_; }

 private:
  DeviceParameters params_;
  EnvironmentModel env_model_;
  std::vector<StageDelays> stage_delays_;
  double stress_hours_ = 0.0;

  /// Current aging drift level (multiplies the per-stage eta directions).
  double aging_level() const;

  /// Effective per-stage deltas at a corner.
  double effective_straight(std::size_t i, double scale, double shift, double aging) const;
  double effective_crossed(std::size_t i, double scale, double shift, double aging) const;
};

}  // namespace xpuf::sim
