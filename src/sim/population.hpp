// A fab lot of simulated XOR PUF chips (the paper tests 10).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/chip.hpp"

namespace xpuf::sim {

struct PopulationConfig {
  std::size_t n_chips = 10;
  std::size_t n_pufs_per_chip = 10;  ///< enough parallel PUFs for n up to 10
  DeviceParameters device;
  EnvironmentModel environment;
  std::uint64_t seed = 2017;
};

/// Owns the chips of one lot; chips are i.i.d. process draws from the same
/// device parameters, which reproduces the chip-to-chip spread the paper
/// reports through per-chip beta ranges.
class ChipPopulation {
 public:
  explicit ChipPopulation(const PopulationConfig& config);

  std::size_t size() const { return chips_.size(); }
  XorPufChip& chip(std::size_t i);
  const XorPufChip& chip(std::size_t i) const;

  const PopulationConfig& config() const { return config_; }

  /// A fresh RNG stream derived from the lot seed, for measurement noise
  /// (keeps fabrication and measurement randomness decoupled).
  Rng measurement_rng() const;

 private:
  PopulationConfig config_;
  std::vector<XorPufChip> chips_;
};

}  // namespace xpuf::sim
