#include "sim/chip.hpp"

#include "common/error.hpp"

namespace xpuf::sim {

XorPufChip::XorPufChip(std::size_t chip_id, std::size_t n_pufs,
                       const DeviceParameters& params, const EnvironmentModel& env_model,
                       Rng& rng)
    : chip_id_(chip_id), fuses_(n_pufs) {
  XPUF_REQUIRE(n_pufs > 0, "a chip needs at least one PUF");
  devices_.reserve(n_pufs);
  for (std::size_t i = 0; i < n_pufs; ++i) devices_.emplace_back(params, env_model, rng);
}

bool XorPufChip::xor_response(const Challenge& challenge, const Environment& env,
                              Rng& rng) const {
  XPUF_REQUIRE(challenge.size() == stages(), "challenge length != chip stage count");
  bool out = false;
  for (const auto& d : devices_) out ^= d.evaluate(challenge, env, rng);
  return out;
}

void XorPufChip::check_tap(std::size_t puf_index) const {
  XPUF_REQUIRE(puf_index < devices_.size(), "PUF index out of range");
  if (!fuses_.intact(puf_index))
    throw AccessError("individual PUF tap " + std::to_string(puf_index) +
                      " is fused off (chip " + std::to_string(chip_id_) + " is deployed)");
}

bool XorPufChip::individual_response(std::size_t puf_index, const Challenge& challenge,
                                     const Environment& env, Rng& rng) const {
  XPUF_REQUIRE(challenge.size() == stages(), "challenge length != chip stage count");
  check_tap(puf_index);
  return devices_[puf_index].evaluate(challenge, env, rng);
}

SoftMeasurement XorPufChip::measure_soft_response(std::size_t puf_index,
                                                  const Challenge& challenge,
                                                  const Environment& env,
                                                  std::uint64_t trials, Rng& rng) const {
  check_tap(puf_index);
  XPUF_REQUIRE(trials > 0, "soft-response measurement needs at least one trial");
  const double p = devices_[puf_index].one_probability(challenge, env);
  return {rng.binomial(trials, p), trials};
}

SoftMeasurement XorPufChip::measure_xor_soft_response(const Challenge& challenge,
                                                      const Environment& env,
                                                      std::uint64_t trials,
                                                      Rng& rng) const {
  XPUF_REQUIRE(trials > 0, "soft-response measurement needs at least one trial");
  // The XOR of independent Bernoulli responses is Bernoulli with
  // p_xor = (1 - prod(1 - 2 p_i)) / 2 (parity of independent bits), so the
  // counter statistic is again an exact binomial sample.
  double prod = 1.0;
  for (const auto& d : devices_) prod *= 1.0 - 2.0 * d.one_probability(challenge, env);
  const double p_xor = 0.5 * (1.0 - prod);
  return {rng.binomial(trials, p_xor), trials};
}

bool XorPufChip::tap_accessible(std::size_t puf_index) const {
  XPUF_REQUIRE(puf_index < devices_.size(), "PUF index out of range");
  return fuses_.intact(puf_index);
}

void XorPufChip::blow_fuses() { fuses_.blow_all(); }

void XorPufChip::age(double stress_hours) {
  for (auto& d : devices_) d.age(stress_hours);
}

double XorPufChip::stress_hours() const { return devices_.front().stress_hours(); }

const ArbiterPufDevice& XorPufChip::device_for_analysis(std::size_t puf_index) const {
  XPUF_REQUIRE(puf_index < devices_.size(), "PUF index out of range");
  return devices_[puf_index];
}

}  // namespace xpuf::sim
