#include "sim/chip.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace xpuf::sim {

namespace {
// Challenges per parallel chunk in the batched XOR paths. Fixed (never
// derived from the thread count) so the chunk grid is identical for any
// pool size; matches the tester's scan chunking.
constexpr std::size_t kXorChunk = 64;
}  // namespace

XorPufChip::XorPufChip(std::size_t chip_id, std::size_t n_pufs,
                       const DeviceParameters& params, const EnvironmentModel& env_model,
                       Rng& rng)
    : chip_id_(chip_id), fuses_(n_pufs) {
  XPUF_REQUIRE(n_pufs > 0, "a chip needs at least one PUF");
  devices_.reserve(n_pufs);
  for (std::size_t i = 0; i < n_pufs; ++i) devices_.emplace_back(params, env_model, rng);
}

bool XorPufChip::xor_response(const Challenge& challenge, const Environment& env,
                              Rng& rng) const {
  XPUF_REQUIRE(challenge.size() == stages(), "challenge length != chip stage count");
  bool out = false;
  for (const auto& d : devices_) out ^= d.evaluate(challenge, env, rng);
  return out;
}

void XorPufChip::check_tap(std::size_t puf_index) const {
  XPUF_REQUIRE(puf_index < devices_.size(), "PUF index out of range");
  if (!fuses_.intact(puf_index))
    throw AccessError("individual PUF tap " + std::to_string(puf_index) +
                      " is fused off (chip " + std::to_string(chip_id_) + " is deployed)");
}

bool XorPufChip::individual_response(std::size_t puf_index, const Challenge& challenge,
                                     const Environment& env, Rng& rng) const {
  XPUF_REQUIRE(challenge.size() == stages(), "challenge length != chip stage count");
  check_tap(puf_index);
  return devices_[puf_index].evaluate(challenge, env, rng);
}

SoftMeasurement XorPufChip::measure_soft_response(std::size_t puf_index,
                                                  const Challenge& challenge,
                                                  const Environment& env,
                                                  std::uint64_t trials, Rng& rng) const {
  check_tap(puf_index);
  XPUF_REQUIRE(trials > 0, "soft-response measurement needs at least one trial");
  const double p = devices_[puf_index].one_probability(challenge, env);
  return {rng.binomial(trials, p), trials};
}

SoftMeasurement XorPufChip::measure_xor_soft_response(const Challenge& challenge,
                                                      const Environment& env,
                                                      std::uint64_t trials,
                                                      Rng& rng) const {
  XPUF_REQUIRE(trials > 0, "soft-response measurement needs at least one trial");
  // The XOR of independent Bernoulli responses is Bernoulli with
  // p_xor = (1 - prod(1 - 2 p_i)) / 2 (parity of independent bits), so the
  // counter statistic is again an exact binomial sample.
  double prod = 1.0;
  for (const auto& d : devices_) prod *= 1.0 - 2.0 * d.one_probability(challenge, env);
  const double p_xor = 0.5 * (1.0 - prod);
  return {rng.binomial(trials, p_xor), trials};
}

ChipLinearView XorPufChip::internal_view(const Environment& env,
                                         std::size_t n_pufs) const {
  XPUF_REQUIRE(n_pufs >= 1 && n_pufs <= devices_.size(), "n_pufs out of range");
  std::vector<DeviceLinearView> views;
  views.reserve(n_pufs);
  for (std::size_t p = 0; p < n_pufs; ++p) views.push_back(devices_[p].linear_view(env));
  return ChipLinearView(std::move(views));
}

ChipLinearView XorPufChip::linear_view(const Environment& env, std::size_t n_pufs) const {
  XPUF_REQUIRE(n_pufs >= 1 && n_pufs <= devices_.size(), "n_pufs out of range");
  for (std::size_t p = 0; p < n_pufs; ++p) check_tap(p);
  return internal_view(env, n_pufs);
}

// Index range and fuse state are both guarded by check_tap.
// xpuf-lint: guarded-by(check_tap)
DeviceLinearView XorPufChip::device_linear_view(std::size_t puf_index,
                                                const Environment& env) const {
  check_tap(puf_index);
  return devices_[puf_index].linear_view(env);
}

linalg::Matrix XorPufChip::one_probabilities(const FeatureBlock& block,
                                             const Environment& env) const {
  return linear_view(env).one_probabilities(block);
}

// An empty block yields an empty response batch.
std::vector<std::uint8_t> XorPufChip::xor_responses(const FeatureBlock& block,
                                                    const Environment& env,
                                                    const StreamFamily& streams) const {
  if (block.empty()) return {};
  XPUF_REQUIRE(block.stages() == stages(), "challenge length != chip stage count");
  const ChipLinearView view = internal_view(env, devices_.size());
  const std::size_t n = view.puf_count();
  std::vector<std::uint8_t> out(block.size(), 0);
  parallel_for(block.size(), kXorChunk,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 std::vector<double> deltas((end - begin) * n);
                 view.delay_differences_into(block, begin, end, deltas.data());
                 for (std::size_t c = begin; c < end; ++c) {
                   Rng cell_rng = streams.stream(c);
                   const double* row = deltas.data() + (c - begin) * n;
                   bool bit = false;
                   // Same arbitration and draw order as xor_response: one
                   // thermal-noise draw per device, in device order.
                   for (std::size_t p = 0; p < n; ++p)
                     bit ^= row[p] + cell_rng.normal(0.0, view.noise_sigma(p)) > 0.0;
                   out[c] = bit ? 1 : 0;
                 }
               });
  return out;
}

// Same empty-block contract as xor_responses.
std::vector<SoftMeasurement> XorPufChip::measure_xor_soft_responses(
    const FeatureBlock& block, const Environment& env, std::uint64_t trials,
    const StreamFamily& streams) const {
  XPUF_REQUIRE(trials > 0, "soft-response measurement needs at least one trial");
  if (block.empty()) return {};
  XPUF_REQUIRE(block.stages() == stages(), "challenge length != chip stage count");
  const ChipLinearView view = internal_view(env, devices_.size());
  const std::size_t n = view.puf_count();
  std::vector<SoftMeasurement> out(block.size());
  parallel_for(block.size(), kXorChunk,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 std::vector<double> probs((end - begin) * n);
                 view.one_probabilities_into(block, begin, end, probs.data());
                 for (std::size_t c = begin; c < end; ++c) {
                   Rng cell_rng = streams.stream(c);
                   const double* row = probs.data() + (c - begin) * n;
                   // Parity of independent bits, as in measure_xor_soft_response.
                   double prod = 1.0;
                   for (std::size_t p = 0; p < n; ++p) prod *= 1.0 - 2.0 * row[p];
                   const double p_xor = 0.5 * (1.0 - prod);
                   out[c] = {cell_rng.binomial(trials, p_xor), trials};
                 }
               });
  return out;
}

bool XorPufChip::tap_accessible(std::size_t puf_index) const {
  XPUF_REQUIRE(puf_index < devices_.size(), "PUF index out of range");
  return fuses_.intact(puf_index);
}

void XorPufChip::blow_fuses() { fuses_.blow_all(); }

void XorPufChip::age(double stress_hours) {
  for (auto& d : devices_) d.age(stress_hours);
}

double XorPufChip::stress_hours() const { return devices_.front().stress_hours(); }

const ArbiterPufDevice& XorPufChip::device_for_analysis(std::size_t puf_index) const {
  XPUF_REQUIRE(puf_index < devices_.size(), "PUF index out of range");
  return devices_[puf_index];
}

}  // namespace xpuf::sim
