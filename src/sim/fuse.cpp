#include "sim/fuse.hpp"

#include "common/error.hpp"

namespace xpuf::sim {

FuseBank::FuseBank(std::size_t n_fuses) : blown_(n_fuses, false) {}

bool FuseBank::intact(std::size_t index) const {
  XPUF_REQUIRE(index < blown_.size(), "fuse index out of range");
  return !blown_[index];
}

void FuseBank::blow(std::size_t index) {
  XPUF_REQUIRE(index < blown_.size(), "fuse index out of range");
  blown_[index] = true;
}

void FuseBank::blow_all() {
  for (std::size_t i = 0; i < blown_.size(); ++i) blown_[i] = true;
}

bool FuseBank::all_blown() const {
  for (bool b : blown_)
    if (!b) return false;
  return true;
}

std::size_t FuseBank::blown_count() const {
  std::size_t n = 0;
  for (bool b : blown_)
    if (b) ++n;
  return n;
}

}  // namespace xpuf::sim
