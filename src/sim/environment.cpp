#include "sim/environment.hpp"

#include <cmath>
#include <sstream>

namespace xpuf::sim {

std::string Environment::label() const {
  std::ostringstream os;
  os << voltage << "V/" << temperature << "C";
  return os.str();
}

std::vector<Environment> paper_corner_grid() {
  std::vector<Environment> grid;
  for (double v : {0.8, 0.9, 1.0})
    for (double t : {0.0, 25.0, 60.0}) grid.push_back({v, t});
  return grid;
}

namespace {
double dv(const Environment& e) { return e.voltage - 0.9; }
double dt(const Environment& e) { return (e.temperature - 25.0) / 100.0; }
}  // namespace

double EnvironmentModel::delay_scale(const Environment& e) const {
  const double s = 1.0 + scale_voltage * dv(e) + scale_temperature * dt(e);
  return s < 0.1 ? 0.1 : s;
}

double EnvironmentModel::sensitivity_shift(const Environment& e) const {
  return shift_voltage * dv(e) + shift_temperature * dt(e);
}

double EnvironmentModel::noise_scale(const Environment& e) const {
  return 1.0 + noise_voltage * std::fabs(dv(e)) + noise_temperature * std::fabs(dt(e));
}

}  // namespace xpuf::sim
