// Batched linear-view evaluation core.
//
// The paper's workload is batch-shaped — millions of challenges scanned
// across n PUFs, 9 V/T corners, and repeated trials — and the additive delay
// model makes every noise-free delay a dense linear map: delta = w . phi(c).
// This header factors that observation into three value types:
//
//  - FeatureBlock: the row-major Phi matrix of a challenge batch, built once
//    and shared across PUFs, corners, and repeated scans (Phi depends only
//    on the challenges, never on the device or environment).
//  - DeviceLinearView: one device's reduced weights + noise sigma, frozen at
//    a given (Environment, aging) state.
//  - ChipLinearView: the stacked n_pufs x (k+1) weight matrix of a chip, so
//    a whole scan tile is ONE matmul_nt followed by normal_cdf_batch.
//
// Determinism contract: the full-batch products (matmul_nt) and the
// row-range `_into` tile kernels both accumulate each output element with
// the same ascending-index dot, so batch results are bit-identical to the
// scalar linear-view evaluation at any thread count or tile size. The tile
// kernels are serial by design — they are meant to run inside parallel_for
// chunk bodies, where nested parallelism already degrades to serial.
//
// A linear view is a snapshot: it does NOT track later ArbiterPufDevice::age
// calls or environment changes. Rebuild it per (Environment, aging) state.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "sim/device.hpp"

namespace xpuf::sim {

/// Writes phi(c) into a caller-provided buffer of challenge.size() + 1
/// doubles: phi_i = prod_{j >= i} (1 - 2 c_j), phi_{k+1} = 1. This is the
/// canonical parity-transform kernel; puf/transform.hpp delegates here.
void feature_fill(const Challenge& challenge, double* out);

/// Draws `count` uniformly random challenges (no dedup: with 2^32+ space,
/// collisions are negligible at paper scale and the paper samples
/// uniformly). The single shared implementation behind puf::random_challenges
/// and ChipTester::random_challenges.
std::vector<Challenge> random_challenges(std::size_t stages, std::size_t count,
                                         Rng& rng);

/// A challenge batch plus its precomputed row-major Phi matrix
/// (size() x (stages() + 1)). Build once per batch; reuse across PUFs,
/// corners, and scans — Phi is environment-independent.
class FeatureBlock {
 public:
  FeatureBlock() = default;
  explicit FeatureBlock(std::vector<Challenge> challenges);

  /// Rebuilds the block in place from a new challenge batch, reusing the
  /// existing challenge and Phi storage when capacity suffices. This is the
  /// zero-allocation refill the streaming scan producer performs once per
  /// chunk (after the first chunk warms the buffers).
  void assign(const std::vector<Challenge>& challenges);

  std::size_t size() const { return challenges_.size(); }
  bool empty() const { return challenges_.empty(); }
  /// Stage count k (0 for an empty block).
  std::size_t stages() const { return stages_; }
  /// Feature count k + 1 (0 for an empty block).
  std::size_t features() const { return empty() ? 0 : stages_ + 1; }

  const std::vector<Challenge>& challenges() const { return challenges_; }
  const Challenge& challenge(std::size_t i) const { return challenges_[i]; }
  const linalg::Matrix& phi() const { return phi_; }
  /// Row i of Phi (contiguous, features() doubles).
  const double* row(std::size_t i) const { return phi_.row(i); }

 private:
  std::vector<Challenge> challenges_;
  linalg::Matrix phi_;
  std::size_t stages_ = 0;
};

/// One device's additive-delay model frozen at an (Environment, aging)
/// state: delta(c) = weights . phi(c), flip probability
/// Phi_cdf(delta / noise_sigma). Obtain from ArbiterPufDevice::linear_view.
struct DeviceLinearView {
  linalg::Vector weights;   ///< reduced weights, length stages + 1
  double noise_sigma = 1.0; ///< arbiter thermal-noise sigma at the corner

  std::size_t features() const { return weights.size(); }

  /// Scalar evaluation from a precomputed feature row (ascending dot — the
  /// reference the batch kernels are bit-identical to).
  double delay(std::span<const double> phi) const;
  double one_probability(std::span<const double> phi) const;

  /// Batch evaluation over a block: out[i] for challenge i.
  linalg::Vector delay_differences(const FeatureBlock& block) const;
  linalg::Vector one_probabilities(const FeatureBlock& block) const;

  /// Tile kernels over block rows [begin, end), writing end - begin values
  /// into `out`. Serial; intended for parallel_for chunk bodies.
  void delay_differences_into(const FeatureBlock& block, std::size_t begin,
                              std::size_t end, double* out) const;
  void one_probabilities_into(const FeatureBlock& block, std::size_t begin,
                              std::size_t end, double* out) const;
};

/// A chip's n devices stacked into one weight matrix, so batch evaluation of
/// every (challenge, PUF) cell is a single Phi x W^T product.
class ChipLinearView {
 public:
  ChipLinearView() = default;
  explicit ChipLinearView(std::vector<DeviceLinearView> devices);

  std::size_t puf_count() const { return noise_sigmas_.size(); }
  std::size_t features() const { return weights_.cols(); }
  /// Stacked weights, puf_count() x features() row-major.
  const linalg::Matrix& weights() const { return weights_; }
  double noise_sigma(std::size_t puf_index) const;

  /// Full-batch products: row i holds challenge i, column p holds PUF p.
  /// delay_differences is one matmul_nt; one_probabilities divides each
  /// column by its noise sigma and applies normal_cdf_batch.
  linalg::Matrix delay_differences(const FeatureBlock& block) const;
  linalg::Matrix one_probabilities(const FeatureBlock& block) const;

  /// Tile kernels over block rows [begin, end): writes (end - begin) x
  /// puf_count() values row-major into `out`, bit-identical to the
  /// corresponding rows of the full-batch products. Serial by design.
  void delay_differences_into(const FeatureBlock& block, std::size_t begin,
                              std::size_t end, double* out) const;
  void one_probabilities_into(const FeatureBlock& block, std::size_t begin,
                              std::size_t end, double* out) const;

 private:
  linalg::Matrix weights_;           // puf_count x (k+1)
  linalg::Matrix weights_t_;         // (k+1) x puf_count zero-padded to a
                                     // four-lane stride, for the tile kernels
  std::vector<double> noise_sigmas_; // per-PUF sigma at the snapshot corner
};

}  // namespace xpuf::sim
