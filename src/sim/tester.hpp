// Batch test harness — the simulated PXI + USB DAQ bench setup of Fig 2.
//
// Applies challenge lists to a chip at a programmable corner and collects
// per-PUF soft responses through the fused taps (enrollment) or one-shot
// XOR responses (authentication-side measurements).
//
// Scans run on the global thread pool (common/parallel.hpp). Each scan
// draws ONE base value from the tester's stream and derives a private
// per-measurement child stream keyed by the (puf, challenge) cell index, so
// scan output is bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/chip.hpp"

namespace xpuf::sim {

/// Per-challenge measurement of every individual PUF on a chip.
struct ChipSoftScan {
  std::vector<Challenge> challenges;
  /// soft[p][c] = soft response of PUF p on challenge c.
  std::vector<std::vector<double>> soft;
  /// stable[p][c] = the counter saw zero flips.
  std::vector<std::vector<bool>> stable;
  std::uint64_t trials = 0;
  Environment environment;
};

class ChipTester {
 public:
  /// `trials` is the per-challenge evaluation count K (paper: 100,000).
  ChipTester(Environment env, std::uint64_t trials, Rng rng);

  const Environment& environment() const { return env_; }
  void set_environment(const Environment& env) { env_ = env; }
  std::uint64_t trials() const { return trials_; }

  /// Generates `count` uniformly random challenges for a chip's stage count.
  std::vector<Challenge> random_challenges(const XorPufChip& chip, std::size_t count);

  /// Measures soft responses of every individual PUF for every challenge.
  /// Requires all enrollment fuses intact.
  ChipSoftScan scan_individual(const XorPufChip& chip,
                               const std::vector<Challenge>& challenges);

  /// Measures soft responses of one individual PUF.
  std::vector<SoftMeasurement> scan_single(const XorPufChip& chip, std::size_t puf_index,
                                           const std::vector<Challenge>& challenges);

  /// One-shot XOR responses (the deployed-chip view).
  std::vector<bool> sample_xor(const XorPufChip& chip,
                               const std::vector<Challenge>& challenges);

  /// XOR soft responses over `trials` evaluations.
  std::vector<SoftMeasurement> scan_xor(const XorPufChip& chip,
                                        const std::vector<Challenge>& challenges);

 private:
  Environment env_;
  std::uint64_t trials_;
  Rng rng_;
};

}  // namespace xpuf::sim
