// Batch test harness — the simulated PXI + USB DAQ bench setup of Fig 2.
//
// Applies challenge lists to a chip at a programmable corner and collects
// per-PUF soft responses through the fused taps (enrollment) or one-shot
// XOR responses (authentication-side measurements).
//
// Scans run on the global thread pool (common/parallel.hpp). Each scan
// draws ONE base value from the tester's stream and derives a private
// per-measurement child stream keyed by the (puf, challenge) cell index, so
// scan output is bit-identical for any thread count.
//
// Two scan modes share that RNG contract. kBatched (the default) routes
// noise-free probabilities through the linear-view batch core — one feature
// block per scan, one GEMM tile per chunk — and draws the binomial counters
// per cell from the same streams. kScalar is the legacy reference: every
// cell walks the recursive stage model. Mode changes cost, not draws; see
// DESIGN.md "Batched evaluation core" for the equivalence contract.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/chip.hpp"
#include "sim/linear.hpp"

namespace xpuf::sim {

/// Per-challenge measurement of every individual PUF on a chip.
struct ChipSoftScan {
  std::vector<Challenge> challenges;
  /// soft[p][c] = soft response of PUF p on challenge c.
  std::vector<std::vector<double>> soft;
  /// stable[p][c] = the counter saw zero flips.
  std::vector<std::vector<bool>> stable;
  std::uint64_t trials = 0;
  Environment environment;
};

/// How a scan turns challenges into noise-free probabilities. Binomial /
/// arbitration draws are per-cell in both modes, so results agree cell for
/// cell; only the evaluation cost differs.
enum class ScanMode {
  kScalar,   ///< legacy reference: recursive stage walk per (PUF, challenge)
  kBatched,  ///< linear-view batch core: one GEMM tile per parallel chunk
};

/// One chunk of a streaming individual-PUF scan: `block` holds the chunk's
/// challenges + Phi rows, `soft[p][i]` / `stable[p][i]` the measurements for
/// global challenge `offset + i`. All vectors keep their heap blocks across
/// next() calls, so a steady-state chunk costs zero allocations.
struct ScanChunk {
  std::size_t offset = 0;
  FeatureBlock block;
  /// soft[p][i] = soft response of PUF p on the chunk's i-th challenge.
  std::vector<std::vector<double>> soft;
  /// stable[p][i] = the counter saw zero flips (byte flags, not packed bits,
  /// so parallel chunk workers never share a word).
  std::vector<std::vector<std::uint8_t>> stable;
};

/// Chunked producer over a ChipTester scan: generates challenges, measures
/// every (PUF, challenge) cell, and hands back fixed-size ScanChunks instead
/// of whole-scan vectors, so a scan of any length runs in O(chunk) memory.
///
/// Determinism contract: a stream over `total` challenges is bit-identical
/// to the materialized sequence `random_challenges(total)` followed by
/// `scan_individual` — for ANY chunk size. Challenges replay the exact draw
/// sequence of the materialized path from a saved generator copy (the
/// tester's generator is pre-advanced past those draws at construction), and
/// every cell's measurement stream is keyed by `p * total + c` off one base
/// draw taken after the pre-roll, exactly where scan_individual takes it.
/// reset() rewinds to the first chunk and replays the identical scan — the
/// two-pass trick streaming enrollment uses instead of storing the data.
///
/// The stream borrows the chip; it must outlive the stream.
class ChipScanStream {
 public:
  std::size_t total() const { return total_; }
  std::size_t chunk_challenges() const { return chunk_; }
  std::size_t position() const { return position_; }

  /// Fills `chunk` with the next up-to-chunk_challenges() challenges and
  /// their measurements; returns false (leaving `chunk` untouched) when the
  /// scan is exhausted.
  bool next(ScanChunk& chunk);

  /// Rewinds to the first chunk; the replayed scan is bit-identical.
  void reset();

 private:
  friend class ChipTester;
  ChipScanStream(const XorPufChip& chip, const Environment& env,
                 std::uint64_t trials, ScanMode mode, std::size_t total,
                 std::size_t chunk, Rng& tester_rng);

  const XorPufChip* chip_ = nullptr;
  Environment env_;
  std::uint64_t trials_ = 0;
  ScanMode mode_ = ScanMode::kBatched;
  std::size_t total_ = 0;
  std::size_t chunk_ = 0;
  std::size_t position_ = 0;
  Rng challenge_rng_;        ///< replays the challenge draws, chunk by chunk
  Rng challenge_rng_start_;  ///< saved copy for reset()
  std::uint64_t base_ = 0;   ///< keys every cell's measurement stream
  ChipLinearView view_;      ///< batched-mode snapshot (kScalar leaves it empty)
  std::vector<double> soft_lut_;
  std::vector<Challenge> challenge_buf_;
};

class ChipTester {
 public:
  /// `trials` is the per-challenge evaluation count K (paper: 100,000).
  ChipTester(Environment env, std::uint64_t trials, Rng rng,
             ScanMode mode = ScanMode::kBatched);

  const Environment& environment() const { return env_; }
  void set_environment(const Environment& env) { env_ = env; }
  std::uint64_t trials() const { return trials_; }
  ScanMode mode() const { return mode_; }
  void set_mode(ScanMode mode) { mode_ = mode; }

  /// Generates `count` uniformly random challenges for a chip's stage count.
  std::vector<Challenge> random_challenges(const XorPufChip& chip, std::size_t count);

  /// Measures soft responses of every individual PUF for every challenge.
  /// Requires all enrollment fuses intact.
  ChipSoftScan scan_individual(const XorPufChip& chip,
                               const std::vector<Challenge>& challenges);
  /// Feature-block overload: callers scanning the same challenge set at
  /// several corners (the 9-corner enrollment sweeps) build the Phi block
  /// once and reuse it here — the batched mode never recomputes it.
  ChipSoftScan scan_individual(const XorPufChip& chip, const FeatureBlock& block);
  /// Storage-reusing variant for repeated scans (corner sweeps, reliability
  /// campaigns): writes into `scan`, whose vectors keep their heap blocks
  /// when the workload shape repeats — the per-scan allocation storm of a
  /// fresh result (one block per challenge) becomes plain copies. The
  /// written contents are identical to a fresh scan_individual result.
  void scan_individual_into(const XorPufChip& chip, const FeatureBlock& block,
                            ChipSoftScan& scan);

  /// Streaming scan over `total` freshly drawn challenges in chunks of
  /// `chunk_challenges`: bit-identical to random_challenges(total) +
  /// scan_individual, in O(chunk) memory (see ChipScanStream). Advances the
  /// tester's generator exactly as the materialized pair would.
  ChipScanStream stream_individual(const XorPufChip& chip, std::size_t total,
                                   std::size_t chunk_challenges);

  /// Measures soft responses of one individual PUF.
  std::vector<SoftMeasurement> scan_single(const XorPufChip& chip, std::size_t puf_index,
                                           const std::vector<Challenge>& challenges);
  std::vector<SoftMeasurement> scan_single(const XorPufChip& chip, std::size_t puf_index,
                                           const FeatureBlock& block);

  /// One-shot XOR responses (the deployed-chip view).
  std::vector<bool> sample_xor(const XorPufChip& chip,
                               const std::vector<Challenge>& challenges);
  std::vector<bool> sample_xor(const XorPufChip& chip, const FeatureBlock& block);

  /// XOR soft responses over `trials` evaluations.
  std::vector<SoftMeasurement> scan_xor(const XorPufChip& chip,
                                        const std::vector<Challenge>& challenges);
  std::vector<SoftMeasurement> scan_xor(const XorPufChip& chip,
                                        const FeatureBlock& block);

 private:
  Environment env_;
  std::uint64_t trials_;
  Rng rng_;
  ScanMode mode_;
};

}  // namespace xpuf::sim
