#include "sim/tester.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"

namespace xpuf::sim {

namespace {
// Challenges per parallel chunk. Fixed (never derived from the thread
// count) so the chunk grid — and therefore every RNG stream assignment —
// is identical for any pool size.
constexpr std::size_t kScanChunk = 64;

void require_block_matches(const FeatureBlock& block, const XorPufChip& chip) {
  XPUF_REQUIRE(block.empty() || block.stages() == chip.stages(),
               "challenge length != chip stage count");
}

// soft_response() is ones / trials; with trials fixed the quotient takes only
// trials + 1 distinct values, so precompute them once (same division, hence
// the same bits). Guarded so a pathological trial count cannot demand a giant
// table; an empty result means "divide per cell".
constexpr std::uint64_t kSoftLutMax = 1u << 20;

std::vector<double> build_soft_lut(std::uint64_t trials) {
  std::vector<double> lut;
  if (trials <= kSoftLutMax) {
    lut.resize(trials + 1);
    for (std::uint64_t k = 0; k <= trials; ++k)
      lut[k] = static_cast<double>(k) / static_cast<double>(trials);
  }
  return lut;
}
}  // namespace

ChipTester::ChipTester(Environment env, std::uint64_t trials, Rng rng, ScanMode mode)
    : env_(env), trials_(trials), rng_(rng), mode_(mode) {
  XPUF_REQUIRE(trials > 0, "ChipTester needs at least one trial per challenge");
}

// Any count is legal (an empty scan is a no-op); the stage count is guarded
// inside random_challenges.
std::vector<Challenge> ChipTester::random_challenges(const XorPufChip& chip,
                                                     std::size_t count) {
  return sim::random_challenges(chip.stages(), count, rng_);
}

ChipSoftScan ChipTester::scan_individual(const XorPufChip& chip,
                                         const std::vector<Challenge>& challenges) {
  return scan_individual(chip, FeatureBlock(challenges));
}

ChipSoftScan ChipTester::scan_individual(const XorPufChip& chip,
                                         const FeatureBlock& block) {
  ChipSoftScan scan;
  scan_individual_into(chip, block, scan);
  return scan;
}

void ChipTester::scan_individual_into(const XorPufChip& chip, const FeatureBlock& block,
                                      ChipSoftScan& scan) {
  XPUF_TRACE_SPAN("tester.scan_individual");
  require_block_matches(block, chip);
  const std::size_t n_pufs = chip.puf_count();
  const std::size_t n_ch = block.size();
  // Element-wise vector assignment reuses the destination's heap blocks when
  // the shape matches the previous scan — that is the whole point of the
  // _into variant.
  scan.challenges = block.challenges();
  scan.trials = trials_;
  scan.environment = env_;
  // resize, not assign: every cell below is written exactly once in either
  // mode, so re-zeroing a reused row would be pure memory traffic.
  scan.soft.resize(n_pufs);
  for (auto& row : scan.soft) row.resize(n_ch);
  scan.stable.resize(n_pufs);

  // Batched mode materializes the linear view up front; this also performs
  // the per-tap access check a deployed chip must fail (the scalar path
  // hits the same check inside measure_soft_response).
  const bool batched = mode_ == ScanMode::kBatched && n_ch > 0;
  ChipLinearView view;
  if (batched) view = chip.linear_view(env_);
  std::vector<double> soft_lut;
  if (batched) soft_lut = build_soft_lut(trials_);

  // One base draw keys every (puf, challenge) cell's private stream; each
  // cell's measurement noise is a pure function of (base, cell index).
  const StreamFamily streams(rng_.fork_base());
  // vector<bool> packs bits, so adjacent cells share words — stage stability
  // flags in a byte buffer and commit serially after the parallel loop.
  std::vector<std::vector<std::uint8_t>> stable_bytes(
      n_pufs, std::vector<std::uint8_t>(n_ch, 0));
  // Sharded counter: each worker hits its own cache line, so recording from
  // inside the parallel body is contention-free and the merged total is a
  // pure function of the workload (never of the thread count). One add per
  // chunk keeps even that off the per-cell path.
  static Counter& measurements =
      MetricsRegistry::global().counter("tester.measurements");
  parallel_for(n_ch, kScanChunk,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 if (batched) {
                   // One GEMM tile for the whole chunk, then per-cell
                   // binomial draws from the same streams the scalar mode
                   // uses — the mode changes evaluation cost, not draws.
                   // thread_local staging: one buffer per worker for the
                   // whole scan instead of one allocation per chunk.
                   thread_local std::vector<double> probs;
                   probs.resize((end - begin) * n_pufs);
                   view.one_probabilities_into(block, begin, end, probs.data());
                   // PUF-outer order keeps the soft/stable writes contiguous;
                   // it cannot change any value because every cell draws from
                   // its own private stream, keyed by index alone.
                   for (std::size_t p = 0; p < n_pufs; ++p) {
                     double* soft_row = scan.soft[p].data();
                     std::uint8_t* stable_row = stable_bytes[p].data();
                     for (std::size_t c = begin; c < end; ++c) {
                       Rng cell_rng = streams.stream(p * n_ch + c);
                       const std::uint64_t ones = cell_rng.binomial(
                           trials_, probs[(c - begin) * n_pufs + p]);
                       soft_row[c] = soft_lut.empty()
                                         ? static_cast<double>(ones) /
                                               static_cast<double>(trials_)
                                         : soft_lut[ones];
                       stable_row[c] = (ones == 0 || ones == trials_) ? 1 : 0;
                     }
                   }
                 } else {
                   for (std::size_t c = begin; c < end; ++c) {
                     for (std::size_t p = 0; p < n_pufs; ++p) {
                       Rng cell_rng = streams.stream(p * n_ch + c);
                       // kScalar IS the per-cell reference path the batched
                       // mode is benchmarked and golden-tested against.
                       // xpuf-lint: allow(scalar-eval)
                       const SoftMeasurement m = chip.measure_soft_response(
                           p, block.challenge(c), env_, trials_, cell_rng);
                       scan.soft[p][c] = m.soft_response();
                       stable_bytes[p][c] = m.fully_stable() ? 1 : 0;
                     }
                   }
                 }
                 measurements.add((end - begin) * n_pufs);
               });
  for (std::size_t p = 0; p < n_pufs; ++p)
    scan.stable[p].assign(stable_bytes[p].begin(), stable_bytes[p].end());
}

ChipScanStream::ChipScanStream(const XorPufChip& chip, const Environment& env,
                               std::uint64_t trials, ScanMode mode, std::size_t total,
                               std::size_t chunk, Rng& tester_rng)
    : chip_(&chip),
      env_(env),
      trials_(trials),
      mode_(mode),
      total_(total),
      chunk_(chunk),
      challenge_rng_(tester_rng) {
  XPUF_REQUIRE(chunk >= 1, "scan stream needs a chunk size of at least one");
  challenge_rng_start_ = challenge_rng_;
  // Pre-roll: advance the tester's generator past exactly the draws the
  // materialized path's challenge generation would consume (one u64 per
  // challenge bit), so the base draw below lands on the same state
  // scan_individual's fork_base() would see — and the tester continues from
  // the same state afterwards. O(1) memory; the drawn bits are regenerated
  // chunk by chunk from the saved copy.
  const std::size_t stages = chip.stages();
  for (std::size_t i = 0; i < total * stages; ++i) tester_rng.next_u64();
  base_ = tester_rng.fork_base();
  if (mode_ == ScanMode::kBatched) {
    // Materializing the linear view also performs the per-tap access check a
    // deployed chip must fail — at stream construction, not first use.
    view_ = chip.linear_view(env_);
    soft_lut_ = build_soft_lut(trials_);
  }
}

void ChipScanStream::reset() {
  challenge_rng_ = challenge_rng_start_;
  position_ = 0;
}

// Exhaustion is the normal return path, not an error.
bool ChipScanStream::next(ScanChunk& chunk) {
  if (position_ >= total_) return false;
  XPUF_TRACE_SPAN("tester.scan_stream_chunk");
  const std::size_t begin_global = position_;
  const std::size_t m = std::min(chunk_, total_ - position_);
  const std::size_t stages = chip_->stages();
  const std::size_t n_pufs = chip_->puf_count();

  // Regenerate this chunk's challenges from the saved generator copy; the
  // draw sequence is the materialized path's, just consumed lazily.
  challenge_buf_.resize(m);
  for (std::size_t i = 0; i < m; ++i)
    random_challenge_into(challenge_buf_[i], stages, challenge_rng_);
  chunk.offset = begin_global;
  chunk.block.assign(challenge_buf_);

  chunk.soft.resize(n_pufs);
  for (auto& row : chunk.soft) row.resize(m);
  chunk.stable.resize(n_pufs);
  for (auto& row : chunk.stable) row.resize(m);

  // Same cell streams as scan_individual over the full scan: cell (p, c) is
  // keyed by p * total + c regardless of how rows are chunked, so every
  // measurement is a pure function of (base, cell) — chunking and thread
  // count change nothing.
  const StreamFamily streams(base_);
  static Counter& measurements =
      MetricsRegistry::global().counter("tester.measurements");
  const bool batched = mode_ == ScanMode::kBatched;
  parallel_for(m, kScanChunk, [&](std::size_t begin, std::size_t end, std::size_t) {
    if (batched) {
      thread_local std::vector<double> probs;
      probs.resize((end - begin) * n_pufs);
      view_.one_probabilities_into(chunk.block, begin, end, probs.data());
      for (std::size_t p = 0; p < n_pufs; ++p) {
        double* soft_row = chunk.soft[p].data();
        // ScanChunk::stable rows are std::uint8_t (not the packed-bit
        // vector<bool> the rule names).  xpuf-lint: allow(vector-bool-parallel)
        std::uint8_t* stable_row = chunk.stable[p].data();
        for (std::size_t c = begin; c < end; ++c) {
          Rng cell_rng = streams.stream(p * total_ + begin_global + c);
          const std::uint64_t ones =
              cell_rng.binomial(trials_, probs[(c - begin) * n_pufs + p]);
          soft_row[c] = soft_lut_.empty() ? static_cast<double>(ones) /
                                                static_cast<double>(trials_)
                                          : soft_lut_[ones];
          stable_row[c] = (ones == 0 || ones == trials_) ? 1 : 0;
        }
      }
    } else {
      for (std::size_t c = begin; c < end; ++c) {
        for (std::size_t p = 0; p < n_pufs; ++p) {
          Rng cell_rng = streams.stream(p * total_ + begin_global + c);
          // kScalar is the per-cell reference path, as in scan_individual.
          // xpuf-lint: allow(scalar-eval)
          const SoftMeasurement meas = chip_->measure_soft_response(
              p, chunk.block.challenge(c), env_, trials_, cell_rng);
          chunk.soft[p][c] = meas.soft_response();
          // Same: byte flags, not vector<bool>.  xpuf-lint: allow(vector-bool-parallel)
          chunk.stable[p][c] = meas.fully_stable() ? 1 : 0;
        }
      }
    }
    measurements.add((end - begin) * n_pufs);
  });
  position_ += m;
  return true;
}

ChipScanStream ChipTester::stream_individual(const XorPufChip& chip, std::size_t total,
                                             std::size_t chunk_challenges) {
  return ChipScanStream(chip, env_, trials_, mode_, total, chunk_challenges, rng_);
}

std::vector<SoftMeasurement> ChipTester::scan_single(const XorPufChip& chip,
                                                     std::size_t puf_index,
                                                     const std::vector<Challenge>& challenges) {
  return scan_single(chip, puf_index, FeatureBlock(challenges));
}

std::vector<SoftMeasurement> ChipTester::scan_single(const XorPufChip& chip,
                                                     std::size_t puf_index,
                                                     const FeatureBlock& block) {
  XPUF_TRACE_SPAN("tester.scan_single");
  XPUF_REQUIRE(puf_index < chip.puf_count(), "PUF index out of range");
  require_block_matches(block, chip);
  const bool batched = mode_ == ScanMode::kBatched && !block.empty();
  DeviceLinearView view;
  if (batched) view = chip.device_linear_view(puf_index, env_);
  std::vector<SoftMeasurement> out(block.size());
  const StreamFamily streams(rng_.fork_base());
  parallel_for(block.size(), kScanChunk,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 if (batched) {
                   std::vector<double> probs(end - begin);
                   view.one_probabilities_into(block, begin, end, probs.data());
                   for (std::size_t c = begin; c < end; ++c) {
                     Rng cell_rng = streams.stream(c);
                     out[c] = {cell_rng.binomial(trials_, probs[c - begin]), trials_};
                   }
                 } else {
                   for (std::size_t c = begin; c < end; ++c) {
                     Rng cell_rng = streams.stream(c);
                     // Scalar reference mode, as in scan_individual.
                     // xpuf-lint: allow(scalar-eval)
                     out[c] = chip.measure_soft_response(puf_index, block.challenge(c),
                                                         env_, trials_, cell_rng);
                   }
                 }
               });
  return out;
}

std::vector<bool> ChipTester::sample_xor(const XorPufChip& chip,
                                         const std::vector<Challenge>& challenges) {
  return sample_xor(chip, FeatureBlock(challenges));
}

std::vector<bool> ChipTester::sample_xor(const XorPufChip& chip,
                                         const FeatureBlock& block) {
  XPUF_TRACE_SPAN("tester.sample_xor");
  require_block_matches(block, chip);
  static Counter& samples = MetricsRegistry::global().counter("tester.xor_samples");
  samples.add(block.size());
  const StreamFamily streams(rng_.fork_base());
  if (mode_ == ScanMode::kBatched) {
    const std::vector<std::uint8_t> bits = chip.xor_responses(block, env_, streams);
    return std::vector<bool>(bits.begin(), bits.end());
  }
  std::vector<std::uint8_t> bits(block.size(), 0);
  parallel_for(block.size(), kScanChunk,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 for (std::size_t c = begin; c < end; ++c) {
                   Rng cell_rng = streams.stream(c);
                   bits[c] = chip.xor_response(block.challenge(c), env_, cell_rng) ? 1 : 0;
                 }
               });
  return std::vector<bool>(bits.begin(), bits.end());
}

std::vector<SoftMeasurement> ChipTester::scan_xor(const XorPufChip& chip,
                                                  const std::vector<Challenge>& challenges) {
  return scan_xor(chip, FeatureBlock(challenges));
}

std::vector<SoftMeasurement> ChipTester::scan_xor(const XorPufChip& chip,
                                                  const FeatureBlock& block) {
  XPUF_TRACE_SPAN("tester.scan_xor");
  require_block_matches(block, chip);
  const StreamFamily streams(rng_.fork_base());
  if (mode_ == ScanMode::kBatched)
    return chip.measure_xor_soft_responses(block, env_, trials_, streams);
  std::vector<SoftMeasurement> out(block.size());
  parallel_for(block.size(), kScanChunk,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 for (std::size_t c = begin; c < end; ++c) {
                   Rng cell_rng = streams.stream(c);
                   out[c] = chip.measure_xor_soft_response(block.challenge(c), env_,
                                                           trials_, cell_rng);
                 }
               });
  return out;
}

}  // namespace xpuf::sim
