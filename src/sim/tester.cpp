#include "sim/tester.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"

namespace xpuf::sim {

namespace {
// Challenges per parallel chunk. Fixed (never derived from the thread
// count) so the chunk grid — and therefore every RNG stream assignment —
// is identical for any pool size.
constexpr std::size_t kScanChunk = 64;
}  // namespace

ChipTester::ChipTester(Environment env, std::uint64_t trials, Rng rng)
    : env_(env), trials_(trials), rng_(rng) {
  XPUF_REQUIRE(trials > 0, "ChipTester needs at least one trial per challenge");
}

// Any count is legal (an empty scan is a no-op); the stage count is guarded
// inside random_challenge.  xpuf-lint: allow(require-guard)
std::vector<Challenge> ChipTester::random_challenges(const XorPufChip& chip,
                                                     std::size_t count) {
  std::vector<Challenge> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(random_challenge(chip.stages(), rng_));
  return out;
}

ChipSoftScan ChipTester::scan_individual(const XorPufChip& chip,
                                         const std::vector<Challenge>& challenges) {
  XPUF_TRACE_SPAN("tester.scan_individual");
  for (const auto& c : challenges)
    XPUF_REQUIRE(c.size() == chip.stages(), "challenge length != chip stage count");
  ChipSoftScan scan;
  scan.challenges = challenges;
  scan.trials = trials_;
  scan.environment = env_;
  const std::size_t n_pufs = chip.puf_count();
  const std::size_t n_ch = challenges.size();
  scan.soft.assign(n_pufs, std::vector<double>(n_ch, 0.0));
  scan.stable.assign(n_pufs, std::vector<bool>(n_ch, false));

  // One base draw keys every (puf, challenge) cell's private stream; each
  // cell's measurement noise is a pure function of (base, cell index).
  const StreamFamily streams(rng_.fork_base());
  // vector<bool> packs bits, so adjacent cells share words — stage stability
  // flags in a byte buffer and commit serially after the parallel loop.
  std::vector<std::vector<std::uint8_t>> stable_bytes(
      n_pufs, std::vector<std::uint8_t>(n_ch, 0));
  // Sharded counter: each worker hits its own cache line, so recording from
  // inside the parallel body is contention-free and the merged total is a
  // pure function of the workload (never of the thread count).
  static Counter& measurements =
      MetricsRegistry::global().counter("tester.measurements");
  parallel_for(n_ch, kScanChunk,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 for (std::size_t c = begin; c < end; ++c) {
                   for (std::size_t p = 0; p < n_pufs; ++p) {
                     Rng cell_rng = streams.stream(p * n_ch + c);
                     const SoftMeasurement m = chip.measure_soft_response(
                         p, challenges[c], env_, trials_, cell_rng);
                     scan.soft[p][c] = m.soft_response();
                     stable_bytes[p][c] = m.fully_stable() ? 1 : 0;
                     measurements.add(1);
                   }
                 }
               });
  for (std::size_t p = 0; p < n_pufs; ++p)
    for (std::size_t c = 0; c < n_ch; ++c) scan.stable[p][c] = stable_bytes[p][c] != 0;
  return scan;
}

std::vector<SoftMeasurement> ChipTester::scan_single(const XorPufChip& chip,
                                                     std::size_t puf_index,
                                                     const std::vector<Challenge>& challenges) {
  XPUF_TRACE_SPAN("tester.scan_single");
  XPUF_REQUIRE(puf_index < chip.puf_count(), "PUF index out of range");
  for (const auto& c : challenges)
    XPUF_REQUIRE(c.size() == chip.stages(), "challenge length != chip stage count");
  std::vector<SoftMeasurement> out(challenges.size());
  const StreamFamily streams(rng_.fork_base());
  parallel_for(challenges.size(), kScanChunk,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 for (std::size_t c = begin; c < end; ++c) {
                   Rng cell_rng = streams.stream(c);
                   out[c] = chip.measure_soft_response(puf_index, challenges[c], env_,
                                                       trials_, cell_rng);
                 }
               });
  return out;
}

std::vector<bool> ChipTester::sample_xor(const XorPufChip& chip,
                                         const std::vector<Challenge>& challenges) {
  XPUF_TRACE_SPAN("tester.sample_xor");
  for (const auto& c : challenges)
    XPUF_REQUIRE(c.size() == chip.stages(), "challenge length != chip stage count");
  static Counter& samples = MetricsRegistry::global().counter("tester.xor_samples");
  samples.add(challenges.size());
  const StreamFamily streams(rng_.fork_base());
  std::vector<std::uint8_t> bits(challenges.size(), 0);
  parallel_for(challenges.size(), kScanChunk,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 for (std::size_t c = begin; c < end; ++c) {
                   Rng cell_rng = streams.stream(c);
                   bits[c] = chip.xor_response(challenges[c], env_, cell_rng) ? 1 : 0;
                 }
               });
  return std::vector<bool>(bits.begin(), bits.end());
}

std::vector<SoftMeasurement> ChipTester::scan_xor(const XorPufChip& chip,
                                                  const std::vector<Challenge>& challenges) {
  XPUF_TRACE_SPAN("tester.scan_xor");
  for (const auto& c : challenges)
    XPUF_REQUIRE(c.size() == chip.stages(), "challenge length != chip stage count");
  std::vector<SoftMeasurement> out(challenges.size());
  const StreamFamily streams(rng_.fork_base());
  parallel_for(challenges.size(), kScanChunk,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 for (std::size_t c = begin; c < end; ++c) {
                   Rng cell_rng = streams.stream(c);
                   out[c] = chip.measure_xor_soft_response(challenges[c], env_, trials_,
                                                           cell_rng);
                 }
               });
  return out;
}

}  // namespace xpuf::sim
