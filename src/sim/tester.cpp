#include "sim/tester.hpp"

#include "common/error.hpp"

namespace xpuf::sim {

ChipTester::ChipTester(Environment env, std::uint64_t trials, Rng rng)
    : env_(env), trials_(trials), rng_(rng) {
  XPUF_REQUIRE(trials > 0, "ChipTester needs at least one trial per challenge");
}

std::vector<Challenge> ChipTester::random_challenges(const XorPufChip& chip,
                                                     std::size_t count) {
  std::vector<Challenge> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(random_challenge(chip.stages(), rng_));
  return out;
}

ChipSoftScan ChipTester::scan_individual(const XorPufChip& chip,
                                         const std::vector<Challenge>& challenges) {
  ChipSoftScan scan;
  scan.challenges = challenges;
  scan.trials = trials_;
  scan.environment = env_;
  scan.soft.assign(chip.puf_count(), std::vector<double>(challenges.size(), 0.0));
  scan.stable.assign(chip.puf_count(), std::vector<bool>(challenges.size(), false));
  for (std::size_t p = 0; p < chip.puf_count(); ++p) {
    for (std::size_t c = 0; c < challenges.size(); ++c) {
      const SoftMeasurement m =
          chip.measure_soft_response(p, challenges[c], env_, trials_, rng_);
      scan.soft[p][c] = m.soft_response();
      scan.stable[p][c] = m.fully_stable();
    }
  }
  return scan;
}

std::vector<SoftMeasurement> ChipTester::scan_single(const XorPufChip& chip,
                                                     std::size_t puf_index,
                                                     const std::vector<Challenge>& challenges) {
  std::vector<SoftMeasurement> out;
  out.reserve(challenges.size());
  for (const auto& ch : challenges)
    out.push_back(chip.measure_soft_response(puf_index, ch, env_, trials_, rng_));
  return out;
}

std::vector<bool> ChipTester::sample_xor(const XorPufChip& chip,
                                         const std::vector<Challenge>& challenges) {
  std::vector<bool> out;
  out.reserve(challenges.size());
  for (const auto& ch : challenges) out.push_back(chip.xor_response(ch, env_, rng_));
  return out;
}

std::vector<SoftMeasurement> ChipTester::scan_xor(const XorPufChip& chip,
                                                  const std::vector<Challenge>& challenges) {
  std::vector<SoftMeasurement> out;
  out.reserve(challenges.size());
  for (const auto& ch : challenges)
    out.push_back(chip.measure_xor_soft_response(ch, env_, trials_, rng_));
  return out;
}

}  // namespace xpuf::sim
