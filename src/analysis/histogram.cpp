#include "analysis/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace xpuf::analysis {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  XPUF_REQUIRE(hi > lo, "histogram needs hi > lo");
  XPUF_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value > hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / (hi_ - lo_) *
                                      static_cast<double>(counts_.size()));
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // value == hi
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

std::size_t Histogram::count(std::size_t bin) const {
  XPUF_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  XPUF_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * w;
}

double Histogram::fraction(std::size_t bin) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double Histogram::first_bin_fraction() const { return fraction(0); }

double Histogram::last_bin_fraction() const { return fraction(counts_.size() - 1); }

std::string Histogram::render(std::size_t width, std::size_t max_rows) const {
  std::ostringstream os;
  const std::size_t merge = (counts_.size() + max_rows - 1) / max_rows;
  std::vector<std::size_t> merged;
  for (std::size_t b = 0; b < counts_.size(); b += merge) {
    std::size_t s = 0;
    for (std::size_t j = b; j < std::min(b + merge, counts_.size()); ++j) s += counts_[j];
    merged.push_back(s);
  }
  const std::size_t peak = merged.empty() ? 0 : *std::max_element(merged.begin(), merged.end());
  const double bin_w = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const double left = lo_ + static_cast<double>(i * merge) * bin_w;
    const double right = std::min(hi_, left + static_cast<double>(merge) * bin_w);
    const std::size_t bar =
        peak == 0 ? 0 : merged[i] * width / peak;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%6.3f,%6.3f] %9zu ", left, right, merged[i]);
    os << buf << std::string(bar, '#') << '\n';
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << '\n';
  if (overflow_ > 0) os << "overflow:  " << overflow_ << '\n';
  return os.str();
}

}  // namespace xpuf::analysis
