#include "analysis/randomness.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace xpuf::analysis {

bool RandomnessReport::passes(double alpha) const {
  return monobit_p >= alpha && runs_p >= alpha &&
         std::fabs(serial_correlation) < 0.1;
}

RandomnessReport assess_randomness(const std::vector<bool>& bits) {
  XPUF_REQUIRE(bits.size() >= 100, "randomness assessment needs >= 100 bits");
  RandomnessReport report;
  report.bits = bits.size();
  const double n = static_cast<double>(bits.size());

  // Monobit: S = sum(+/-1); p = erfc(|S| / sqrt(2 n)).
  double s = 0.0;
  std::size_t ones = 0;
  for (bool b : bits) {
    s += b ? 1.0 : -1.0;
    ones += b;
  }
  report.ones_fraction = static_cast<double>(ones) / n;
  report.monobit_p = std::erfc(std::fabs(s) / std::sqrt(2.0 * n));

  // Runs test (conditional on the observed bias pi).
  const double pi = report.ones_fraction;
  std::size_t runs = 1;
  for (std::size_t i = 1; i < bits.size(); ++i)
    if (bits[i] != bits[i - 1]) ++runs;
  const double tau = 2.0 * pi * (1.0 - pi);
  if (tau <= 0.0) {
    report.runs_p = 0.0;  // constant stream: maximally non-random
  } else {
    // SP 800-22 runs statistic: p = erfc(|V - 2 n pi (1-pi)| /
    // (2 sqrt(2n) pi (1-pi))).
    const double expected = tau * n;
    const double z = std::fabs(static_cast<double>(runs) - expected) /
                     (2.0 * std::sqrt(2.0 * n) * pi * (1.0 - pi));
    report.runs_p = std::erfc(z);
  }

  // Lag-1 serial correlation of the +/-1 stream.
  std::vector<double> x(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) x[i] = bits[i] ? 1.0 : -1.0;
  std::vector<double> a(x.begin(), x.end() - 1);
  std::vector<double> b(x.begin() + 1, x.end());
  report.serial_correlation = xpuf::pearson_correlation(a, b);
  return report;
}

}  // namespace xpuf::analysis
