#include "analysis/experiment.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xpuf::analysis {

SoftResponseStudy study_soft_response(const sim::XorPufChip& chip, std::size_t puf_index,
                                      std::size_t n_challenges, std::uint64_t trials,
                                      const sim::Environment& env, Rng& rng) {
  XPUF_REQUIRE(n_challenges > 0, "soft-response study needs challenges");
  SoftResponseStudy study;
  study.challenges = n_challenges;
  std::size_t stable0 = 0, stable1 = 0;
  for (std::size_t i = 0; i < n_challenges; ++i) {
    const auto c = sim::random_challenge(chip.stages(), rng);
    const sim::SoftMeasurement m = chip.measure_soft_response(puf_index, c, env, trials, rng);
    const double soft = m.soft_response();
    study.histogram.add(soft);
    if (m.ones == 0) ++stable0;
    if (m.ones == m.trials) ++stable1;
  }
  study.pr_stable0 = static_cast<double>(stable0) / static_cast<double>(n_challenges);
  study.pr_stable1 = static_cast<double>(stable1) / static_cast<double>(n_challenges);
  return study;
}

std::vector<double> measured_stable_vs_n(const sim::XorPufChip& chip, std::size_t max_n,
                                         std::size_t n_challenges, std::uint64_t trials,
                                         const sim::Environment& env, Rng& rng) {
  XPUF_REQUIRE(max_n >= 1 && max_n <= chip.puf_count(), "max_n out of range");
  XPUF_REQUIRE(n_challenges > 0, "stable-vs-n study needs challenges");
  std::vector<std::size_t> stable_counts(max_n, 0);
  for (std::size_t i = 0; i < n_challenges; ++i) {
    const auto c = sim::random_challenge(chip.stages(), rng);
    // Prefix-AND over PUFs: once one PUF is unstable, all larger n fail too.
    for (std::size_t p = 0; p < max_n; ++p) {
      const sim::SoftMeasurement m = chip.measure_soft_response(p, c, env, trials, rng);
      if (!m.fully_stable()) break;
      ++stable_counts[p];
    }
  }
  std::vector<double> fractions(max_n);
  for (std::size_t p = 0; p < max_n; ++p)
    fractions[p] =
        static_cast<double>(stable_counts[p]) / static_cast<double>(n_challenges);
  return fractions;
}

std::vector<double> predicted_stable_vs_n(const puf::ServerModel& model,
                                          std::size_t max_n, std::size_t n_challenges,
                                          Rng& rng) {
  XPUF_REQUIRE(max_n >= 1 && max_n <= model.puf_count(), "max_n out of range");
  XPUF_REQUIRE(n_challenges > 0, "stable-vs-n study needs challenges");
  std::vector<std::size_t> stable_counts(max_n, 0);
  for (std::size_t i = 0; i < n_challenges; ++i) {
    const auto c = sim::random_challenge(model.stages(), rng);
    for (std::size_t p = 0; p < max_n; ++p) {
      if (model.classify(p, c) == puf::StableClass::kUnstable) break;
      ++stable_counts[p];
    }
  }
  std::vector<double> fractions(max_n);
  for (std::size_t p = 0; p < max_n; ++p)
    fractions[p] =
        static_cast<double>(stable_counts[p]) / static_cast<double>(n_challenges);
  return fractions;
}

double fit_exponential_base(const std::vector<double>& y_per_n) {
  // Least squares on log y_n = n log b (no intercept):
  // log b = sum(n * log y_n) / sum(n^2).
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < y_per_n.size(); ++i) {
    if (y_per_n[i] <= 0.0) continue;
    const double n = static_cast<double>(i + 1);
    num += n * std::log(y_per_n[i]);
    den += n * n;
  }
  if (den == 0.0) return 0.0;
  return std::exp(num / den);
}

}  // namespace xpuf::analysis
