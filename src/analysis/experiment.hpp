// Shared experiment runners behind the reproduction benches. Each function
// computes one curve/statistic a paper figure reports; the bench binaries
// format and print them.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/histogram.hpp"
#include "puf/enrollment.hpp"
#include "sim/chip.hpp"

namespace xpuf::analysis {

/// Fig 2: soft-response distribution of one arbiter PUF.
struct SoftResponseStudy {
  Histogram histogram{0.0, 1.0, 100};  ///< the paper's 0.01 bin width
  double pr_stable0 = 0.0;  ///< fraction of soft responses exactly 0.00
  double pr_stable1 = 0.0;  ///< fraction exactly 1.00
  std::size_t challenges = 0;
};

SoftResponseStudy study_soft_response(const sim::XorPufChip& chip, std::size_t puf_index,
                                      std::size_t n_challenges, std::uint64_t trials,
                                      const sim::Environment& env, Rng& rng);

/// Figs 3/12 (measured curves): fraction of challenges that are 100% stable
/// on ALL of the first n PUFs, for n = 1..max_n, from one challenge sweep.
std::vector<double> measured_stable_vs_n(const sim::XorPufChip& chip, std::size_t max_n,
                                         std::size_t n_challenges, std::uint64_t trials,
                                         const sim::Environment& env, Rng& rng);

/// Fig 12 (predicted curves): fraction of random challenges the enrolled
/// model classifies stable on all of the first n PUFs, n = 1..max_n, under
/// the model's current beta factors.
std::vector<double> predicted_stable_vs_n(const puf::ServerModel& model,
                                          std::size_t max_n, std::size_t n_challenges,
                                          Rng& rng);

/// Least-squares fit of log(y) = n log(base): the exponential-decay base the
/// paper annotates on Figs 3/12 (e.g. 0.800^n). Zero/negative y values are
/// skipped.
double fit_exponential_base(const std::vector<double>& y_per_n);

}  // namespace xpuf::analysis
