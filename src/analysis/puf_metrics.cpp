#include "analysis/puf_metrics.hpp"

#include "common/error.hpp"

namespace xpuf::analysis {

namespace {
bool xor_bit(const sim::XorPufChip& chip, std::size_t n_pufs, const sim::Challenge& c,
             const sim::Environment& env, Rng& rng) {
  XPUF_REQUIRE(n_pufs >= 1 && n_pufs <= chip.puf_count(), "n_pufs out of range");
  // Subset XOR through the analysis taps (metrics are lab characterization,
  // not protocol traffic).
  bool out = false;
  for (std::size_t p = 0; p < n_pufs; ++p)
    out ^= chip.device_for_analysis(p).evaluate(c, env, rng);
  return out;
}
}  // namespace

double uniformity(const sim::XorPufChip& chip, std::size_t n_pufs,
                  std::size_t n_challenges, const sim::Environment& env, Rng& rng) {
  XPUF_REQUIRE(n_challenges > 0, "uniformity needs challenges");
  std::size_t ones = 0;
  for (std::size_t i = 0; i < n_challenges; ++i)
    if (xor_bit(chip, n_pufs, sim::random_challenge(chip.stages(), rng), env, rng))
      ++ones;
  return static_cast<double>(ones) / static_cast<double>(n_challenges);
}

double uniqueness(const sim::ChipPopulation& population, std::size_t n_pufs,
                  std::size_t n_challenges, const sim::Environment& env, Rng& rng) {
  XPUF_REQUIRE(population.size() >= 2, "uniqueness needs at least two chips");
  XPUF_REQUIRE(n_challenges > 0, "uniqueness needs challenges");
  const std::size_t stages = population.chip(0).stages();
  // Shared challenge set; one response vector per chip.
  std::vector<sim::Challenge> challenges;
  challenges.reserve(n_challenges);
  for (std::size_t i = 0; i < n_challenges; ++i)
    challenges.push_back(sim::random_challenge(stages, rng));

  std::vector<std::vector<bool>> responses(population.size());
  for (std::size_t k = 0; k < population.size(); ++k) {
    responses[k].reserve(n_challenges);
    for (const auto& c : challenges)
      responses[k].push_back(xor_bit(population.chip(k), n_pufs, c, env, rng));
  }

  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < population.size(); ++a) {
    for (std::size_t b = a + 1; b < population.size(); ++b) {
      std::size_t hd = 0;
      for (std::size_t i = 0; i < n_challenges; ++i)
        if (responses[a][i] != responses[b][i]) ++hd;
      sum += static_cast<double>(hd) / static_cast<double>(n_challenges);
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

double reliability_error(const sim::XorPufChip& chip, std::size_t n_pufs,
                         std::size_t n_challenges, std::size_t n_rereads,
                         const sim::Environment& env, Rng& rng) {
  XPUF_REQUIRE(n_challenges > 0 && n_rereads > 0, "reliability needs work to do");
  std::size_t flips = 0;
  for (std::size_t i = 0; i < n_challenges; ++i) {
    const auto c = sim::random_challenge(chip.stages(), rng);
    const bool reference = xor_bit(chip, n_pufs, c, sim::Environment::nominal(), rng);
    for (std::size_t r = 0; r < n_rereads; ++r)
      if (xor_bit(chip, n_pufs, c, env, rng) != reference) ++flips;
  }
  return static_cast<double>(flips) /
         static_cast<double>(n_challenges * n_rereads);
}

std::vector<double> bit_aliasing(const sim::ChipPopulation& population,
                                 std::size_t n_pufs, std::size_t n_challenges,
                                 const sim::Environment& env, Rng& rng) {
  XPUF_REQUIRE(population.size() >= 1, "bit aliasing needs chips");
  XPUF_REQUIRE(n_challenges > 0, "bit aliasing needs challenges");
  const std::size_t stages = population.chip(0).stages();
  std::vector<double> aliasing;
  aliasing.reserve(n_challenges);
  for (std::size_t i = 0; i < n_challenges; ++i) {
    const auto c = sim::random_challenge(stages, rng);
    std::size_t ones = 0;
    for (std::size_t k = 0; k < population.size(); ++k)
      if (xor_bit(population.chip(k), n_pufs, c, env, rng)) ++ones;
    aliasing.push_back(static_cast<double>(ones) /
                       static_cast<double>(population.size()));
  }
  return aliasing;
}

}  // namespace xpuf::analysis
