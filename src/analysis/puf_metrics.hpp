// Standard PUF quality metrics over a simulated fab lot: uniformity,
// uniqueness, reliability, and bit-aliasing. The paper's evaluation focuses
// on stability and attack resistance; these classic metrics round out the
// characterization a PUF paper's reviewers expect, and the benches use the
// reliability metric to cross-check the stability machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/population.hpp"

namespace xpuf::analysis {

/// Mean of a PUF's (or XOR PUF's) response bits over random challenges.
/// Ideal: 0.5.
double uniformity(const sim::XorPufChip& chip, std::size_t n_pufs,
                  std::size_t n_challenges, const sim::Environment& env, Rng& rng);

/// Mean pairwise inter-chip Hamming distance of XOR responses over a shared
/// challenge set, as a fraction of the response length. Ideal: 0.5.
double uniqueness(const sim::ChipPopulation& population, std::size_t n_pufs,
                  std::size_t n_challenges, const sim::Environment& env, Rng& rng);

/// Mean intra-chip Hamming distance between a reference read at the nominal
/// corner and repeated reads at `env`, as a fraction. Ideal: 0 (perfectly
/// reliable); typical silicon: a few percent, worse at corners.
double reliability_error(const sim::XorPufChip& chip, std::size_t n_pufs,
                         std::size_t n_challenges, std::size_t n_rereads,
                         const sim::Environment& env, Rng& rng);

/// Per-challenge mean response across chips ("bit aliasing"); values far
/// from 0.5 indicate systematic layout bias. Returns one value per sampled
/// challenge.
std::vector<double> bit_aliasing(const sim::ChipPopulation& population,
                                 std::size_t n_pufs, std::size_t n_challenges,
                                 const sim::Environment& env, Rng& rng);

}  // namespace xpuf::analysis
