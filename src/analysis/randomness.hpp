// Response-stream randomness assessment (NIST SP 800-22-style quick tests).
//
// Before a PUF's responses feed authentication databases or key derivation,
// their statistical quality matters: bias, serial correlation, and run
// structure. These are the three cheap screeners most PUF characterization
// papers report alongside uniqueness/reliability.
#pragma once

#include <cstddef>
#include <vector>

namespace xpuf::analysis {

struct RandomnessReport {
  std::size_t bits = 0;
  double monobit_p = 0.0;       ///< frequency (monobit) test p-value
  double runs_p = 0.0;          ///< Wald-Wolfowitz runs test p-value
  double serial_correlation = 0.0;  ///< lag-1 autocorrelation in [-1, 1]
  double ones_fraction = 0.0;

  /// Passes all screeners at significance alpha (and |autocorr| < 0.1).
  bool passes(double alpha = 0.01) const;
};

/// Runs the screeners on a response bit stream (0/1 per entry).
/// Requires at least 100 bits for the asymptotics to be meaningful.
RandomnessReport assess_randomness(const std::vector<bool>& bits);

}  // namespace xpuf::analysis
