// Fixed-bin histograms for soft-response distributions (paper Figs 2/8/9/11).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace xpuf::analysis {

/// Histogram over [lo, hi] with uniform bins. The paper's soft-response
/// histograms use bin width 0.01 over [0, 1]; values exactly at `hi` land in
/// the last bin, values outside the range are counted in the outflow
/// counters (model-predicted soft responses extend beyond [0, 1]).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const double> values);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  std::size_t count(std::size_t bin) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  /// Center of a bin.
  double bin_center(std::size_t bin) const;

  /// Fraction of all added values (including outflow) in a bin.
  double fraction(std::size_t bin) const;

  /// Fraction of values landing in the first bin (the paper's Pr(stable 0)
  /// when the histogram covers soft responses with the first bin at 0.00).
  double first_bin_fraction() const;
  double last_bin_fraction() const;

  /// Compact multi-line ASCII rendering (for bench output); `width` is the
  /// bar length of the fullest bin, `max_rows` caps the printed bins by
  /// merging adjacent ones.
  std::string render(std::size_t width = 50, std::size_t max_rows = 25) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace xpuf::analysis
