// SHA-256 (FIPS 180-4) — the entropy-extraction hash of the PUF key
// generator. Self-contained implementation validated against the NIST
// short-message test vectors in the test suite.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace xpuf::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// One-shot SHA-256 of a byte buffer.
Digest sha256(const std::uint8_t* data, std::size_t length);
Digest sha256(const std::vector<std::uint8_t>& data);
Digest sha256(const std::string& data);

/// Lowercase hex rendering of a digest.
std::string to_hex(const Digest& digest);

/// Incremental interface (used when hashing bit-packed PUF material).
class Sha256 {
 public:
  Sha256();
  void update(const std::uint8_t* data, std::size_t length);
  Digest finish();

 private:
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
  void process_block(const std::uint8_t* block);
};

}  // namespace xpuf::crypto
