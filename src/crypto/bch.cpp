#include "crypto/bch.hpp"

#include <set>

#include "common/error.hpp"

namespace xpuf::crypto {

namespace {

/// Minimal polynomial of alpha^i over GF(2): product of (x - alpha^j) over
/// the cyclotomic coset {i, 2i, 4i, ...} mod (2^m - 1). Coefficients land in
/// GF(2) by Galois theory; asserted below.
GFPoly minimal_polynomial(const GF2m& field, std::uint32_t i) {
  std::set<std::uint32_t> coset;
  std::uint32_t j = i % field.order();
  while (coset.insert(j).second) j = static_cast<std::uint32_t>((2ull * j) % field.order());
  GFPoly poly = GFPoly::one();
  for (std::uint32_t e : coset) {
    // (x + alpha^e) — addition is subtraction in characteristic 2.
    poly = poly.times(GFPoly({field.alpha_pow(e), 1u}), field);
  }
  for (std::uint32_t c : poly.coefficients())
    XPUF_REQUIRE(c <= 1, "minimal polynomial left GF(2) — field tables corrupt");
  return poly;
}

}  // namespace

BchCode::BchCode(unsigned m, unsigned t) : field_(m), t_(t) {
  XPUF_REQUIRE(t >= 1, "BCH needs t >= 1");
  n_ = field_.order();
  // g(x) = lcm of minimal polynomials of alpha^1 .. alpha^2t; dedupe cosets
  // by their leaders.
  std::set<std::uint32_t> leaders_done;
  generator_ = GFPoly::one();
  for (std::uint32_t i = 1; i <= 2 * t; ++i) {
    // Coset leader: smallest element of i's cyclotomic coset.
    std::uint32_t leader = i % field_.order();
    std::uint32_t j = leader;
    do {
      j = static_cast<std::uint32_t>((2ull * j) % field_.order());
      leader = std::min(leader, j);
    } while (j != i % field_.order());
    if (!leaders_done.insert(leader).second) continue;
    generator_ = generator_.times(minimal_polynomial(field_, i), field_);
  }
  const int deg = generator_.degree();
  XPUF_REQUIRE(deg > 0 && static_cast<std::size_t>(deg) < n_,
               "BCH(m, t) has no message bits left — t too large for this m");
  k_ = n_ - static_cast<std::size_t>(deg);
}

Bits BchCode::encode(const Bits& message) const {
  XPUF_REQUIRE(message.size() == k_, "BCH encode: message length mismatch");
  // c(x) = m(x) x^{n-k} + (m(x) x^{n-k} mod g(x)); systematic.
  const std::size_t parity = n_ - k_;
  std::vector<std::uint32_t> shifted(n_, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    XPUF_REQUIRE(message[i] <= 1, "BCH encode: message bits must be 0/1");
    shifted[parity + i] = message[i];
  }
  const GFPoly remainder = GFPoly(shifted).mod(generator_, field_);
  Bits codeword(n_, 0);
  for (std::size_t i = 0; i < k_; ++i) codeword[parity + i] = message[i];
  for (std::size_t i = 0; i < parity; ++i)
    codeword[i] = static_cast<std::uint8_t>(remainder.coefficient(i));
  return codeword;
}

BchCode::DecodeResult BchCode::decode(const Bits& received) const {
  XPUF_REQUIRE(received.size() == n_, "BCH decode: word length mismatch");
  DecodeResult result;

  // Syndromes S_j = r(alpha^j), j = 1..2t.
  std::vector<std::uint32_t> syndrome(2 * t_ + 1, 0);
  bool all_zero = true;
  for (unsigned j = 1; j <= 2 * t_; ++j) {
    std::uint32_t s = 0;
    for (std::size_t i = 0; i < n_; ++i)
      if (received[i]) s ^= field_.alpha_pow(static_cast<std::int64_t>(i) * j);
    syndrome[j] = s;
    if (s != 0) all_zero = false;
  }

  auto extract = [&](const Bits& codeword) {
    result.codeword = codeword;
    result.message.assign(codeword.begin() + static_cast<std::ptrdiff_t>(n_ - k_),
                          codeword.end());
    result.ok = true;
  };

  if (all_zero) {
    extract(received);
    return result;
  }

  // Berlekamp-Massey: find the error-locator sigma(x).
  std::vector<std::uint32_t> sigma{1};  // current locator
  std::vector<std::uint32_t> b{1};      // previous locator copy
  std::uint32_t b_disc = 1;             // discrepancy at last length change
  unsigned l = 0, shift = 1;
  for (unsigned j = 1; j <= 2 * t_; ++j) {
    // Discrepancy d = S_j + sum_{i=1..l} sigma_i S_{j-i}.
    std::uint32_t d = syndrome[j];
    for (unsigned i = 1; i <= l && i < sigma.size(); ++i)
      if (j > i) d ^= field_.mul(sigma[i], syndrome[j - i]);
    if (d == 0) {
      ++shift;
      continue;
    }
    // sigma' = sigma - (d / b_disc) x^shift b(x).
    std::vector<std::uint32_t> next = sigma;
    const std::uint32_t scale = field_.div(d, b_disc);
    if (next.size() < b.size() + shift) next.resize(b.size() + shift, 0);
    for (std::size_t i = 0; i < b.size(); ++i)
      next[i + shift] ^= field_.mul(scale, b[i]);
    if (2 * l <= j - 1) {
      b = sigma;
      b_disc = d;
      l = j - l;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = std::move(next);
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const std::size_t nu = sigma.size() - 1;  // number of located errors
  if (nu > t_) return result;               // beyond design capability

  // Chien search: error at position i iff sigma(alpha^{-i}) == 0.
  const GFPoly locator(sigma);
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint32_t x = field_.alpha_pow(-static_cast<std::int64_t>(i));
    if (locator.evaluate(x, field_) == 0) positions.push_back(i);
  }
  if (positions.size() != nu) return result;  // locator does not split: fail

  Bits corrected = received;
  for (std::size_t p : positions) corrected[p] ^= 1;  // binary code: flip

  // Consistency re-check: corrected word must have zero syndromes.
  for (unsigned j = 1; j <= 2 * t_; ++j) {
    std::uint32_t s = 0;
    for (std::size_t i = 0; i < n_; ++i)
      if (corrected[i]) s ^= field_.alpha_pow(static_cast<std::int64_t>(i) * j);
    if (s != 0) return result;
  }
  result.errors_corrected = positions.size();
  extract(corrected);
  return result;
}

}  // namespace xpuf::crypto
