// Galois-field GF(2^m) arithmetic with log/antilog tables.
//
// Substrate for the BCH error-correcting codes used by the PUF key
// generator: noisy PUF responses cannot feed a KDF directly, so the code-
// offset fuzzy extractor corrects them with a BCH code over GF(2^m).
#pragma once

#include <cstdint>
#include <vector>

namespace xpuf::crypto {

/// GF(2^m) for 2 <= m <= 16, built over a standard primitive polynomial.
/// Elements are represented as integers in [0, 2^m); 0 is the field zero.
class GF2m {
 public:
  explicit GF2m(unsigned m);

  unsigned m() const { return m_; }
  /// Field size q = 2^m.
  std::uint32_t size() const { return size_; }
  /// Multiplicative-group order q - 1.
  std::uint32_t order() const { return size_ - 1; }
  /// The primitive polynomial in bit representation (degree-m term set).
  std::uint32_t primitive_polynomial() const { return poly_; }

  /// alpha^k for any integer exponent (reduced mod q-1).
  std::uint32_t alpha_pow(std::int64_t k) const;

  /// Discrete log base alpha; precondition x != 0.
  std::uint32_t log(std::uint32_t x) const;

  /// Field operations. add == subtract == XOR in characteristic 2.
  static std::uint32_t add(std::uint32_t a, std::uint32_t b) { return a ^ b; }
  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const;
  std::uint32_t inv(std::uint32_t a) const;  ///< precondition a != 0
  std::uint32_t div(std::uint32_t a, std::uint32_t b) const;  ///< b != 0
  std::uint32_t pow(std::uint32_t a, std::int64_t k) const;

 private:
  unsigned m_;
  std::uint32_t size_;
  std::uint32_t poly_;
  std::vector<std::uint32_t> exp_;  // exp_[k] = alpha^k, doubled for wrap
  std::vector<std::uint32_t> log_;
};

/// Polynomials over GF(2^m), coefficient vectors with p[i] the coefficient
/// of x^i. Normalized (no trailing zeros except the zero polynomial).
class GFPoly {
 public:
  GFPoly() = default;
  explicit GFPoly(std::vector<std::uint32_t> coefficients);

  static GFPoly zero() { return GFPoly(); }
  static GFPoly one() { return GFPoly({1}); }
  /// Monomial c * x^k.
  static GFPoly monomial(std::uint32_t c, std::size_t k);

  bool is_zero() const { return coeff_.empty(); }
  /// Degree; -1 for the zero polynomial.
  int degree() const { return static_cast<int>(coeff_.size()) - 1; }
  std::uint32_t coefficient(std::size_t i) const {
    return i < coeff_.size() ? coeff_[i] : 0u;
  }
  const std::vector<std::uint32_t>& coefficients() const { return coeff_; }

  GFPoly plus(const GFPoly& rhs) const;  // also minus, characteristic 2
  GFPoly times(const GFPoly& rhs, const GF2m& field) const;
  /// Remainder of *this modulo `divisor` (divisor != 0).
  GFPoly mod(const GFPoly& divisor, const GF2m& field) const;
  /// Evaluation at a field point (Horner).
  std::uint32_t evaluate(std::uint32_t x, const GF2m& field) const;
  /// Formal derivative (characteristic-2 rule: even terms vanish).
  GFPoly derivative() const;

  bool operator==(const GFPoly& rhs) const = default;

 private:
  std::vector<std::uint32_t> coeff_;
  void normalize();
};

}  // namespace xpuf::crypto
