#include "crypto/gf2m.hpp"

#include "common/error.hpp"

namespace xpuf::crypto {

namespace {
/// Standard primitive polynomials for GF(2^m), bit representation including
/// the degree-m term (e.g. m=4: x^4 + x + 1 = 0b10011 = 0x13).
constexpr std::uint32_t kPrimitivePoly[17] = {
    0,      0,      0x7,    0xB,    0x13,   0x25,   0x43,   0x89,  0x11D,
    0x211,  0x409,  0x805,  0x1053, 0x201B, 0x4443, 0x8003, 0x1100B};
}  // namespace

GF2m::GF2m(unsigned m) : m_(m) {
  XPUF_REQUIRE(m >= 2 && m <= 16, "GF(2^m) supports 2 <= m <= 16");
  size_ = 1u << m;
  poly_ = kPrimitivePoly[m];
  exp_.assign(2 * (size_ - 1), 0);
  log_.assign(size_, 0);
  std::uint32_t x = 1;
  for (std::uint32_t k = 0; k < size_ - 1; ++k) {
    exp_[k] = x;
    log_[x] = k;
    x <<= 1;
    if (x & size_) x ^= poly_;
  }
  // Duplicate for index wrap so mul never reduces mod order explicitly.
  for (std::uint32_t k = 0; k < size_ - 1; ++k) exp_[size_ - 1 + k] = exp_[k];
}

std::uint32_t GF2m::alpha_pow(std::int64_t k) const {
  const auto ord = static_cast<std::int64_t>(order());
  std::int64_t r = k % ord;
  if (r < 0) r += ord;
  return exp_[static_cast<std::size_t>(r)];
}

std::uint32_t GF2m::log(std::uint32_t x) const {
  XPUF_REQUIRE(x != 0 && x < size_, "log of zero or out-of-field element");
  return log_[x];
}

std::uint32_t GF2m::mul(std::uint32_t a, std::uint32_t b) const {
  if (a == 0 || b == 0) return 0;
  return exp_[log_[a] + log_[b]];
}

std::uint32_t GF2m::inv(std::uint32_t a) const {
  XPUF_REQUIRE(a != 0, "inverse of zero");
  return exp_[order() - log_[a]];
}

std::uint32_t GF2m::div(std::uint32_t a, std::uint32_t b) const {
  XPUF_REQUIRE(b != 0, "division by zero");
  if (a == 0) return 0;
  return exp_[log_[a] + order() - log_[b]];
}

std::uint32_t GF2m::pow(std::uint32_t a, std::int64_t k) const {
  if (a == 0) {
    XPUF_REQUIRE(k > 0, "0^k undefined for k <= 0");
    return 0;
  }
  const auto ord = static_cast<std::int64_t>(order());
  std::int64_t e = (static_cast<std::int64_t>(log_[a]) * (k % ord)) % ord;
  if (e < 0) e += ord;
  return exp_[static_cast<std::size_t>(e)];
}

GFPoly::GFPoly(std::vector<std::uint32_t> coefficients) : coeff_(std::move(coefficients)) {
  normalize();
}

void GFPoly::normalize() {
  while (!coeff_.empty() && coeff_.back() == 0) coeff_.pop_back();
}

GFPoly GFPoly::monomial(std::uint32_t c, std::size_t k) {
  if (c == 0) return zero();
  std::vector<std::uint32_t> v(k + 1, 0);
  v[k] = c;
  return GFPoly(std::move(v));
}

GFPoly GFPoly::plus(const GFPoly& rhs) const {
  std::vector<std::uint32_t> out(std::max(coeff_.size(), rhs.coeff_.size()), 0);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = coefficient(i) ^ rhs.coefficient(i);
  return GFPoly(std::move(out));
}

GFPoly GFPoly::times(const GFPoly& rhs, const GF2m& field) const {
  if (is_zero() || rhs.is_zero()) return zero();
  std::vector<std::uint32_t> out(coeff_.size() + rhs.coeff_.size() - 1, 0);
  for (std::size_t i = 0; i < coeff_.size(); ++i) {
    if (coeff_[i] == 0) continue;
    for (std::size_t j = 0; j < rhs.coeff_.size(); ++j)
      out[i + j] ^= field.mul(coeff_[i], rhs.coeff_[j]);
  }
  return GFPoly(std::move(out));
}

GFPoly GFPoly::mod(const GFPoly& divisor, const GF2m& field) const {
  XPUF_REQUIRE(!divisor.is_zero(), "polynomial modulo zero");
  std::vector<std::uint32_t> rem = coeff_;
  const int dd = divisor.degree();
  const std::uint32_t lead_inv = field.inv(divisor.coeff_.back());
  while (static_cast<int>(rem.size()) - 1 >= dd) {
    const std::uint32_t top = rem.back();
    if (top != 0) {
      const std::uint32_t factor = field.mul(top, lead_inv);
      const std::size_t shift = rem.size() - 1 - static_cast<std::size_t>(dd);
      for (std::size_t i = 0; i <= static_cast<std::size_t>(dd); ++i)
        rem[shift + i] ^= field.mul(factor, divisor.coeff_[i]);
    }
    rem.pop_back();
    while (!rem.empty() && rem.back() == 0 &&
           static_cast<int>(rem.size()) - 1 >= dd)
      rem.pop_back();
  }
  return GFPoly(std::move(rem));
}

std::uint32_t GFPoly::evaluate(std::uint32_t x, const GF2m& field) const {
  std::uint32_t acc = 0;
  for (std::size_t i = coeff_.size(); i > 0; --i)
    acc = field.mul(acc, x) ^ coeff_[i - 1];
  return acc;
}

GFPoly GFPoly::derivative() const {
  if (coeff_.size() <= 1) return zero();
  std::vector<std::uint32_t> out(coeff_.size() - 1, 0);
  // d/dx sum c_i x^i = sum i * c_i x^{i-1}; in characteristic 2, i*c_i is
  // c_i for odd i and 0 for even i.
  for (std::size_t i = 1; i < coeff_.size(); ++i)
    out[i - 1] = (i % 2 == 1) ? coeff_[i] : 0u;
  return GFPoly(std::move(out));
}

}  // namespace xpuf::crypto
