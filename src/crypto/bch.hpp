// Binary BCH error-correcting codes (encode + Berlekamp-Massey decode).
//
// The PUF fuzzy extractor corrects the residual noise of key-generation
// responses with a t-error-correcting BCH code of length n = 2^m - 1. The
// reproduced paper's stable-challenge selection slashes the response error
// rate, which directly shrinks the t (and helper-data leakage) this code
// must provide — quantified in bench_ext3_key_generation.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/gf2m.hpp"

namespace xpuf::crypto {

/// Bits are std::uint8_t 0/1, index i = coefficient of x^i.
using Bits = std::vector<std::uint8_t>;

class BchCode {
 public:
  /// Primitive binary BCH code of length n = 2^m - 1 with designed
  /// error-correcting capability t (designed distance 2t + 1). Throws if the
  /// generator consumes the whole length (k would be <= 0).
  BchCode(unsigned m, unsigned t);

  std::size_t n() const { return n_; }  ///< codeword length
  std::size_t k() const { return k_; }  ///< message length
  unsigned t() const { return t_; }     ///< correctable errors
  const GFPoly& generator() const { return generator_; }

  /// Systematic encoding: the message occupies the high-order positions
  /// [n-k, n); parity fills [0, n-k).
  Bits encode(const Bits& message) const;

  struct DecodeResult {
    bool ok = false;            ///< decoding succeeded (<= t errors)
    Bits codeword;              ///< corrected codeword (when ok)
    Bits message;               ///< extracted systematic message (when ok)
    std::size_t errors_corrected = 0;
  };

  /// Decodes a received word of length n; corrects up to t bit errors.
  DecodeResult decode(const Bits& received) const;

 private:
  GF2m field_;
  unsigned t_;
  std::size_t n_;
  std::size_t k_;
  GFPoly generator_;
};

}  // namespace xpuf::crypto
