// Versioned, length-prefixed binary wire protocol of the authentication
// service (see DESIGN.md "Service layer & wire protocol").
//
// Frame layout (all integers little-endian, fixed width):
//
//   offset  size  field
//        0     2  magic        0x5846 ("XF")
//        2     1  version      kWireVersion
//        3     1  type         FrameType
//        4     8  device_id
//       12     4  session_id
//       16     4  seq          per-connection transmission counter
//       20     4  payload_len  bytes that follow before the checksum
//       24     n  payload
//     24+n     4  crc32        over bytes [0, 24+n)
//
// Everything here goes through the explicit byte codecs below — the
// xpuf_lint `wire-portability` rule forbids memcpy of structs, host-endian
// reinterpretation, and non-fixed-width integer types in this file pair, so
// a frame encoded on any machine decodes on every other. Decode failures are
// typed (DecodeStatus / WireError in the common error taxonomy) and never
// fatal: the transport may truncate or flip bits, and the session layer
// recovers by retransmission.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/device.hpp"

namespace xpuf::net {

using sim::Challenge;

inline constexpr std::uint16_t kWireMagic = 0x5846;  // "XF"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::uint32_t kHeaderBytes = 24;
inline constexpr std::uint32_t kTrailerBytes = 4;
/// Upper bound on payload size; larger length prefixes are rejected as
/// kBadLength before any allocation, so a corrupt length field cannot OOM.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

enum class FrameType : std::uint8_t {
  kEnrollBegin = 1,     ///< device -> server: activate provisioned enrollment
  kAuthBegin = 2,       ///< device -> server: open an authentication session
  kChallengeBatch = 3,  ///< server -> device: model-selected stable challenges
  kResponseSubmit = 4,  ///< device -> server: one-shot XOR response bits
  kAuthResult = 5,      ///< server -> device: terminal verdict
  kNack = 6,            ///< server -> device: typed rejection
  kRevoke = 7,          ///< device/admin -> server: remove the device
};

bool is_known_frame_type(std::uint8_t raw);
const char* to_string(FrameType type);

/// Typed server rejections. retry_after_rounds == 0 marks the NACK terminal.
enum class NackReason : std::uint8_t {
  kUnknownDevice = 1,        ///< not provisioned or already revoked
  kBusy = 2,                 ///< per-device in-flight limit reached
  kBadState = 3,             ///< frame does not fit the session state machine
  kSelectionExhausted = 4,   ///< stable-challenge issuance ran out of budget
  kRevoked = 5,              ///< device was revoked mid-flight
};

const char* to_string(NackReason reason);

enum class AuthStatus : std::uint8_t {
  kApproved = 1,
  kDenied = 2,
  kRevokeAck = 3,
};

struct FrameHeader {
  std::uint8_t version = kWireVersion;
  FrameType type = FrameType::kNack;
  std::uint64_t device_id = 0;
  std::uint32_t session_id = 0;
  std::uint32_t seq = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kTruncated,      ///< fewer bytes than header + payload_len + checksum
  kBadMagic,
  kBadVersion,
  kBadType,
  kBadLength,      ///< payload_len exceeds kMaxPayloadBytes
  kBadChecksum,
  kTrailingBytes,  ///< extra bytes after the checksum
  kBadPayload,     ///< payload codec found malformed contents
};

const char* to_string(DecodeStatus status);

// --- byte-order codecs ------------------------------------------------------
// The only sanctioned way bytes enter or leave a frame.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);

/// Bounds-checked little-endian cursor. Every read_* returns false instead of
/// walking past the end, so truncated frames surface as kTruncated, never UB.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::uint64_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& bytes)
      : WireReader(bytes.data(), static_cast<std::uint64_t>(bytes.size())) {}

  bool read_u8(std::uint8_t& v);
  bool read_u16(std::uint16_t& v);
  bool read_u32(std::uint32_t& v);
  bool read_u64(std::uint64_t& v);
  bool read_bytes(std::uint64_t n, std::vector<std::uint8_t>& out);

  std::uint64_t position() const { return pos_; }
  std::uint64_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::uint64_t size_;
  std::uint64_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the frame checksum.
std::uint32_t crc32(const std::uint8_t* data, std::uint64_t size);
std::uint32_t crc32(const std::vector<std::uint8_t>& bytes);

// --- frame codec ------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Non-throwing decode; `out` is valid only on kOk.
DecodeStatus decode_frame(const std::vector<std::uint8_t>& bytes, Frame& out);

/// Throwing decode for callers that treat malformed frames as errors rather
/// than line noise; throws WireError carrying the DecodeStatus text.
Frame decode_frame_or_throw(const std::vector<std::uint8_t>& bytes);

// --- payload codecs ---------------------------------------------------------

/// CHALLENGE_BATCH payload: u32 count, u32 stages, then count rows of
/// ceil(stages / 8) bytes, challenge bits packed LSB-first.
std::vector<std::uint8_t> encode_challenge_batch(
    const std::vector<Challenge>& challenges, std::uint32_t stages);
DecodeStatus decode_challenge_batch(const std::vector<std::uint8_t>& payload,
                                    std::vector<Challenge>& out);

/// RESPONSE_SUBMIT payload: u32 count, then packed response bits (LSB-first).
/// Responses travel as one 0/1 byte per bit at the API boundary so the packed
/// words never cross the deterministic-parallelism rules for vector<bool>.
std::vector<std::uint8_t> encode_response_bits(
    const std::vector<std::uint8_t>& bits);
DecodeStatus decode_response_bits(const std::vector<std::uint8_t>& payload,
                                  std::vector<std::uint8_t>& out);

struct AuthResultPayload {
  AuthStatus status = AuthStatus::kDenied;
  std::uint32_t mismatches = 0;
  std::uint32_t challenges_used = 0;
};

std::vector<std::uint8_t> encode_auth_result(const AuthResultPayload& result);
DecodeStatus decode_auth_result(const std::vector<std::uint8_t>& payload,
                                AuthResultPayload& out);

struct NackPayload {
  NackReason reason = NackReason::kBadState;
  /// Rounds the client should wait before retrying; 0 means terminal.
  std::uint16_t retry_after_rounds = 0;
};

std::vector<std::uint8_t> encode_nack(const NackPayload& nack);
DecodeStatus decode_nack(const std::vector<std::uint8_t>& payload,
                         NackPayload& out);

}  // namespace xpuf::net
