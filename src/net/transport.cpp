#include "net/transport.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace xpuf::net {

void PipeTransport::send(std::vector<std::uint8_t> frame) {
  queue_.push_back(std::move(frame));
}

std::optional<std::vector<std::uint8_t>> PipeTransport::receive() {
  if (queue_.empty()) return std::nullopt;
  std::vector<std::uint8_t> frame = std::move(queue_.front());
  queue_.pop_front();
  return frame;
}

FaultyTransport::FaultyTransport(Transport& inner, FaultProfile profile,
                                 const StreamFamily& family,
                                 std::uint64_t connection_key)
    : inner_(&inner), profile_(profile), rng_(family.stream(connection_key)) {
  XPUF_REQUIRE(profile.total() <= 1.0, "fault probabilities must sum to <= 1");
  XPUF_REQUIRE(profile.reorder_delay_max >= 1, "reorder delay must be >= 1 round");
}

void FaultyTransport::send(std::vector<std::uint8_t> frame) {
  auto& registry = MetricsRegistry::global();
  static Counter& dropped = registry.counter("net.frames_dropped");
  static Counter& duplicated = registry.counter("net.frames_duplicated");
  static Counter& reordered = registry.counter("net.frames_reordered");
  static Counter& truncated = registry.counter("net.frames_truncated");
  static Counter& bitflipped = registry.counter("net.frames_bitflipped");
  ++tally_.sent;
  // One uniform draw per frame selects the fault band, so the per-frame
  // schedule is a pure function of this connection's stream — and the draw
  // happens even when every probability is zero, keeping the stream position
  // independent of the profile.
  const double u = rng_.uniform();
  double edge = profile_.drop;
  if (u < edge) {
    ++tally_.dropped;
    dropped.add(1);
    return;
  }
  edge += profile_.duplicate;
  if (u < edge) {
    ++tally_.duplicated;
    duplicated.add(1);
    inner_->send(frame);  // copy
    inner_->send(std::move(frame));
    return;
  }
  edge += profile_.reorder;
  if (u < edge) {
    ++tally_.reordered;
    reordered.add(1);
    const std::uint32_t delay = static_cast<std::uint32_t>(
        1 + rng_.uniform_below(profile_.reorder_delay_max));
    held_.emplace_back(delay, std::move(frame));
    return;
  }
  edge += profile_.truncate;
  if (u < edge && !frame.empty()) {
    ++tally_.truncated;
    truncated.add(1);
    const std::size_t keep =
        static_cast<std::size_t>(rng_.uniform_below(frame.size()));
    frame.resize(keep);
    inner_->send(std::move(frame));
    return;
  }
  edge += profile_.bitflip;
  if (u < edge && !frame.empty()) {
    ++tally_.bitflipped;
    bitflipped.add(1);
    const std::uint64_t bit = rng_.uniform_below(frame.size() * 8);
    frame[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    inner_->send(std::move(frame));
    return;
  }
  inner_->send(std::move(frame));
}

std::optional<std::vector<std::uint8_t>> FaultyTransport::receive() {
  return inner_->receive();
}

bool FaultyTransport::idle() const { return held_.empty() && inner_->idle(); }

void FaultyTransport::tick() {
  // Age the hold queue; release due frames in hold order so the release
  // sequence is deterministic.
  std::deque<std::pair<std::uint32_t, std::vector<std::uint8_t>>> still_held;
  for (auto& [rounds, frame] : held_) {
    if (rounds <= 1)
      inner_->send(std::move(frame));
    else
      still_held.emplace_back(rounds - 1, std::move(frame));
  }
  held_ = std::move(still_held);
  inner_->tick();
}

void send_frame(Transport& transport, const Frame& frame, ChannelStats& stats) {
  static Counter& sent = MetricsRegistry::global().counter("net.frames_sent");
  sent.add(1);
  ++stats.sent;
  transport.send(encode_frame(frame));
}

std::optional<Frame> recv_frame(Transport& transport, ChannelStats& stats) {
  auto& registry = MetricsRegistry::global();
  static Counter& delivered = registry.counter("net.frames_delivered");
  static Counter& corrupt = registry.counter("net.frames_corrupt");
  while (auto blob = transport.receive()) {
    delivered.add(1);
    ++stats.delivered;
    Frame frame;
    if (decode_frame(*blob, frame) == DecodeStatus::kOk) return frame;
    corrupt.add(1);
    ++stats.corrupt;
  }
  return std::nullopt;
}

}  // namespace xpuf::net
