#include "net/session.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace xpuf::net {

bool is_terminal(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kApproved:
    case SessionPhase::kDenied:
    case SessionPhase::kRejected:
    case SessionPhase::kFailed:
      return true;
    case SessionPhase::kIdle:
    case SessionPhase::kAwaitChallenge:
    case SessionPhase::kAwaitResult:
      return false;
  }
  return false;
}

const char* to_string(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kIdle: return "idle";
    case SessionPhase::kAwaitChallenge: return "await_challenge";
    case SessionPhase::kAwaitResult: return "await_result";
    case SessionPhase::kApproved: return "approved";
    case SessionPhase::kDenied: return "denied";
    case SessionPhase::kRejected: return "rejected";
    case SessionPhase::kFailed: return "failed";
  }
  return "?";
}

DeviceClient::DeviceClient(const sim::XorPufChip& chip, sim::Environment env,
                           Rng rng, Transport& to_server,
                           Transport& from_server, std::uint32_t auth_sessions,
                           ClientPolicy policy, bool enroll_first,
                           bool revoke_at_end)
    : chip_(&chip),
      env_(env),
      rng_(rng),
      tx_(&to_server),
      rx_(&from_server),
      policy_(policy) {
  XPUF_REQUIRE(policy.timeout_rounds >= 1, "timeout must be at least 1 round");
  if (enroll_first) plan_.push_back(FrameType::kEnrollBegin);
  for (std::uint32_t i = 0; i < auth_sessions; ++i)
    plan_.push_back(FrameType::kAuthBegin);
  if (revoke_at_end) plan_.push_back(FrameType::kRevoke);
  XPUF_REQUIRE(!plan_.empty(), "client needs at least one scripted session");
}

std::uint64_t DeviceClient::device_id() const {
  return static_cast<std::uint64_t>(chip_->id());
}

void DeviceClient::step(std::uint32_t round) {
  static Counter& ignored =
      MetricsRegistry::global().counter("net.frames_ignored");
  // Drain the inbox even after finishing so duplicated or reordered frames
  // still in flight get consumed and the transports can reach idle.
  while (auto frame = recv_frame(*rx_, stats_)) {
    if (finished() || frame->header.device_id != device_id() ||
        frame->header.session_id != current_.session_id ||
        is_terminal(phase_) || phase_ == SessionPhase::kIdle) {
      ignored.add(1);
      continue;
    }
    handle(*frame, round);
  }
  if (finished()) return;
  if (phase_ == SessionPhase::kIdle) {
    open_next_session(round);
    return;
  }
  if (!is_terminal(phase_) && round >= deadline_round_) on_deadline(round);
}

void DeviceClient::open_next_session(std::uint32_t round) {
  static Counter& opened =
      MetricsRegistry::global().counter("net.sessions_opened");
  opened.add(1);
  const FrameType begin = plan_[plan_index_];
  current_ = SessionRecord{};
  current_.session_id = ++session_counter_;
  current_.opened_with = begin;
  pending_type_ = begin;
  pending_payload_.clear();
  // REVOKE is acknowledged directly with an AUTH_RESULT; the other session
  // openers are answered with a CHALLENGE_BATCH first.
  phase_ = begin == FrameType::kRevoke ? SessionPhase::kAwaitResult
                                       : SessionPhase::kAwaitChallenge;
  timeout_cur_ = policy_.timeout_rounds;
  if (observer_) observer_->on_session_opened(current_.session_id, round);
  transmit(round);
  arm_deadline(round, timeout_cur_);
}

void DeviceClient::transmit(std::uint32_t round) {
  (void)round;
  Frame frame;
  frame.header.type = pending_type_;
  frame.header.device_id = device_id();
  frame.header.session_id = current_.session_id;
  frame.header.seq = seq_++;
  frame.payload = pending_payload_;
  send_frame(*tx_, frame, stats_);
}

void DeviceClient::arm_deadline(std::uint32_t round, std::uint32_t wait) {
  deadline_round_ = round + (wait == 0 ? 1 : wait);
}

void DeviceClient::on_deadline(std::uint32_t round) {
  if (current_.retries >= policy_.max_retries) {
    finish_session(SessionPhase::kFailed, round);
    return;
  }
  static Counter& retries = MetricsRegistry::global().counter("net.retries");
  retries.add(1);
  ++current_.retries;
  // Exponential backoff: the await window doubles with every retransmission.
  timeout_cur_ *= 2;
  transmit(round);
  arm_deadline(round, timeout_cur_);
}

void DeviceClient::handle(const Frame& frame, std::uint32_t round) {
  static Counter& ignored =
      MetricsRegistry::global().counter("net.frames_ignored");
  switch (frame.header.type) {
    case FrameType::kChallengeBatch: {
      if (phase_ != SessionPhase::kAwaitChallenge) {
        ignored.add(1);  // duplicate batch after we already responded
        return;
      }
      std::vector<Challenge> challenges;
      if (decode_challenge_batch(frame.payload, challenges) !=
              DecodeStatus::kOk ||
          challenges.empty()) {
        ++stats_.corrupt;  // framing was fine but the payload is malformed
        return;            // the deadline path retransmits the begin frame
      }
      // Measure each challenge exactly once; the encoded payload is cached so
      // retransmissions carry bit-identical responses and the measurement
      // stream position stays a pure function of delivered batches.
      std::vector<std::uint8_t> bits;
      bits.reserve(challenges.size());
      for (const Challenge& challenge : challenges)
        bits.push_back(chip_->xor_response(challenge, env_, rng_) ? 1u : 0u);
      current_.challenges_used =
          static_cast<std::uint32_t>(challenges.size());
      pending_type_ = FrameType::kResponseSubmit;
      pending_payload_ = encode_response_bits(bits);
      phase_ = SessionPhase::kAwaitResult;
      timeout_cur_ = policy_.timeout_rounds;
      transmit(round);
      arm_deadline(round, timeout_cur_);
      return;
    }
    case FrameType::kAuthResult: {
      if (phase_ != SessionPhase::kAwaitResult) {
        ignored.add(1);
        return;
      }
      AuthResultPayload result;
      if (decode_auth_result(frame.payload, result) != DecodeStatus::kOk) {
        ++stats_.corrupt;
        return;
      }
      current_.mismatches = result.mismatches;
      if (result.challenges_used != 0)
        current_.challenges_used = result.challenges_used;
      finish_session(result.status == AuthStatus::kDenied
                         ? SessionPhase::kDenied
                         : SessionPhase::kApproved,
                     round);
      return;
    }
    case FrameType::kNack: {
      NackPayload nack;
      if (decode_nack(frame.payload, nack) != DecodeStatus::kOk) {
        ++stats_.corrupt;
        return;
      }
      if (nack.retry_after_rounds == 0) {
        finish_session(SessionPhase::kRejected, round);
        return;
      }
      // Retryable NACK (e.g. busy): wait the advertised number of rounds and
      // let the deadline path retransmit, which also enforces max_retries.
      arm_deadline(round, nack.retry_after_rounds);
      return;
    }
    default:
      ignored.add(1);  // server-bound frame types never reach the client
      return;
  }
}

void DeviceClient::finish_session(SessionPhase terminal,
                                  std::uint32_t round) {
  auto& registry = MetricsRegistry::global();
  static Counter& approved = registry.counter("net.session_approved");
  static Counter& denied = registry.counter("net.session_denied");
  static Counter& rejected = registry.counter("net.session_rejected");
  static Counter& failed = registry.counter("net.session_failed");
  switch (terminal) {
    case SessionPhase::kApproved: approved.add(1); break;
    case SessionPhase::kDenied: denied.add(1); break;
    case SessionPhase::kRejected: rejected.add(1); break;
    case SessionPhase::kFailed: failed.add(1); break;
    default: XPUF_REQUIRE(false, "finish_session needs a terminal phase");
  }
  current_.terminal = terminal;
  records_.push_back(current_);
  ++plan_index_;
  phase_ = finished() ? terminal : SessionPhase::kIdle;
  if (observer_) observer_->on_session_terminal(records_.back(), round);
}

}  // namespace xpuf::net
