#include "net/server_session.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace xpuf::net {

std::uint64_t issue_stream_key(std::uint64_t device_id,
                               std::uint32_t session_id) {
  return (device_id << 20) ^ static_cast<std::uint64_t>(session_id);
}

ServerSessionHandler::ServerSessionHandler(
    std::uint64_t device_id, puf::ServerDatabase& db,
    std::map<std::uint64_t, puf::ServerModel>& provisioned,
    const StreamFamily& issue_family, ServerPolicy policy)
    : device_id_(device_id),
      db_(&db),
      provisioned_(&provisioned),
      issue_family_(&issue_family),
      policy_(policy) {
  XPUF_REQUIRE(policy.session_ttl >= 1, "session TTL must be >= 1 tick");
}

bool ServerSessionHandler::expire_if_due(std::uint64_t now) {
  static Counter& expired =
      MetricsRegistry::global().counter("net.sessions_expired");
  // TTL expiry frees the in-flight slot of a session the client abandoned
  // mid-handshake; late frames for it get a terminal NACK, not a verify.
  if (session_.state == ServerSession::State::kChallengeSent &&
      now >= session_.opened_at + policy_.session_ttl) {
    session_.state = ServerSession::State::kNone;
    expired.add(1);
    ledger_.sessions_expired += 1;
    return true;
  }
  return false;
}

std::optional<std::uint64_t> ServerSessionHandler::ttl_deadline() const {
  if (session_.state != ServerSession::State::kChallengeSent)
    return std::nullopt;
  return session_.opened_at + policy_.session_ttl;
}

void ServerSessionHandler::handle(const Frame& frame, std::uint64_t now,
                                  ReplySink& sink) {
  static Counter& ignored =
      MetricsRegistry::global().counter("net.frames_ignored");
  switch (frame.header.type) {
    case FrameType::kEnrollBegin:
    case FrameType::kAuthBegin:
    case FrameType::kRevoke:
      handle_begin(frame, now, sink);
      break;
    case FrameType::kResponseSubmit:
      handle_response(frame, sink);
      break;
    default:
      ignored.add(1);  // client-bound frame types never reach the server
      ledger_.frames_ignored += 1;
      break;
  }
}

void ServerSessionHandler::reply(ReplySink& sink, FrameType type,
                                 std::uint32_t session_id,
                                 std::vector<std::uint8_t> payload) {
  ledger_.replies_sent += 1;
  sink.send(type, session_id, std::move(payload));
}

void ServerSessionHandler::nack(ReplySink& sink, std::uint32_t session_id,
                                NackReason reason, std::uint16_t retry_after) {
  static Counter& nacks = MetricsRegistry::global().counter("net.nacks_sent");
  nacks.add(1);
  ledger_.nacks_sent += 1;
  if (reason == NackReason::kBusy) ledger_.busy_nacks += 1;
  NackPayload payload;
  payload.reason = reason;
  payload.retry_after_rounds = retry_after;
  reply(sink, FrameType::kNack, session_id, encode_nack(payload));
}

void ServerSessionHandler::terminal_nack(ReplySink& sink,
                                         std::uint32_t session_id,
                                         NackReason reason) {
  // Cache the terminal NACK so duplicates of the offending frame are
  // answered idempotently instead of re-deciding.
  session_.state = ServerSession::State::kDone;
  session_.session_id = session_id;
  session_.cached_type = FrameType::kNack;
  NackPayload payload;
  payload.reason = reason;
  payload.retry_after_rounds = 0;
  session_.cached_payload = encode_nack(payload);
  nack(sink, session_id, reason, 0);
}

void ServerSessionHandler::handle_begin(const Frame& frame, std::uint64_t now,
                                        ReplySink& sink) {
  static Counter& ignored =
      MetricsRegistry::global().counter("net.frames_ignored");
  const std::uint32_t sid = frame.header.session_id;
  if (sid < session_.session_id) {
    ignored.add(1);  // stale retransmission of a superseded session
    ledger_.frames_ignored += 1;
    return;
  }
  if (sid == session_.session_id &&
      session_.state != ServerSession::State::kNone) {
    // Duplicate begin: resend whatever the session last answered with.
    reply(sink, session_.cached_type, sid, session_.cached_payload);
    return;
  }
  if (sid > session_.session_id &&
      session_.state == ServerSession::State::kChallengeSent) {
    // The previous session still holds the device's in-flight slot; tell
    // the client to come back after the TTL has had a chance to run.
    nack(sink, sid, NackReason::kBusy, policy_.busy_retry);
    return;
  }
  // sid == session_id with state kNone means the session expired and the
  // client is still retransmitting its begin; reissuing a fresh batch under
  // the same id would desynchronize replay accounting, so close it.
  if (sid == session_.session_id) {
    terminal_nack(sink, sid, NackReason::kBadState);
    return;
  }
  open_session(frame, now, sink);
}

void ServerSessionHandler::open_session(const Frame& frame, std::uint64_t now,
                                        ReplySink& sink) {
  auto& registry = MetricsRegistry::global();
  static Counter& activated = registry.counter("net.enroll_activated");
  static Counter& revocations = registry.counter("net.revocations");
  const std::uint32_t sid = frame.header.session_id;
  const auto chip_id = static_cast<std::size_t>(device_id_);

  if (frame.header.type == FrameType::kRevoke) {
    if (!db_->knows(chip_id)) {
      terminal_nack(sink, sid, NackReason::kUnknownDevice);
      return;
    }
    db_->revoke_device(chip_id);
    revocations.add(1);
    ledger_.revocations += 1;
    AuthResultPayload ack;
    ack.status = AuthStatus::kRevokeAck;
    session_.state = ServerSession::State::kDone;
    session_.session_id = sid;
    session_.cached_type = FrameType::kAuthResult;
    session_.cached_payload = encode_auth_result(ack);
    reply(sink, FrameType::kAuthResult, sid, session_.cached_payload);
    return;
  }

  if (frame.header.type == FrameType::kEnrollBegin && !db_->knows(chip_id)) {
    const auto it = provisioned_->find(device_id_);
    if (it == provisioned_->end()) {
      terminal_nack(sink, sid, NackReason::kUnknownDevice);
      return;
    }
    db_->register_device(std::move(it->second));
    provisioned_->erase(it);
    activated.add(1);
    ledger_.enroll_activated += 1;
  }
  if (!db_->knows(chip_id)) {
    // AUTH_BEGIN for a device never activated — or revoked earlier.
    terminal_nack(sink, sid, provisioned_->count(device_id_) == 0
                                 ? NackReason::kRevoked
                                 : NackReason::kUnknownDevice);
    return;
  }

  // Challenge issuance draws from a (device, session)-keyed stream so a
  // live-screened batch is a pure function of the session, not of
  // scheduling. With an issuance pool enabled the batch is instead a pure
  // function of (device, per-device issuance ordinal): the pool drains in
  // seed-deterministic order and the handler serves one device's frames
  // serially, so both properties make the lockstep and event-loop engines
  // issue identical batches for the same (device, session) pair.
  Rng issue_rng = issue_family_->stream(issue_stream_key(device_id_, sid));
  puf::ChallengeBatch batch;
  try {
    batch = db_->issue(chip_id, issue_rng);
  } catch (const NumericalError&) {
    terminal_nack(sink, sid, NackReason::kSelectionExhausted);
    return;
  }
  ledger_.batches_issued += 1;
  session_.state = ServerSession::State::kChallengeSent;
  session_.session_id = sid;
  session_.opened_at = now;
  session_.cached_type = FrameType::kChallengeBatch;
  session_.cached_payload = encode_challenge_batch(
      batch.challenges,
      static_cast<std::uint32_t>(
          batch.challenges.empty() ? 0 : batch.challenges[0].size()));
  session_.batch = std::move(batch);
  reply(sink, FrameType::kChallengeBatch, sid, session_.cached_payload);
}

void ServerSessionHandler::handle_response(const Frame& frame,
                                           ReplySink& sink) {
  static Counter& ignored =
      MetricsRegistry::global().counter("net.frames_ignored");
  const std::uint32_t sid = frame.header.session_id;
  if (sid != session_.session_id) {
    ignored.add(1);  // stale (old session) or impossible future id
    ledger_.frames_ignored += 1;
    return;
  }
  if (session_.state == ServerSession::State::kDone) {
    // Duplicate submit after the verdict: resend it, never verify twice.
    reply(sink, session_.cached_type, sid, session_.cached_payload);
    return;
  }
  if (session_.state == ServerSession::State::kNone) {
    // The session expired while the response was in flight.
    terminal_nack(sink, sid, NackReason::kBadState);
    return;
  }
  std::vector<std::uint8_t> bits;
  if (decode_response_bits(frame.payload, bits) != DecodeStatus::kOk ||
      bits.size() != session_.batch.challenges.size()) {
    // The frame checksum passed, so this is a protocol violation rather
    // than line noise — close the session instead of hanging it.
    terminal_nack(sink, sid, NackReason::kBadState);
    return;
  }
  std::vector<bool> responses;
  responses.reserve(bits.size());
  for (std::uint8_t b : bits) responses.push_back(b != 0);
  const puf::AuthenticationOutcome outcome = db_->verify(
      static_cast<std::size_t>(device_id_), session_.batch, responses);
  AuthResultPayload result;
  result.status =
      outcome.approved ? AuthStatus::kApproved : AuthStatus::kDenied;
  result.mismatches = static_cast<std::uint32_t>(outcome.mismatches);
  result.challenges_used = static_cast<std::uint32_t>(outcome.challenges_used);
  session_.state = ServerSession::State::kDone;
  session_.cached_type = FrameType::kAuthResult;
  session_.cached_payload = encode_auth_result(result);
  reply(sink, FrameType::kAuthResult, sid, session_.cached_payload);
}

}  // namespace xpuf::net
