#include "net/wire.hpp"

#include <array>
#include <string>

#include "common/error.hpp"

namespace xpuf::net {

bool is_known_frame_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(FrameType::kEnrollBegin) &&
         raw <= static_cast<std::uint8_t>(FrameType::kRevoke);
}

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kEnrollBegin: return "ENROLL_BEGIN";
    case FrameType::kAuthBegin: return "AUTH_BEGIN";
    case FrameType::kChallengeBatch: return "CHALLENGE_BATCH";
    case FrameType::kResponseSubmit: return "RESPONSE_SUBMIT";
    case FrameType::kAuthResult: return "AUTH_RESULT";
    case FrameType::kNack: return "NACK";
    case FrameType::kRevoke: return "REVOKE";
  }
  return "UNKNOWN";
}

const char* to_string(NackReason reason) {
  switch (reason) {
    case NackReason::kUnknownDevice: return "UNKNOWN_DEVICE";
    case NackReason::kBusy: return "BUSY";
    case NackReason::kBadState: return "BAD_STATE";
    case NackReason::kSelectionExhausted: return "SELECTION_EXHAUSTED";
    case NackReason::kRevoked: return "REVOKED";
  }
  return "UNKNOWN";
}

const char* to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated frame";
    case DecodeStatus::kBadMagic: return "bad magic";
    case DecodeStatus::kBadVersion: return "unsupported version";
    case DecodeStatus::kBadType: return "unknown frame type";
    case DecodeStatus::kBadLength: return "payload length out of range";
    case DecodeStatus::kBadChecksum: return "checksum mismatch";
    case DecodeStatus::kTrailingBytes: return "trailing bytes after checksum";
    case DecodeStatus::kBadPayload: return "malformed payload";
  }
  return "unknown decode status";
}

// --- byte-order codecs ------------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xffu));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xffu));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (std::uint32_t shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (std::uint32_t shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
}

bool WireReader::read_u8(std::uint8_t& v) {
  if (remaining() < 1) return false;
  v = data_[pos_++];
  return true;
}

bool WireReader::read_u16(std::uint16_t& v) {
  if (remaining() < 2) return false;
  v = static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_]) |
                                 (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return true;
}

bool WireReader::read_u32(std::uint32_t& v) {
  if (remaining() < 4) return false;
  v = 0;
  for (std::uint32_t b = 0; b < 4; ++b)
    v |= static_cast<std::uint32_t>(data_[pos_ + b]) << (8 * b);
  pos_ += 4;
  return true;
}

bool WireReader::read_u64(std::uint64_t& v) {
  if (remaining() < 8) return false;
  v = 0;
  for (std::uint32_t b = 0; b < 8; ++b)
    v |= static_cast<std::uint64_t>(data_[pos_ + b]) << (8 * b);
  pos_ += 8;
  return true;
}

bool WireReader::read_bytes(std::uint64_t n, std::vector<std::uint8_t>& out) {
  if (remaining() < n) return false;
  out.assign(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return true;
}

// --- crc32 ------------------------------------------------------------------

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (std::uint32_t k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::uint64_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::uint64_t i = 0; i < size; ++i)
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::uint32_t crc32(const std::vector<std::uint8_t>& bytes) {
  return crc32(bytes.data(), static_cast<std::uint64_t>(bytes.size()));
}

// --- frame codec ------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  XPUF_REQUIRE(frame.payload.size() <= kMaxPayloadBytes,
               "frame payload exceeds the wire limit");
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + frame.payload.size() + kTrailerBytes);
  put_u16(out, kWireMagic);
  put_u8(out, frame.header.version);
  put_u8(out, static_cast<std::uint8_t>(frame.header.type));
  put_u64(out, frame.header.device_id);
  put_u32(out, frame.header.session_id);
  put_u32(out, frame.header.seq);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  put_u32(out, crc32(out));
  return out;
}

DecodeStatus decode_frame(const std::vector<std::uint8_t>& bytes, Frame& out) {
  WireReader reader(bytes);
  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::uint32_t payload_len = 0;
  if (!reader.read_u16(magic)) return DecodeStatus::kTruncated;
  if (magic != kWireMagic) return DecodeStatus::kBadMagic;
  if (!reader.read_u8(version)) return DecodeStatus::kTruncated;
  if (version != kWireVersion) return DecodeStatus::kBadVersion;
  if (!reader.read_u8(type)) return DecodeStatus::kTruncated;
  if (!is_known_frame_type(type)) return DecodeStatus::kBadType;
  if (!reader.read_u64(out.header.device_id)) return DecodeStatus::kTruncated;
  if (!reader.read_u32(out.header.session_id)) return DecodeStatus::kTruncated;
  if (!reader.read_u32(out.header.seq)) return DecodeStatus::kTruncated;
  if (!reader.read_u32(payload_len)) return DecodeStatus::kTruncated;
  if (payload_len > kMaxPayloadBytes) return DecodeStatus::kBadLength;
  if (!reader.read_bytes(payload_len, out.payload)) return DecodeStatus::kTruncated;
  std::uint32_t stated_crc = 0;
  const std::uint64_t covered = reader.position();
  if (!reader.read_u32(stated_crc)) return DecodeStatus::kTruncated;
  if (reader.remaining() != 0) return DecodeStatus::kTrailingBytes;
  if (crc32(bytes.data(), covered) != stated_crc) return DecodeStatus::kBadChecksum;
  out.header.version = version;
  out.header.type = static_cast<FrameType>(type);
  return DecodeStatus::kOk;
}

Frame decode_frame_or_throw(const std::vector<std::uint8_t>& bytes) {
  Frame frame;
  const DecodeStatus status = decode_frame(bytes, frame);
  if (status != DecodeStatus::kOk)
    throw WireError(std::string("wire frame decode failed: ") + to_string(status));
  return frame;
}

// --- payload codecs ---------------------------------------------------------

namespace {

std::uint32_t packed_row_bytes(std::uint32_t bit_count) {
  return (bit_count + 7u) / 8u;
}

void pack_bits(std::vector<std::uint8_t>& out, const std::uint8_t* bits,
               std::uint32_t count) {
  for (std::uint32_t base = 0; base < count; base += 8) {
    std::uint8_t byte = 0;
    for (std::uint32_t b = 0; b < 8 && base + b < count; ++b)
      if (bits[base + b] != 0) byte = static_cast<std::uint8_t>(byte | (1u << b));
    out.push_back(byte);
  }
}

bool unpack_bits(WireReader& reader, std::uint32_t count,
                 std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> packed;
  if (!reader.read_bytes(packed_row_bytes(count), packed)) return false;
  out.resize(count);
  for (std::uint32_t i = 0; i < count; ++i)
    out[i] = static_cast<std::uint8_t>((packed[i / 8] >> (i % 8)) & 1u);
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_challenge_batch(
    const std::vector<Challenge>& challenges, std::uint32_t stages) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + challenges.size() * packed_row_bytes(stages));
  put_u32(out, static_cast<std::uint32_t>(challenges.size()));
  put_u32(out, stages);
  for (const Challenge& c : challenges) {
    XPUF_REQUIRE(c.size() == stages, "challenge length differs from batch stages");
    pack_bits(out, c.data(), stages);
  }
  return out;
}

DecodeStatus decode_challenge_batch(const std::vector<std::uint8_t>& payload,
                                    std::vector<Challenge>& out) {
  WireReader reader(payload);
  std::uint32_t count = 0;
  std::uint32_t stages = 0;
  if (!reader.read_u32(count)) return DecodeStatus::kBadPayload;
  if (!reader.read_u32(stages)) return DecodeStatus::kBadPayload;
  if (stages == 0 || stages > 4096) return DecodeStatus::kBadPayload;
  if (static_cast<std::uint64_t>(count) * packed_row_bytes(stages) != reader.remaining())
    return DecodeStatus::kBadPayload;
  out.clear();
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Challenge c;
    if (!unpack_bits(reader, stages, c)) return DecodeStatus::kBadPayload;
    out.push_back(std::move(c));
  }
  return DecodeStatus::kOk;
}

std::vector<std::uint8_t> encode_response_bits(
    const std::vector<std::uint8_t>& bits) {
  std::vector<std::uint8_t> out;
  const std::uint32_t count = static_cast<std::uint32_t>(bits.size());
  out.reserve(4 + packed_row_bytes(count));
  put_u32(out, count);
  pack_bits(out, bits.data(), count);
  return out;
}

DecodeStatus decode_response_bits(const std::vector<std::uint8_t>& payload,
                                  std::vector<std::uint8_t>& out) {
  WireReader reader(payload);
  std::uint32_t count = 0;
  if (!reader.read_u32(count)) return DecodeStatus::kBadPayload;
  if (count > kMaxPayloadBytes) return DecodeStatus::kBadPayload;
  if (packed_row_bytes(count) != reader.remaining()) return DecodeStatus::kBadPayload;
  if (!unpack_bits(reader, count, out)) return DecodeStatus::kBadPayload;
  return DecodeStatus::kOk;
}

std::vector<std::uint8_t> encode_auth_result(const AuthResultPayload& result) {
  std::vector<std::uint8_t> out;
  out.reserve(9);
  put_u8(out, static_cast<std::uint8_t>(result.status));
  put_u32(out, result.mismatches);
  put_u32(out, result.challenges_used);
  return out;
}

DecodeStatus decode_auth_result(const std::vector<std::uint8_t>& payload,
                                AuthResultPayload& out) {
  WireReader reader(payload);
  std::uint8_t status = 0;
  if (!reader.read_u8(status)) return DecodeStatus::kBadPayload;
  if (status < static_cast<std::uint8_t>(AuthStatus::kApproved) ||
      status > static_cast<std::uint8_t>(AuthStatus::kRevokeAck))
    return DecodeStatus::kBadPayload;
  if (!reader.read_u32(out.mismatches)) return DecodeStatus::kBadPayload;
  if (!reader.read_u32(out.challenges_used)) return DecodeStatus::kBadPayload;
  if (reader.remaining() != 0) return DecodeStatus::kBadPayload;
  out.status = static_cast<AuthStatus>(status);
  return DecodeStatus::kOk;
}

std::vector<std::uint8_t> encode_nack(const NackPayload& nack) {
  std::vector<std::uint8_t> out;
  out.reserve(3);
  put_u8(out, static_cast<std::uint8_t>(nack.reason));
  put_u16(out, nack.retry_after_rounds);
  return out;
}

DecodeStatus decode_nack(const std::vector<std::uint8_t>& payload,
                         NackPayload& out) {
  WireReader reader(payload);
  std::uint8_t reason = 0;
  if (!reader.read_u8(reason)) return DecodeStatus::kBadPayload;
  if (reason < static_cast<std::uint8_t>(NackReason::kUnknownDevice) ||
      reason > static_cast<std::uint8_t>(NackReason::kRevoked))
    return DecodeStatus::kBadPayload;
  if (!reader.read_u16(out.retry_after_rounds)) return DecodeStatus::kBadPayload;
  if (reader.remaining() != 0) return DecodeStatus::kBadPayload;
  out.reason = static_cast<NackReason>(reason);
  return DecodeStatus::kOk;
}

}  // namespace xpuf::net
