// Sharded authentication service engine.
//
// The ServiceEngine owns every provisioned connection and drives the whole
// fleet in deterministic lockstep rounds: each round, every shard advances
// its clients, serves its inbound frames, and ticks its transports. Work is
// sharded on a FIXED grid (ServiceConfig::shards, independent of the worker
// thread count) with devices pinned by `device_id % shards`, the same
// chunk-ownership discipline as common/parallel.hpp — so a run is
// bit-identical at 1, 2, or 8 worker threads.
//
// Determinism inventory (everything a round touches is a pure function of
// the config seed and the shard-local event order):
//   * fault schedules       — StreamFamily keyed per (connection, direction)
//   * challenge issuance    — StreamFamily keyed per (device, session)
//   * measurement noise     — StreamFamily keyed per device
//   * global counters       — sharded atomics with deterministic totals
//   * gauges                — racy by design, overwritten serially in
//                             finalize() before any snapshot is compared
//
// Graceful degradation: a hostile transport produces typed NACKs, bounded
// client retries with exponential backoff, and server-side session TTL
// expiry — never a crash and never a silent accept. finalize() re-derives
// every aggregate from per-connection ledgers and reports any drift as a
// violation string, so "zero accounting drift" is checked, not assumed.
//
// The server-side protocol decisions themselves live in server_session.hpp
// (ServerSessionHandler), shared verbatim with the event-loop engine in
// async/service_engine.hpp — this engine is the deterministic ORACLE the
// socket engine reconciles its per-device ledgers against.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/session.hpp"
#include "net/transport.hpp"
#include "puf/database.hpp"
#include "sim/chip.hpp"

namespace xpuf::net {

struct ServiceConfig {
  /// Fixed shard grid — deliberately NOT the thread count (determinism).
  std::uint32_t shards = 8;
  /// Open server sessions allowed per device at once.
  std::uint32_t max_inflight_per_device = 1;
  /// Rounds before an open server session is expired (frees the in-flight
  /// slot when a client gave up on the session mid-handshake).
  std::uint32_t session_ttl_rounds = 64;
  /// Round budget; hitting it with live sessions is reported as a violation.
  std::uint32_t max_rounds = 4096;
  /// retry_after_rounds advertised in a busy NACK.
  std::uint16_t busy_retry_rounds = 2;
  std::uint64_t seed = 2017;
  puf::DatabaseConfig database;
  /// Applied to BOTH directions of every connection, stream-keyed.
  FaultProfile faults;
  ClientPolicy client_policy;
};

/// Aggregates re-derived from per-connection ledgers by finalize().
struct ServiceReport {
  std::uint32_t rounds = 0;
  bool all_finished = false;
  bool all_idle = false;

  std::uint64_t devices = 0;
  std::uint64_t sessions_total = 0;
  std::uint64_t approved = 0;
  std::uint64_t denied = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;

  std::uint64_t frames_sent = 0;       ///< both directions, endpoint counts
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_corrupt = 0;
  FaultTally faults;                   ///< summed over every FaultyTransport

  std::uint64_t sessions_expired = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t enroll_activated = 0;
  std::uint64_t revocations = 0;
  /// Challenge batches issued, summed from the per-handler ledgers; must
  /// equal the global db.issue_requests counter (pooled or live issuance).
  std::uint64_t batches_issued = 0;

  /// Accounting-invariant breaches, empty on a clean run.
  std::vector<std::string> violations;
  /// Order-independent digest of every session outcome and frame tally;
  /// equal fingerprints across thread counts prove bit-identical runs.
  std::uint64_t fingerprint = 0;
  /// Digest over session OUTCOMES only (no retries, no frame tallies) — the
  /// part of a run that is transport-invariant. The event-loop engine
  /// reconciles its own outcome_fingerprint against this oracle value.
  std::uint64_t outcome_fingerprint = 0;

  bool reconciled() const { return all_finished && violations.empty(); }
};

class ServiceEngine {
 public:
  explicit ServiceEngine(ServiceConfig config);
  ~ServiceEngine();

  ServiceEngine(const ServiceEngine&) = delete;
  ServiceEngine& operator=(const ServiceEngine&) = delete;

  const ServiceConfig& config() const { return config_; }
  std::uint64_t device_count() const { return device_index_.size(); }

  /// Registers one device: the physical chip (client side), its enrolled
  /// server model (activated on ENROLL_BEGIN), and the scripted session
  /// plan. Must be called before run(); the device lands on shard
  /// `chip.id() % shards`.
  void provision(const sim::XorPufChip& chip, puf::ServerModel model,
                 const sim::Environment& env, std::uint32_t auth_sessions,
                 bool enroll_first = true, bool revoke_at_end = false);

  /// Drives rounds until every client finished and every transport is idle
  /// (or max_rounds), then reconciles. Runs shards under the global pool.
  ServiceReport run();

  /// Per-session outcome ledger of one provisioned device.
  const std::vector<SessionRecord>& device_records(std::uint64_t device_id) const;

 private:
  struct Connection;
  struct Shard;

  Shard& shard_of(std::uint64_t device_id);
  void step_shard(std::size_t shard_index, std::uint32_t round);
  void serve(Connection& conn, std::uint32_t round);
  ServiceReport finalize(std::uint32_t rounds, bool all_finished,
                         bool all_idle);

  ServiceConfig config_;
  StreamFamily fault_family_;
  StreamFamily issue_family_;
  StreamFamily measure_family_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// device_id -> (shard, index-in-shard); also fixes the serial
  /// finalize/report iteration order.
  std::map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>> device_index_;
};

}  // namespace xpuf::net
