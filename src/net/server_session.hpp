// Server-side session state machine, shared by both service engines.
//
// The lockstep ServiceEngine (service.hpp) and the event-loop
// AsyncServiceEngine (async/service_engine.hpp) must run the SAME protocol
// decisions — that is what makes the lockstep engine usable as the oracle
// the socket engine reconciles against. This file hoists the per-device
// server endpoint out of service.cpp: one ServerSessionHandler per
// provisioned device owns its ServerSession, decides begin/response/expiry
// transitions, and emits replies through a narrow ReplySink so each engine
// can route them over its own transport (lockstep pipe pair, nonblocking
// socket).
//
// Clock domain: `now` is whatever monotonic tick the owning engine supplies
// — lockstep rounds for ServiceEngine, async::Clock ticks (wall-ms by
// default) for the event loop. ServerPolicy::session_ttl and busy_retry are
// expressed in that same domain; nothing here assumes a tick equals a
// protocol round trip.
//
// Concurrency contract: a handler belongs to exactly one engine lane (a
// lockstep shard, or the single event-loop thread); all calls are serial.
// Alongside the global net.* counters every handler keeps a plain-integer
// ServerLedger so an engine can reconcile its own traffic even when several
// engines have incremented the shared registry in one process.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "net/wire.hpp"
#include "puf/database.hpp"

namespace xpuf::net {

/// StreamFamily key of a (device, session) issuance draw; the shift keeps
/// distinct devices' session streams decorrelated. Shared by both engines so
/// the same (device, session) always issues the same challenge batch.
std::uint64_t issue_stream_key(std::uint64_t device_id, std::uint32_t session_id);

/// Server-side protocol knobs, decoupled from each engine's config struct.
struct ServerPolicy {
  /// Ticks before an open session expires (frees the in-flight slot when a
  /// client gave up mid-handshake). Lockstep rounds or clock ticks — the
  /// engine picks the domain and must size the value for it.
  std::uint64_t session_ttl = 64;
  /// retry_after advertised in a busy NACK, in the engine's tick domain
  /// (the wire field is named retry_after_rounds for lockstep history).
  std::uint16_t busy_retry = 2;
};

/// Server-side view of one device's current session.
struct ServerSession {
  enum class State : std::uint8_t {
    kNone = 0,        ///< no open session (fresh, expired, or never opened)
    kChallengeSent,   ///< batch issued, awaiting RESPONSE_SUBMIT
    kDone,            ///< terminal reply cached for idempotent resends
  };

  State state = State::kNone;
  std::uint32_t session_id = 0;  ///< highest session id seen from the device
  std::uint64_t opened_at = 0;   ///< tick the current session was opened
  puf::ChallengeBatch batch;
  /// Last reply of the session, re-sent verbatim on duplicates: the
  /// CHALLENGE_BATCH while kChallengeSent, the AUTH_RESULT/NACK once kDone.
  FrameType cached_type = FrameType::kNack;
  std::vector<std::uint8_t> cached_payload;
};

/// Per-handler accounting mirror of the global net.* counters, summed by the
/// owning engine's finalize() so multi-engine processes still reconcile.
struct ServerLedger {
  std::uint64_t nacks_sent = 0;
  std::uint64_t busy_nacks = 0;        ///< subset of nacks_sent (kBusy)
  std::uint64_t sessions_expired = 0;
  std::uint64_t enroll_activated = 0;
  std::uint64_t revocations = 0;
  std::uint64_t frames_ignored = 0;
  std::uint64_t replies_sent = 0;
  /// Challenge batches issued (db.issue calls that returned a batch). Engines
  /// reconcile the sum against the global db.issue_requests counter so the
  /// pooled issuance path stays drift-free under either transport.
  std::uint64_t batches_issued = 0;
};

/// Where a handler's replies go. The engines own different transports, so
/// the handler emits through this narrow sink; implementations stamp the
/// device_id/seq header fields and count their own channel stats.
class ReplySink {
 public:
  virtual ~ReplySink() = default;
  virtual void send(FrameType type, std::uint32_t session_id,
                    std::vector<std::uint8_t> payload) = 0;
};

/// The per-device server endpoint. References (database, provisioned-model
/// map, issuance family) are borrowed from the owning engine shard and must
/// outlive the handler.
class ServerSessionHandler {
 public:
  ServerSessionHandler(std::uint64_t device_id, puf::ServerDatabase& db,
                       std::map<std::uint64_t, puf::ServerModel>& provisioned,
                       const StreamFamily& issue_family, ServerPolicy policy);

  /// TTL sweep; true when the open session expired at `now`. Engines call
  /// this before serving (lockstep, each round) or from a timer (event
  /// loop); both are correct because expiry only compares `now` against the
  /// open tick.
  bool expire_if_due(std::uint64_t now);

  /// Serves one device->server frame arriving at tick `now`. Every frame
  /// gets exactly one disposition: a reply through `sink`, or a counted
  /// ignore — never a silent drop.
  void handle(const Frame& frame, std::uint64_t now, ReplySink& sink);

  const ServerSession& session() const { return session_; }
  const ServerLedger& ledger() const { return ledger_; }
  std::uint64_t device_id() const { return device_id_; }

  /// Absolute tick the open session expires at; nullopt when none is open.
  /// Event-loop engines arm their timer wheel off this.
  std::optional<std::uint64_t> ttl_deadline() const;

 private:
  void reply(ReplySink& sink, FrameType type, std::uint32_t session_id,
             std::vector<std::uint8_t> payload);
  void nack(ReplySink& sink, std::uint32_t session_id, NackReason reason,
            std::uint16_t retry_after);
  void terminal_nack(ReplySink& sink, std::uint32_t session_id,
                     NackReason reason);
  void handle_begin(const Frame& frame, std::uint64_t now, ReplySink& sink);
  void handle_response(const Frame& frame, ReplySink& sink);
  void open_session(const Frame& frame, std::uint64_t now, ReplySink& sink);

  std::uint64_t device_id_;
  puf::ServerDatabase* db_;
  std::map<std::uint64_t, puf::ServerModel>* provisioned_;
  const StreamFamily* issue_family_;
  ServerPolicy policy_;
  ServerSession session_;
  ServerLedger ledger_;
};

}  // namespace xpuf::net
