#include "net/async/acceptor.hpp"

#include <utility>

#include "common/metrics.hpp"
#include "net/wire.hpp"

namespace xpuf::net::async {

std::size_t Acceptor::drain(const std::function<bool(Fd&)>& admit) {
  static Counter& accepted =
      MetricsRegistry::global().counter("net.async.connections_accepted");
  static Counter& overflow =
      MetricsRegistry::global().counter("net.async.accept_overflow");
  std::size_t admitted = 0;
  for (;;) {
    AcceptResult r = sys_accept(listen_fd_);
    if (r.status != IoStatus::kOk) break;  // kWouldBlock: backlog drained
    ++accepted_;
    accepted.add();
    if (admit(r.fd)) {
      ++admitted;
    } else {
      ++overflowed_;
      overflow.add();
      refuse(std::move(r.fd));
    }
  }
  return admitted;
}

void Acceptor::refuse(Fd fd) {
  // Best-effort typed rejection: a freshly-accepted localhost socket always
  // has room for one 32-byte frame in its send buffer, so a single write
  // suffices; if it still short-writes, closing is the only remaining move
  // and the overflow counter has already recorded the event.
  Frame frame;
  frame.header.type = FrameType::kNack;
  frame.header.device_id = 0;
  frame.header.session_id = 0;
  frame.header.seq = 0;
  NackPayload nack;
  nack.reason = NackReason::kBusy;
  nack.retry_after_rounds = busy_retry_ticks_;
  frame.payload = encode_nack(nack);
  const std::vector<std::uint8_t> blob = encode_frame(frame);
  sys_write(fd, blob.data(), blob.size());
  // fd closes on scope exit (RAII).
}

}  // namespace xpuf::net::async
