#include "net/async/stream_decoder.hpp"

#include "common/metrics.hpp"
#include "net/wire.hpp"

namespace xpuf::net::async {

void FrameStreamDecoder::feed(const std::uint8_t* data, std::size_t n) {
  buffer_.insert(buffer_.end(), data, data + n);
}

std::optional<std::vector<std::uint8_t>> FrameStreamDecoder::next() {
  static Counter& resync =
      MetricsRegistry::global().counter("net.async.resync_bytes");
  for (;;) {
    const std::size_t avail = buffer_.size() - pos_;
    if (avail < kHeaderBytes) {
      compact();
      return std::nullopt;
    }
    const std::uint8_t* head = buffer_.data() + pos_;
    WireReader reader(head, avail);
    std::uint16_t magic = 0;
    std::uint8_t version = 0, type = 0;
    std::uint64_t device_id = 0;
    std::uint32_t session_id = 0, seq = 0, payload_len = 0;
    reader.read_u16(magic);
    reader.read_u8(version);
    reader.read_u8(type);
    reader.read_u64(device_id);
    reader.read_u32(session_id);
    reader.read_u32(seq);
    reader.read_u32(payload_len);
    // A position that cannot start a frame is skipped one byte at a time;
    // version/type skew is NOT checked here — such frames still have a valid
    // boundary and decode_frame reports them as corrupt with full accounting.
    if (magic != kWireMagic || payload_len > kMaxPayloadBytes) {
      ++pos_;
      ++resync_bytes_;
      resync.add();
      continue;
    }
    const std::size_t frame_len = kHeaderBytes + payload_len + kTrailerBytes;
    if (avail < frame_len) {
      compact();
      return std::nullopt;  // boundary plausible; wait for the rest
    }
    const std::uint32_t want = crc32(head, kHeaderBytes + payload_len);
    WireReader trailer(head + kHeaderBytes + payload_len, kTrailerBytes);
    std::uint32_t got = 0;
    trailer.read_u32(got);
    if (want != got) {
      ++pos_;
      ++resync_bytes_;
      resync.add();
      continue;
    }
    std::vector<std::uint8_t> blob(head, head + frame_len);
    pos_ += frame_len;
    compact();
    return blob;
  }
}

void FrameStreamDecoder::compact() {
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

}  // namespace xpuf::net::async
