// Injectable tick source of the event-loop engine.
//
// The async engine runs the same round-based protocol state machines as the
// lockstep engine, but its "round" is a clock tick rather than a full-RTT
// lockstep round (see ClientPolicy in net/session.hpp for why the two
// domains need different timeout sizes). Everything time-dependent —
// retransmit deadlines, session TTLs, idle-connection expiry — reads ticks
// through this interface, so tests substitute ManualClock and replay the
// exact deadline arithmetic deterministically, while production uses
// WallClock over the monotonic Timer.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/timer.hpp"

namespace xpuf::net::async {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic tick counter (never decreases between calls).
  virtual std::uint64_t ticks() = 0;

  /// Milliseconds until `tick` is reached, for sizing an epoll_wait timeout.
  /// Returns 0 when `tick` is already due.
  virtual double millis_until(std::uint64_t tick) = 0;
};

/// Test clock: ticks advance only when the test says so, and any armed
/// deadline is always "due now" so a poll never sleeps on it.
class ManualClock final : public Clock {
 public:
  std::uint64_t ticks() override { return now_; }
  double millis_until([[maybe_unused]] std::uint64_t tick) override {
    return 0.0;
  }

  void advance(std::uint64_t delta) { now_ += delta; }
  void set(std::uint64_t now) { now_ = now; }

 private:
  std::uint64_t now_ = 0;
};

/// Wall clock: one tick per `tick_seconds` of monotonic time (default 1 ms).
class WallClock final : public Clock {
 public:
  explicit WallClock(double tick_seconds = 1e-3)
      : tick_seconds_(tick_seconds) {}

  std::uint64_t ticks() override {
    const double t = timer_.seconds() / tick_seconds_;
    return t <= 0.0 ? 0 : static_cast<std::uint64_t>(t);
  }

  double millis_until(std::uint64_t tick) override {
    const double target_s = static_cast<double>(tick) * tick_seconds_;
    const double remain_s = target_s - timer_.seconds();
    return remain_s <= 0.0 ? 0.0 : remain_s * 1e3;
  }

  double tick_seconds() const { return tick_seconds_; }

 private:
  Timer timer_;
  double tick_seconds_;
};

}  // namespace xpuf::net::async
