#include "net/async/socket_transport.hpp"

#include "common/metrics.hpp"

namespace xpuf::net::async {

void SocketTransport::send(std::vector<std::uint8_t> frame) {
  if (failed_) return;  // engine observes failed() and closes; frame counted
  if (write_buffer_.size() - write_pos_ + frame.size() > max_write_buffer_) {
    // The peer stopped reading. Marking the transport failed (counted) keeps
    // backpressure typed instead of letting the buffer grow without bound.
    static Counter& write_overflow =
        MetricsRegistry::global().counter("net.async.write_overflow");
    write_overflow.add();
    failed_ = true;
    return;
  }
  write_buffer_.insert(write_buffer_.end(), frame.begin(), frame.end());
  flush_writes();
}

std::optional<std::vector<std::uint8_t>> SocketTransport::receive() {
  return decoder_.next();
}

PumpStatus SocketTransport::pump_reads() {
  std::uint8_t chunk[16384];
  for (;;) {
    const IoResult r = sys_read(fd_, chunk, sizeof chunk);
    switch (r.status) {
      case IoStatus::kOk:
        decoder_.feed(chunk, r.bytes);
        break;  // keep draining (edge-triggered contract)
      case IoStatus::kWouldBlock:
        return PumpStatus::kOk;
      case IoStatus::kEof:
        return PumpStatus::kPeerClosed;
      case IoStatus::kError:
        failed_ = true;
        return PumpStatus::kError;
    }
  }
}

PumpStatus SocketTransport::flush_writes() {
  while (write_pos_ < write_buffer_.size()) {
    const IoResult r = sys_write(fd_, write_buffer_.data() + write_pos_,
                                 write_buffer_.size() - write_pos_);
    switch (r.status) {
      case IoStatus::kOk:
        write_pos_ += r.bytes;
        break;
      case IoStatus::kWouldBlock:
        return PumpStatus::kOk;
      case IoStatus::kEof:  // sys_write never returns kEof; defensive
      case IoStatus::kError:
        failed_ = true;
        return PumpStatus::kError;
    }
  }
  if (write_pos_ == write_buffer_.size() && write_pos_ > 0) {
    write_buffer_.clear();
    write_pos_ = 0;
  }
  return PumpStatus::kOk;
}

}  // namespace xpuf::net::async
