#include "net/async/timer_wheel.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace xpuf::net::async {

TimerWheel::TimerWheel(std::size_t slots) : slots_(slots) {
  XPUF_REQUIRE(slots > 0, "timer wheel needs at least one slot");
}

void TimerWheel::arm(std::uint64_t deadline, std::uint64_t key) {
  TimerEntry entry;
  entry.deadline = deadline;
  entry.key = key;
  entry.seq = next_seq_++;
  // Already-due deadlines are hashed at the collection cursor so the next
  // collect_due (which always sweeps the cursor slot) picks them up without
  // waiting a full rotation.
  const std::uint64_t slot_tick = std::max(deadline, last_collect_);
  slots_[static_cast<std::size_t>(slot_tick % slots_.size())].push_back(entry);
  ++armed_count_;
}

std::vector<TimerEntry> TimerWheel::collect_due(std::uint64_t now) {
  std::vector<TimerEntry> due;
  if (now < last_collect_) now = last_collect_;  // clocks are monotonic
  if (armed_count_ > 0) {
    // Sweep the cursor slot plus every slot a tick in (last_collect_, now]
    // can hash to; a gap of a full rotation or more means every slot.
    const std::uint64_t slot_count = slots_.size();
    const std::uint64_t span = std::min(now - last_collect_, slot_count);
    for (std::uint64_t i = 0; i <= span; ++i) {
      auto& bucket =
          slots_[static_cast<std::size_t>((last_collect_ + i) % slot_count)];
      for (std::size_t j = 0; j < bucket.size();) {
        if (bucket[j].deadline <= now) {
          due.push_back(bucket[j]);
          bucket[j] = bucket.back();
          bucket.pop_back();
          --armed_count_;
        } else {
          ++j;
        }
      }
    }
  }
  last_collect_ = now;
  std::sort(due.begin(), due.end(),
            [](const TimerEntry& a, const TimerEntry& b) {
              return a.deadline != b.deadline ? a.deadline < b.deadline
                                              : a.seq < b.seq;
            });
  return due;
}

bool TimerWheel::next_deadline(std::uint64_t& out) const {
  bool found = false;
  for (const auto& bucket : slots_) {
    for (const auto& entry : bucket) {
      if (!found || entry.deadline < out) {
        out = entry.deadline;
        found = true;
      }
    }
  }
  return found;
}

}  // namespace xpuf::net::async
