// Listener + bounded-accept policy.
//
// The Acceptor owns the listening socket and drains its backlog on readiness.
// Admission is bounded: the engine passes a sink that refuses connections
// beyond its connection cap, and every refused connection receives a typed
// busy NACK frame (device_id 0 — no session exists yet) before the socket is
// closed, counted in net.async.accept_overflow. Overload therefore degrades
// into explicit, client-visible backpressure — never a silent drop (the
// kernel backlog itself is sized by the listen() parameter).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/async/syscall.hpp"

namespace xpuf::net::async {

class Acceptor {
 public:
  /// Wraps an already-listening socket (from sys_listen_tcp_localhost or
  /// sys_listen_unix). `busy_retry_ticks` is advertised in overflow NACKs.
  Acceptor(Fd listen_fd, std::uint16_t busy_retry_ticks)
      : listen_fd_(std::move(listen_fd)), busy_retry_ticks_(busy_retry_ticks) {}

  bool valid() const { return listen_fd_.valid(); }
  int fd() const { return listen_fd_.get(); }

  /// Accepts until the backlog drains. `admit` takes ownership (moves from
  /// the reference) and returns true, or leaves the fd untouched and returns
  /// false (at capacity) — refused sockets get the busy NACK + close
  /// treatment. Returns the number of connections admitted.
  std::size_t drain(const std::function<bool(Fd&)>& admit);

  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t overflowed() const { return overflowed_; }

 private:
  void refuse(Fd fd);

  Fd listen_fd_;
  std::uint16_t busy_retry_ticks_;
  std::uint64_t accepted_ = 0;
  std::uint64_t overflowed_ = 0;
};

}  // namespace xpuf::net::async
