#include "net/async/service_engine.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace xpuf::net::async {

namespace {

// Timer-key tags in the top two bits; the payload identifies the client
// slot, device, or server connection.
constexpr std::uint64_t kTagMask = 3ull << 62;
constexpr std::uint64_t kClientTag = 1ull << 62;
constexpr std::uint64_t kTtlTag = 2ull << 62;
constexpr std::uint64_t kIdleTag = 3ull << 62;
constexpr std::uint32_t kNoDeadline = 0xffffffffu;

void conns_closed_add() {
  static Counter& conns_closed =
      MetricsRegistry::global().counter("net.async.connections_closed");
  conns_closed.add();
}

Histogram& latency_histogram() {
  static Histogram& h = MetricsRegistry::global().histogram(
      "net.async.session_latency_ms",
      {0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
       500.0, 1000.0, 5000.0});
  return h;
}

/// Same mixing as the lockstep finalize() — the two outcome fingerprints
/// must be comparable bit-for-bit.
void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

}  // namespace

struct AsyncServiceEngine::Shard {
  explicit Shard(puf::DatabaseConfig db_config) : db(db_config) {}

  puf::ServerDatabase db;
  std::map<std::uint64_t, puf::ServerModel> provisioned;
  std::map<std::uint64_t, ServerSessionHandler> handlers;
  /// Last TTL deadline armed per device (lazy-cancel: a fired timer re-arms
  /// off ttl_deadline() if the session moved).
  std::map<std::uint64_t, std::uint64_t> armed_ttl;
};

/// One device's client endpoint: socket, transport, protocol driver, and the
/// latency observer wiring.
struct AsyncServiceEngine::ClientConn final : public EventHandler,
                                             public SessionObserver {
  ClientConn(AsyncServiceEngine& engine_in, std::size_t index_in,
             const sim::XorPufChip& chip_in, const sim::Environment& env_in,
             Rng measure_rng_in, std::uint32_t auth_sessions_in,
             bool enroll_first_in, bool revoke_at_end_in)
      : engine(&engine_in),
        index(index_in),
        chip(&chip_in),
        env(env_in),
        measure_rng(measure_rng_in),
        auth_sessions(auth_sessions_in),
        enroll_first(enroll_first_in),
        revoke_at_end(revoke_at_end_in) {}

  /// Binds the (connect-initiated) socket and builds the protocol driver.
  void attach(Fd fd, const ClientPolicy& policy, bool already_connected) {
    transport = std::make_unique<SocketTransport>(std::move(fd));
    client = std::make_unique<DeviceClient>(*chip, env, measure_rng,
                                            *transport, *transport,
                                            auth_sessions, policy,
                                            enroll_first, revoke_at_end);
    client->set_observer(this);
    connected = already_connected;
  }

  void on_ready(bool readable, bool writable, bool hangup) override {
    engine->on_client_ready(index, readable, writable, hangup);
  }

  void on_session_opened(std::uint32_t, std::uint32_t round) override {
    open_tick = round;
  }
  void on_session_terminal(const SessionRecord&, std::uint32_t round) override {
    engine->observe_latency(round >= open_tick ? round - open_tick : 0);
  }

  AsyncServiceEngine* engine;
  std::size_t index;
  const sim::XorPufChip* chip;
  sim::Environment env;
  Rng measure_rng;
  std::uint32_t auth_sessions;
  bool enroll_first;
  bool revoke_at_end;

  std::unique_ptr<SocketTransport> transport;
  std::unique_ptr<DeviceClient> client;
  bool connected = false;
  bool counted_finished = false;
  std::uint32_t armed_deadline = kNoDeadline;
  std::uint32_t open_tick = 0;
};

/// One accepted server-side socket. Frames are demultiplexed to handlers by
/// the device_id they carry, so a connection is not bound to one device.
struct AsyncServiceEngine::ServerConn final : public EventHandler {
  ServerConn(AsyncServiceEngine& engine_in, std::uint64_t id_in, Fd fd)
      : engine(&engine_in), id(id_in), transport(std::move(fd)) {}

  void on_ready(bool readable, bool writable, bool hangup) override {
    engine->on_server_ready(id, readable, writable, hangup);
  }

  /// Routes ServerSessionHandler replies onto this connection, stamping the
  /// per-connection seq and endpoint stats.
  class Sink final : public ReplySink {
   public:
    Sink(ServerConn& conn, std::uint64_t device_id)
        : conn_(&conn), device_id_(device_id) {}

    void send(FrameType type, std::uint32_t session_id,
              std::vector<std::uint8_t> payload) override {
      Frame frame;
      frame.header.type = type;
      frame.header.device_id = device_id_;
      frame.header.session_id = session_id;
      frame.header.seq = conn_->seq++;
      frame.payload = std::move(payload);
      send_frame(conn_->transport, frame, conn_->stats);
    }

   private:
    ServerConn* conn_;
    std::uint64_t device_id_;
  };

  AsyncServiceEngine* engine;
  std::uint64_t id;
  SocketTransport transport;
  ChannelStats stats;
  std::uint32_t seq = 0;
  std::uint64_t last_activity = 0;
  bool closed = false;
};

struct AsyncServiceEngine::AcceptorHandler final : public EventHandler {
  explicit AcceptorHandler(AsyncServiceEngine& engine_in) : engine(&engine_in) {}
  void on_ready(bool, bool, bool) override { engine->on_acceptor_ready(); }
  AsyncServiceEngine* engine;
};

AsyncServiceEngine::AsyncServiceEngine(AsyncServiceConfig config)
    : config_(config),
      // Same family derivation as the lockstep ServiceEngine — this is what
      // makes issuance and measurement draws oracle-identical per device.
      issue_family_(Rng(config.seed ^ 0xfa'17'00'02).fork_base()),
      measure_family_(Rng(config.seed ^ 0xfa'17'00'03).fork_base()),
      clock_(config.tick_seconds) {
  XPUF_REQUIRE(config.shards >= 1, "the shard grid needs at least one shard");
  XPUF_REQUIRE(config.session_ttl_ticks >= 1, "session TTL must be >= 1 tick");
  XPUF_REQUIRE(config.request_queue_cap >= 1, "request queue needs capacity");
  XPUF_REQUIRE(config.serve_budget_per_poll >= 1, "serve budget must be >= 1");
  shards_.reserve(config.shards);
  for (std::uint32_t s = 0; s < config.shards; ++s)
    shards_.push_back(std::make_unique<Shard>(config.database));
}

AsyncServiceEngine::~AsyncServiceEngine() = default;

AsyncServiceEngine::Shard& AsyncServiceEngine::shard_of(
    std::uint64_t device_id) {
  return *shards_[static_cast<std::size_t>(device_id % config_.shards)];
}

ServerSessionHandler* AsyncServiceEngine::handler_of(std::uint64_t device_id) {
  auto& handlers = shard_of(device_id).handlers;
  auto it = handlers.find(device_id);
  return it == handlers.end() ? nullptr : &it->second;
}

void AsyncServiceEngine::provision(const sim::XorPufChip& chip,
                                   puf::ServerModel model,
                                   const sim::Environment& env,
                                   std::uint32_t auth_sessions,
                                   bool enroll_first, bool revoke_at_end) {
  const auto device_id = static_cast<std::uint64_t>(chip.id());
  XPUF_REQUIRE(device_index_.find(device_id) == device_index_.end(),
               "device provisioned twice");
  XPUF_REQUIRE(model.chip_id() == chip.id(),
               "enrolled model does not belong to this chip");
  Shard& shard = shard_of(device_id);
  if (enroll_first) {
    shard.provisioned.emplace(device_id, std::move(model));
  } else {
    shard.db.register_device(std::move(model));
  }
  shard.handlers.emplace(
      std::piecewise_construct, std::forward_as_tuple(device_id),
      std::forward_as_tuple(
          device_id, shard.db, shard.provisioned, issue_family_,
          ServerPolicy{config_.session_ttl_ticks, config_.busy_retry_ticks}));
  clients_.push_back(std::make_unique<ClientConn>(
      *this, clients_.size(), chip, env, measure_family_.stream(device_id),
      auth_sessions, enroll_first, revoke_at_end));
  device_index_.emplace(device_id,
                        static_cast<std::uint32_t>(clients_.size() - 1));
}

const std::vector<SessionRecord>& AsyncServiceEngine::device_records(
    std::uint64_t device_id) const {
  const auto it = device_index_.find(device_id);
  XPUF_REQUIRE(it != device_index_.end(), "unknown device id");
  const ClientConn& conn = *clients_[it->second];
  XPUF_REQUIRE(conn.client != nullptr, "device_records before run()");
  return conn.client->records();
}

std::vector<std::uint64_t> AsyncServiceEngine::device_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(device_index_.size());
  for (const auto& entry : device_index_) ids.push_back(entry.first);
  return ids;
}

bool AsyncServiceEngine::setup_listener() {
  Fd listen_fd;
  if (config_.unix_socket) {
    listen_fd = sys_listen_unix(config_.unix_path, 4096);
  } else {
    port_ = 0;  // ephemeral; sys_listen writes the kernel's pick back
    listen_fd = sys_listen_tcp_localhost(port_, 4096);
  }
  if (!listen_fd.valid()) return false;
  acceptor_ = std::make_unique<Acceptor>(std::move(listen_fd),
                                         config_.busy_retry_ticks);
  acceptor_handler_ = std::make_unique<AcceptorHandler>(*this);
  return loop_->add(acceptor_->fd(), acceptor_handler_.get());
}

void AsyncServiceEngine::start_connects() {
  std::size_t started = 0;
  while (next_connect_ < clients_.size() && started < config_.connect_batch) {
    ClientConn& conn = *clients_[next_connect_++];
    ++started;
    std::pair<Fd, IoStatus> c =
        config_.unix_socket ? sys_connect_unix(config_.unix_path)
                            : sys_connect_tcp_localhost(port_);
    if (c.second == IoStatus::kError) {
      connect_failures_.push_back("device " + std::to_string(conn.chip->id()) +
                                  ": connect failed");
      conn.counted_finished = true;  // never participates; don't stall
      ++finished_clients_;
      continue;
    }
    conn.attach(std::move(c.first),
                ClientPolicy{config_.client_timeout_ticks,
                             config_.client_max_retries},
                c.second == IoStatus::kOk);
    if (!loop_->add(conn.transport->fd(), &conn)) {
      connect_failures_.push_back("device " + std::to_string(conn.chip->id()) +
                                  ": epoll registration failed");
      conn.counted_finished = true;
      ++finished_clients_;
      continue;
    }
    // Unix connects complete synchronously; kick the first session now
    // rather than waiting for the initial writable edge.
    if (conn.connected) step_client(conn.index);
  }
}

void AsyncServiceEngine::on_acceptor_ready() {
  acceptor_->drain([this](Fd& fd) { return admit(fd); });
}

bool AsyncServiceEngine::admit(Fd& fd) {
  if (live_server_conns_ >= config_.max_connections) return false;
  const std::uint64_t id = next_conn_id_++;
  auto conn = std::make_unique<ServerConn>(*this, id, std::move(fd));
  conn->last_activity = clock_.ticks();
  if (!loop_->add(conn->transport.fd(), conn.get())) {
    // epoll rejected the fd: the connection is unusable, so it is counted
    // as accepted-then-closed (the ServerConn destructor closes the fd).
    conns_closed_add();
    return true;
  }
  if (config_.idle_conn_ttl_ticks < (1u << 30))
    loop_->arm_timer(conn->last_activity + config_.idle_conn_ttl_ticks,
                     kIdleTag | id);
  server_conns_.emplace(id, std::move(conn));
  ++live_server_conns_;
  return true;
}

void AsyncServiceEngine::on_client_ready(std::size_t index, bool readable,
                                         bool writable, bool hangup) {
  ClientConn& conn = *clients_[index];
  if (!conn.transport) return;
  if (!conn.connected && (writable || hangup)) {
    const int err = sys_socket_error(conn.transport->fd_handle());
    if (err != 0) {
      connect_failures_.push_back("device " + std::to_string(conn.chip->id()) +
                                  ": deferred connect failed");
      if (!conn.counted_finished) {
        conn.counted_finished = true;
        ++finished_clients_;
      }
      loop_->remove(conn.transport->fd());
      return;
    }
    conn.connected = true;
  }
  if (readable || hangup) conn.transport->pump_reads();
  if (writable) conn.transport->flush_writes();
  if (conn.connected) step_client(index);
}

void AsyncServiceEngine::step_client(std::size_t index) {
  ClientConn& conn = *clients_[index];
  if (!conn.client) return;
  if (conn.transport->failed()) {
    // Surfaced as a violation in finalize(); counted finished so a broken
    // transport cannot stall quiescence for the whole fleet.
    if (!conn.counted_finished) {
      conn.counted_finished = true;
      ++finished_clients_;
    }
    return;
  }
  conn.client->step(static_cast<std::uint32_t>(clock_.ticks()));
  if (conn.client->finished()) {
    if (!conn.counted_finished) {
      conn.counted_finished = true;
      ++finished_clients_;
    }
    return;
  }
  arm_client_timer(index);
}

void AsyncServiceEngine::arm_client_timer(std::size_t index) {
  ClientConn& conn = *clients_[index];
  const std::uint32_t deadline = conn.client->deadline_round();
  // Lazy cancellation: stale wheel entries fire harmlessly (step() checks
  // the authoritative deadline); only a CHANGED deadline needs a new entry.
  if (deadline == conn.armed_deadline) return;
  conn.armed_deadline = deadline;
  loop_->arm_timer(deadline, kClientTag | static_cast<std::uint64_t>(index));
}

void AsyncServiceEngine::on_server_ready(std::uint64_t conn_id, bool readable,
                                         bool writable, bool hangup) {
  auto it = server_conns_.find(conn_id);
  if (it == server_conns_.end() || it->second->closed) return;
  ServerConn& conn = *it->second;
  conn.last_activity = clock_.ticks();
  if (readable || hangup) {
    const PumpStatus pump = conn.transport.pump_reads();
    while (auto frame = recv_frame(conn.transport, conn.stats))
      enqueue_request(conn, std::move(*frame));
    if (pump == PumpStatus::kPeerClosed && conn.transport.decoder().empty()) {
      close_server_conn(conn_id, /*idle_expiry=*/false);
      return;
    }
  }
  if (writable) conn.transport.flush_writes();
}

void AsyncServiceEngine::enqueue_request(ServerConn& conn, Frame frame) {
  if (request_queue_.size() >= config_.request_queue_cap) {
    // Typed backpressure: the request is answered NOW with a retryable busy
    // NACK instead of being dropped; the client's deadline path retries.
    ++request_overflow_;
    static Counter& request_overflow =
        MetricsRegistry::global().counter("net.async.request_overflow");
    request_overflow.add();
    ServerConn::Sink sink(conn, frame.header.device_id);
    NackPayload nack;
    nack.reason = NackReason::kBusy;
    nack.retry_after_rounds = config_.busy_retry_ticks;
    sink.send(FrameType::kNack, frame.header.session_id, encode_nack(nack));
    return;
  }
  QueuedRequest req;
  req.conn_id = conn.id;
  req.frame = std::move(frame);
  request_queue_.push_back(std::move(req));
}

void AsyncServiceEngine::serve_queue() {
  const std::uint64_t now = clock_.ticks();
  std::size_t served = 0;
  while (!request_queue_.empty() && served < config_.serve_budget_per_poll) {
    QueuedRequest req = std::move(request_queue_.front());
    request_queue_.pop_front();
    ++served;
    auto it = server_conns_.find(req.conn_id);
    if (it == server_conns_.end() || it->second->closed) {
      ++stale_conn_frames_;  // connection died while the request queued
      continue;
    }
    ServerConn& conn = *it->second;
    const std::uint64_t device_id = req.frame.header.device_id;
    ServerSessionHandler* handler = handler_of(device_id);
    ServerConn::Sink sink(conn, device_id);
    if (handler == nullptr) {
      ++unknown_device_nacks_;
      NackPayload nack;
      nack.reason = NackReason::kUnknownDevice;
      nack.retry_after_rounds = 0;  // terminal
      sink.send(FrameType::kNack, req.frame.header.session_id,
                encode_nack(nack));
      continue;
    }
    handler->expire_if_due(now);
    handler->handle(req.frame, now, sink);
    arm_ttl_timer(device_id);
  }
}

void AsyncServiceEngine::arm_ttl_timer(std::uint64_t device_id) {
  ServerSessionHandler* handler = handler_of(device_id);
  if (handler == nullptr) return;
  const auto deadline = handler->ttl_deadline();
  if (!deadline) return;
  auto& armed = shard_of(device_id).armed_ttl;
  auto it = armed.find(device_id);
  if (it != armed.end() && it->second == *deadline) return;
  armed[device_id] = *deadline;
  loop_->arm_timer(*deadline, kTtlTag | device_id);
}

void AsyncServiceEngine::on_timer(std::uint64_t key, std::uint64_t now) {
  const std::uint64_t tag = key & kTagMask;
  const std::uint64_t payload = key & ~kTagMask;
  if (tag == kClientTag) {
    const auto index = static_cast<std::size_t>(payload);
    if (index < clients_.size() && clients_[index]->connected)
      step_client(index);
    return;
  }
  if (tag == kTtlTag) {
    ServerSessionHandler* handler = handler_of(payload);
    if (handler == nullptr) return;
    shard_of(payload).armed_ttl.erase(payload);
    handler->expire_if_due(now);
    arm_ttl_timer(payload);  // session may have moved on — lazy re-arm
    return;
  }
  if (tag == kIdleTag) {
    auto it = server_conns_.find(payload);
    if (it == server_conns_.end() || it->second->closed) return;
    ServerConn& conn = *it->second;
    const std::uint64_t expiry =
        conn.last_activity + config_.idle_conn_ttl_ticks;
    if (now >= expiry && conn.transport.idle())
      close_server_conn(payload, /*idle_expiry=*/true);
    else
      loop_->arm_timer(expiry, kIdleTag | payload);
  }
}

void AsyncServiceEngine::close_server_conn(std::uint64_t conn_id,
                                           bool idle_expiry) {
  auto it = server_conns_.find(conn_id);
  if (it == server_conns_.end() || it->second->closed) return;
  ServerConn& conn = *it->second;
  conn.closed = true;
  if (live_server_conns_ > 0) --live_server_conns_;
  loop_->remove(conn.transport.fd());
  if (idle_expiry) ++idle_conns_closed_;
  conns_closed_add();
  // The Fd stays owned by the transport; it closes when the map entry is
  // destroyed at engine teardown, after finalize() has read the stats.
}

bool AsyncServiceEngine::quiescent() const {
  if (finished_clients_ < clients_.size()) return false;
  if (!request_queue_.empty()) return false;
  for (const auto& conn : clients_)
    if (conn->transport && !conn->transport->failed() &&
        (!conn->transport->idle() || conn->transport->wants_write()))
      return false;
  for (const auto& entry : server_conns_) {
    const ServerConn& conn = *entry.second;
    if (!conn.closed && (!conn.transport.idle() || conn.transport.wants_write()))
      return false;
  }
  return true;
}

void AsyncServiceEngine::observe_latency(std::uint64_t ticks_elapsed) {
  latency_histogram().observe(static_cast<double>(ticks_elapsed) *
                              config_.tick_seconds * 1e3);
}

AsyncServiceReport AsyncServiceEngine::run() {
  XPUF_TRACE_SPAN("net.async_service_run");
  XPUF_REQUIRE(!device_index_.empty(),
               "run() needs at least one provisioned device");
  loop_ = std::make_unique<EventLoop>(clock_);
  XPUF_REQUIRE(loop_->valid(), "epoll_create failed");
  XPUF_REQUIRE(setup_listener(), "listener setup failed");
  sys_raise_nofile(2 * clients_.size() + 64);
  loop_->set_timer_handler(
      [this](std::uint64_t key, std::uint64_t now) { on_timer(key, now); });

  auto& registry = MetricsRegistry::global();
  const std::uint64_t base_read =
      registry.counter("net.async.bytes_read").total();
  const std::uint64_t base_written =
      registry.counter("net.async.bytes_written").total();

  bool clean = false;
  for (;;) {
    start_connects();
    const bool busy =
        !request_queue_.empty() || next_connect_ < clients_.size();
    loop_->poll(busy ? 0 : 10);
    serve_queue();
    if (quiescent()) {
      const std::uint64_t r =
          registry.counter("net.async.bytes_read").total() - base_read;
      const std::uint64_t w =
          registry.counter("net.async.bytes_written").total() - base_written;
      // Bytes still in kernel buffers arrive as later readable edges; only
      // the balanced state is true quiescence.
      if (r == w) {
        clean = true;
        break;
      }
    }
    if (clock_.ticks() >= config_.max_ticks) break;
  }

  // Teardown: every surviving descriptor leaves the loop and is counted.
  for (const auto& conn : clients_)
    if (conn->transport) {
      loop_->remove(conn->transport->fd());
      conns_closed_add();
    }
  for (const auto& entry : server_conns_)
    if (!entry.second->closed)
      close_server_conn(entry.first, /*idle_expiry=*/false);
  if (acceptor_) loop_->remove(acceptor_->fd());

  AsyncServiceReport report = finalize(clean);
  report.bytes_read =
      registry.counter("net.async.bytes_read").total() - base_read;
  report.bytes_written =
      registry.counter("net.async.bytes_written").total() - base_written;
  if (clean && report.bytes_read != report.bytes_written)
    report.violations.push_back(
        "byte conservation broken: read " + std::to_string(report.bytes_read) +
        " != written " + std::to_string(report.bytes_written));
  report.ticks = clock_.ticks();
  return report;
}

AsyncServiceReport AsyncServiceEngine::finalize(bool all_finished) {
  AsyncServiceReport report;
  report.all_finished = all_finished;
  report.devices = device_index_.size();
  report.violations = connect_failures_;
  if (!all_finished)
    report.violations.push_back("tick budget exhausted with live sessions");

  std::uint64_t outcome_h = 0xc0ffee;
  std::uint64_t client_sent = 0, client_delivered = 0, client_corrupt = 0;
  for (const auto& [device_id, slot] : device_index_) {
    const ClientConn& conn = *clients_[slot];
    if (!conn.client) continue;  // connect failed; already a violation
    for (const SessionRecord& rec : conn.client->records()) {
      report.sessions_total += 1;
      report.retries += rec.retries;
      switch (rec.terminal) {
        case SessionPhase::kApproved: report.approved += 1; break;
        case SessionPhase::kDenied: report.denied += 1; break;
        case SessionPhase::kRejected: report.rejected += 1; break;
        case SessionPhase::kFailed: report.failed += 1; break;
        default:
          report.violations.push_back(
              "device " + std::to_string(device_id) + " session " +
              std::to_string(rec.session_id) + " has no terminal state");
      }
      // Transport-invariant digest — identical formula to the lockstep
      // oracle's outcome_fingerprint (service.cpp).
      mix(outcome_h, device_id);
      mix(outcome_h, rec.session_id);
      mix(outcome_h, static_cast<std::uint64_t>(rec.opened_with));
      mix(outcome_h, static_cast<std::uint64_t>(rec.terminal));
      mix(outcome_h, rec.mismatches);
      mix(outcome_h, rec.challenges_used);
    }
    if (!conn.client->finished())
      report.violations.push_back("device " + std::to_string(device_id) +
                                  " did not finish its session plan");
    if (conn.transport && conn.transport->failed())
      report.violations.push_back("device " + std::to_string(device_id) +
                                  ": client transport failed");
    const ChannelStats& stats = conn.client->channel_stats();
    client_sent += stats.sent;
    client_delivered += stats.delivered;
    client_corrupt += stats.corrupt;
  }
  report.outcome_fingerprint = outcome_h;

  std::uint64_t server_sent = 0, server_delivered = 0, server_corrupt = 0;
  for (const auto& entry : server_conns_) {
    const ServerConn& conn = *entry.second;
    server_sent += conn.stats.sent;
    server_delivered += conn.stats.delivered;
    server_corrupt += conn.stats.corrupt;
    if (conn.transport.failed())
      report.violations.push_back("server connection " +
                                  std::to_string(conn.id) +
                                  ": transport failed");
  }
  report.frames_sent = client_sent + server_sent;
  report.frames_delivered = client_delivered + server_delivered;
  report.frames_corrupt = client_corrupt + server_corrupt;
  // Frame conservation on a reliable wire: every sent frame is delivered (or
  // surfaced corrupt) exactly once the run is quiescent.
  if (all_finished) {
    if (client_sent != server_delivered + server_corrupt)
      report.violations.push_back("uplink frame conservation broken");
    if (server_sent != client_delivered + client_corrupt)
      report.violations.push_back("downlink frame conservation broken");
  }

  for (const auto& shard : shards_)
    for (const auto& entry : shard->handlers) {
      const ServerLedger& ledger = entry.second.ledger();
      report.nacks_sent += ledger.nacks_sent;
      report.busy_nacks += ledger.busy_nacks;
      report.sessions_expired += ledger.sessions_expired;
      report.enroll_activated += ledger.enroll_activated;
      report.revocations += ledger.revocations;
      report.batches_issued += ledger.batches_issued;
    }
  report.connections_accepted = acceptor_ ? acceptor_->accepted() : 0;
  report.accept_overflow = acceptor_ ? acceptor_->overflowed() : 0;
  report.request_overflow = request_overflow_;
  report.nacks_sent += unknown_device_nacks_ + request_overflow_;
  report.busy_nacks += request_overflow_ + report.accept_overflow;
  report.idle_conns_closed = idle_conns_closed_;

  MetricsRegistry::global()
      .gauge("net.async.connections")
      .set(static_cast<double>(server_conns_.size()));
  return report;
}

}  // namespace xpuf::net::async
