// Event-loop authentication service engine over real sockets.
//
// AsyncServiceEngine serves the SAME protocol as the lockstep ServiceEngine
// — same DeviceClient state machine, same ServerSessionHandler decisions,
// same per-(device, session) issuance streams and per-device measurement
// streams — but multiplexes the whole fleet over nonblocking TCP (or
// Unix-domain) sockets on one epoll event loop, with a timer wheel driving
// client retransmit deadlines, server session TTLs, and idle-connection
// expiry.
//
// Reconciliation contract (see DESIGN.md §Async socket service): with the
// same seed and workload, per-device session OUTCOMES are a pure function of
// (seed, plan) — issuance is (device, session)-keyed, measurement noise is
// consumed per device in session order, TCP preserves per-connection order,
// and busy NACKs only add retries, never change terminals. The lockstep
// engine run with FaultProfile::none() is therefore a bit-exact oracle for
// outcome_fingerprint and per-device records, while wall-clock-dependent
// quantities (retry counts, latency histograms) are reported but excluded
// from the digest.
//
// Backpressure is typed end to end: the accept queue is bounded by
// max_connections (overflow -> busy NACK + close, counted), the request
// queue is bounded by request_queue_cap (overflow -> busy NACK on the
// connection, counted), and per-connection write buffers are capped
// (overflow -> transport failed, counted). Nothing is ever silently dropped.
//
// Single-threaded: one loop, one lane. Determinism of outcomes comes from
// per-device purity, not scheduling.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/async/acceptor.hpp"
#include "net/async/clock.hpp"
#include "net/async/event_loop.hpp"
#include "net/async/socket_transport.hpp"
#include "net/server_session.hpp"
#include "net/session.hpp"
#include "puf/database.hpp"
#include "sim/chip.hpp"

namespace xpuf::net::async {

struct AsyncServiceConfig {
  /// Unix-domain sockets instead of localhost TCP.
  bool unix_socket = false;
  std::string unix_path = "xpuf_async.sock";

  /// Server database shards (device_id % shards), same grid as lockstep.
  std::uint32_t shards = 8;

  /// Admission caps — the typed-backpressure surface.
  std::size_t max_connections = 4096;   ///< accept overflow -> busy NACK
  std::size_t request_queue_cap = 4096; ///< enqueue overflow -> busy NACK
  std::size_t serve_budget_per_poll = 1024;

  /// Clock domain: ticks of `tick_seconds` wall time (default 1 ms/tick).
  /// All TTL/timeout knobs below are in ticks, NOT lockstep rounds — see
  /// ClientPolicy (net/session.hpp) for why the domains need different sizes.
  double tick_seconds = 1e-3;
  std::uint64_t session_ttl_ticks = 2000;
  std::uint16_t busy_retry_ticks = 2;
  std::uint32_t client_timeout_ticks = 400;
  std::uint32_t client_max_retries = 6;
  /// Server connections idle longer than this are closed (typed, counted).
  /// Effectively disabled by default — benches keep connections open for the
  /// whole run so the concurrency floor is honest.
  std::uint64_t idle_conn_ttl_ticks = 1u << 30;
  /// Run budget; hitting it with live sessions is reported as a violation.
  std::uint64_t max_ticks = 120000;

  /// New client sockets initiated per loop iteration (connect-flood shaping).
  std::size_t connect_batch = 128;

  std::uint64_t seed = 2017;
  puf::DatabaseConfig database;
};

/// Aggregates re-derived from per-connection ledgers by finalize(); the
/// transport-variant fields (retries, busy NACK counts, byte totals) sit
/// outside outcome_fingerprint.
struct AsyncServiceReport {
  std::uint64_t ticks = 0;  ///< clock ticks the run consumed
  bool all_finished = false;

  std::uint64_t devices = 0;
  std::uint64_t sessions_total = 0;
  std::uint64_t approved = 0;
  std::uint64_t denied = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;

  std::uint64_t frames_sent = 0;  ///< both endpoints, client + server stats
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_corrupt = 0;

  std::uint64_t connections_accepted = 0;
  std::uint64_t accept_overflow = 0;   ///< busy-NACKed at the listener
  std::uint64_t request_overflow = 0;  ///< busy-NACKed at the request queue
  std::uint64_t busy_nacks = 0;        ///< all busy NACKs (handler + queues)
  std::uint64_t nacks_sent = 0;
  std::uint64_t sessions_expired = 0;
  std::uint64_t enroll_activated = 0;
  std::uint64_t revocations = 0;
  /// Challenge batches issued, summed from the per-handler ledgers; must
  /// equal the global db.issue_requests counter (pooled or live issuance).
  std::uint64_t batches_issued = 0;
  std::uint64_t idle_conns_closed = 0;

  /// Byte-conservation audit: syscall-layer deltas over the run; equal at
  /// quiescence on a loopback transport.
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  std::vector<std::string> violations;
  /// Same digest formula as ServiceReport::outcome_fingerprint — compare
  /// directly against the lockstep oracle's value.
  std::uint64_t outcome_fingerprint = 0;

  bool reconciled() const { return all_finished && violations.empty(); }
};

class AsyncServiceEngine {
 public:
  explicit AsyncServiceEngine(AsyncServiceConfig config);
  ~AsyncServiceEngine();

  AsyncServiceEngine(const AsyncServiceEngine&) = delete;
  AsyncServiceEngine& operator=(const AsyncServiceEngine&) = delete;

  const AsyncServiceConfig& config() const { return config_; }
  std::uint64_t device_count() const { return device_index_.size(); }

  /// Same contract as ServiceEngine::provision — chip + enrolled model +
  /// scripted plan; must be called before run(). The chip must outlive the
  /// engine.
  void provision(const sim::XorPufChip& chip, puf::ServerModel model,
                 const sim::Environment& env, std::uint32_t auth_sessions,
                 bool enroll_first = true, bool revoke_at_end = false);

  /// Binds the listener, connects the fleet, and drives the event loop until
  /// every client finished and the wire is quiescent (or max_ticks), then
  /// reconciles ledgers.
  AsyncServiceReport run();

  /// Per-session outcome ledger of one device (valid after run()).
  const std::vector<SessionRecord>& device_records(std::uint64_t device_id) const;
  /// Provisioned ids in ascending order — the oracle-reconciliation walk.
  std::vector<std::uint64_t> device_ids() const;

 private:
  struct Shard;
  struct ClientConn;
  struct ServerConn;
  struct AcceptorHandler;
  struct QueuedRequest {
    std::uint64_t conn_id = 0;
    Frame frame;
  };

  Shard& shard_of(std::uint64_t device_id);
  ServerSessionHandler* handler_of(std::uint64_t device_id);
  bool setup_listener();
  void start_connects();
  void on_acceptor_ready();
  bool admit(Fd& fd);
  void on_client_ready(std::size_t index, bool readable, bool writable,
                       bool hangup);
  void on_server_ready(std::uint64_t conn_id, bool readable, bool writable,
                       bool hangup);
  void step_client(std::size_t index);
  void enqueue_request(ServerConn& conn, Frame frame);
  void serve_queue();
  void on_timer(std::uint64_t key, std::uint64_t now);
  void arm_client_timer(std::size_t index);
  void arm_ttl_timer(std::uint64_t device_id);
  void close_server_conn(std::uint64_t conn_id, bool idle_expiry);
  bool quiescent() const;
  void observe_latency(std::uint64_t ticks_elapsed);
  AsyncServiceReport finalize(bool all_finished);

  AsyncServiceConfig config_;
  StreamFamily issue_family_;
  StreamFamily measure_family_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::uint64_t, std::uint32_t> device_index_;  ///< id -> client slot

  WallClock clock_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<Acceptor> acceptor_;
  std::unique_ptr<EventHandler> acceptor_handler_;
  std::uint16_t port_ = 0;

  std::vector<std::unique_ptr<ClientConn>> clients_;
  std::size_t next_connect_ = 0;   ///< first client not yet initiated
  std::size_t finished_clients_ = 0;

  std::map<std::uint64_t, std::unique_ptr<ServerConn>> server_conns_;
  std::size_t live_server_conns_ = 0;
  std::uint64_t next_conn_id_ = 0;
  std::deque<QueuedRequest> request_queue_;

  // Engine-level ledger (plain ints: one lane).
  std::uint64_t request_overflow_ = 0;
  std::uint64_t unknown_device_nacks_ = 0;
  std::uint64_t idle_conns_closed_ = 0;
  std::uint64_t stale_conn_frames_ = 0;
  std::vector<std::string> connect_failures_;
};

}  // namespace xpuf::net::async
