// Hashed timer wheel for event-loop deadlines.
//
// The engine arms thousands of coarse deadlines (client retransmits, session
// TTLs, idle-connection expiry) and cancels/re-arms them constantly as
// traffic flows. A wheel makes arm O(1): slot = deadline % slots, each slot a
// bucket of entries. collect_due(now) walks only the slots that passed since
// the previous collection (or every slot once the gap spans a full
// rotation), extracts entries whose deadline is due, and returns them sorted
// by (deadline, arm order) — a deterministic firing order regardless of
// bucket hashing, which the ManualClock tests rely on.
//
// Cancellation is lazy by design: the engine re-checks the authoritative
// deadline when a timer fires and simply re-arms if it moved (see
// DESIGN.md §Async socket service), so the wheel never needs a handle map.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xpuf::net::async {

struct TimerEntry {
  std::uint64_t deadline = 0;  ///< tick at which the timer is due
  std::uint64_t key = 0;       ///< opaque engine key (connection, device, ...)
  std::uint64_t seq = 0;       ///< arm order, breaks deadline ties
};

class TimerWheel {
 public:
  explicit TimerWheel(std::size_t slots = 256);

  /// Arms one deadline. Deadlines already at/before the last collect time
  /// fire on the next collect_due call.
  void arm(std::uint64_t deadline, std::uint64_t key);

  /// Extracts every entry with deadline <= now, sorted by (deadline, seq).
  std::vector<TimerEntry> collect_due(std::uint64_t now);

  /// Earliest armed deadline, or nullopt-like sentinel (returns false) —
  /// bounds the poll timeout.
  bool next_deadline(std::uint64_t& out) const;

  bool armed() const { return armed_count_ > 0; }
  std::size_t size() const { return armed_count_; }

 private:
  std::vector<std::vector<TimerEntry>> slots_;
  std::size_t armed_count_ = 0;
  std::uint64_t last_collect_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace xpuf::net::async
