// Dedicated syscall wrappers of the async socket subsystem.
//
// Every raw socket/epoll syscall and every errno inspection in the tree is
// confined to syscall.cpp (machine-checked by the xpuf_lint `raw-syscall`
// rule): the rest of net/async/ programs against these typed wrappers, which
// retry EINTR internally and fold the EAGAIN/EWOULDBLOCK and orderly-EOF
// cases into the IoStatus enum — so callers never branch on errno and can
// never forget the partial-read/partial-write cases (IoResult::bytes is
// authoritative, not the requested length).
//
// Accounting: sys_read/sys_write count every byte moved into the global
// net.async.bytes_read / net.async.bytes_written counters. On localhost, at
// quiescence, the two totals must be equal — the byte-conservation audit the
// socket bench enforces.
//
// All sockets are created nonblocking + close-on-exec. Fd is the RAII owner;
// descriptors never leak on error paths (the GCC -fanalyzer CI job sweeps
// this TU).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xpuf::net::async {

/// RAII file descriptor. Movable, not copyable; close is best-effort (a
/// failed close on an already-broken socket is not recoverable anyway).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

enum class IoStatus : std::uint8_t {
  kOk = 0,      ///< made progress (see IoResult::bytes)
  kWouldBlock,  ///< EAGAIN/EWOULDBLOCK/EINPROGRESS — wait for readiness
  kEof,         ///< orderly peer shutdown (read returned 0)
  kError,       ///< anything else; IoResult::error carries the errno value
};

const char* to_string(IoStatus status);

struct IoResult {
  IoStatus status = IoStatus::kError;
  std::size_t bytes = 0;  ///< bytes actually moved (may be < requested)
  int error = 0;          ///< errno value when status == kError, else 0
};

// --- socket construction ----------------------------------------------------

/// Nonblocking localhost TCP listener. `port` 0 binds an ephemeral port; the
/// actual bound port is written back. Invalid Fd on failure.
Fd sys_listen_tcp_localhost(std::uint16_t& port, int backlog);

/// Nonblocking Unix-domain stream listener at `path` (unlinked first).
Fd sys_listen_unix(const std::string& path, int backlog);

/// Nonblocking TCP socket with a connect to 127.0.0.1:`port` already
/// initiated. status kOk = connected, kWouldBlock = in progress (wait for
/// writability, then check sys_socket_error), kError = failed outright.
std::pair<Fd, IoStatus> sys_connect_tcp_localhost(std::uint16_t port);

/// Same for a Unix-domain stream socket.
std::pair<Fd, IoStatus> sys_connect_unix(const std::string& path);

/// Nonblocking connected Unix stream pair (tests drive transports over this
/// without a listener).
bool sys_socketpair(Fd& a, Fd& b);

/// Pending SO_ERROR of a socket (0 when the deferred connect succeeded).
int sys_socket_error(const Fd& fd);

// --- data plane -------------------------------------------------------------

/// One read(2) attempt, EINTR retried. kOk with bytes > 0, kEof on orderly
/// shutdown, kWouldBlock when drained. Counts net.async.bytes_read.
IoResult sys_read(const Fd& fd, std::uint8_t* buf, std::size_t n);

/// One write(2) attempt, EINTR retried; bytes may be short of n (caller
/// keeps the tail buffered). Counts net.async.bytes_written.
IoResult sys_write(const Fd& fd, const std::uint8_t* buf, std::size_t n);

/// One accept(2); kOk carries the nonblocking connection fd, kWouldBlock
/// means the backlog is drained.
struct AcceptResult {
  Fd fd;
  IoStatus status = IoStatus::kError;
};
AcceptResult sys_accept(const Fd& listen_fd);

// --- epoll ------------------------------------------------------------------

/// Readiness of one registered key, folded out of the raw epoll event mask.
struct ReadyEvent {
  std::uint64_t key = 0;
  bool readable = false;
  bool writable = false;
  bool hangup = false;  ///< EPOLLHUP/EPOLLERR/EPOLLRDHUP — drain then close
};

Fd sys_epoll_create();

/// Registers `fd` edge-triggered for read+write readiness under `key`.
bool sys_epoll_add(const Fd& epoll_fd, int fd, std::uint64_t key);
bool sys_epoll_del(const Fd& epoll_fd, int fd);

/// Waits up to timeout_ms (0 = poll, EINTR retried) and appends ready
/// events to `out`. Returns the number appended.
std::size_t sys_epoll_wait(const Fd& epoll_fd, int timeout_ms,
                           std::vector<ReadyEvent>& out);

// --- process limits ---------------------------------------------------------

/// Best-effort RLIMIT_NOFILE raise toward `want` descriptors (capped at the
/// hard limit). Returns the resulting soft limit — callers decide whether
/// the fleet fits.
std::size_t sys_raise_nofile(std::size_t want);

}  // namespace xpuf::net::async
