// The ONLY translation unit in the tree allowed to touch raw socket/epoll
// syscalls and errno (xpuf_lint rule `raw-syscall`). Everything here retries
// EINTR, maps EAGAIN-family errnos to IoStatus::kWouldBlock, and returns
// typed results — callers never see errno.
#include "net/async/syscall.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/metrics.hpp"

namespace xpuf::net::async {

namespace {

bool would_block(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == EINPROGRESS;
}

Fd make_stream_socket(int domain) {
  const int fd =
      ::socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  return Fd(fd);
}

sockaddr_in localhost_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

bool unix_addr(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return false;
  addr = sockaddr_un{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

void Fd::close() {
  if (fd_ >= 0) {
    // EINTR on close is unrecoverable by retry on Linux (the fd is freed
    // regardless); best effort is the correct policy.
    ::close(fd_);
    fd_ = -1;
  }
}

const char* to_string(IoStatus status) {
  switch (status) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kWouldBlock: return "would_block";
    case IoStatus::kEof: return "eof";
    case IoStatus::kError: return "error";
  }
  return "?";
}

Fd sys_listen_tcp_localhost(std::uint16_t& port, int backlog) {
  Fd fd = make_stream_socket(AF_INET);
  if (!fd.valid()) return Fd();
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = localhost_addr(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    return Fd();
  if (::listen(fd.get(), backlog) != 0) return Fd();
  // Report the kernel-chosen port back for ephemeral binds.
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    return Fd();
  port = ntohs(bound.sin_port);
  return fd;
}

Fd sys_listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  if (!unix_addr(path, addr)) return Fd();
  ::unlink(path.c_str());  // stale socket file from a previous run
  Fd fd = make_stream_socket(AF_UNIX);
  if (!fd.valid()) return Fd();
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    return Fd();
  if (::listen(fd.get(), backlog) != 0) return Fd();
  return fd;
}

std::pair<Fd, IoStatus> sys_connect_tcp_localhost(std::uint16_t port) {
  Fd fd = make_stream_socket(AF_INET);
  if (!fd.valid()) return {Fd(), IoStatus::kError};
  const sockaddr_in addr = localhost_addr(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) == 0)
    return {std::move(fd), IoStatus::kOk};
  if (would_block(errno)) return {std::move(fd), IoStatus::kWouldBlock};
  return {Fd(), IoStatus::kError};
}

std::pair<Fd, IoStatus> sys_connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (!unix_addr(path, addr)) return {Fd(), IoStatus::kError};
  Fd fd = make_stream_socket(AF_UNIX);
  if (!fd.valid()) return {Fd(), IoStatus::kError};
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) == 0)
    return {std::move(fd), IoStatus::kOk};
  if (would_block(errno)) return {std::move(fd), IoStatus::kWouldBlock};
  return {Fd(), IoStatus::kError};
}

bool sys_socketpair(Fd& a, Fd& b) {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0,
                   fds) != 0)
    return false;
  a = Fd(fds[0]);
  b = Fd(fds[1]);
  return true;
}

int sys_socket_error(const Fd& fd) {
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0)
    return errno;
  return err;
}

IoResult sys_read(const Fd& fd, std::uint8_t* buf, std::size_t n) {
  // Byte-conservation ledger: every byte written on one end of a localhost
  // socket is eventually read on the other, so at quiescence the two totals
  // must match — the audit bench_service_load --transport socket enforces.
  static Counter& bytes_read_total =
      MetricsRegistry::global().counter("net.async.bytes_read");
  for (;;) {
    const ssize_t got = ::read(fd.get(), buf, n);
    if (got > 0) {
      const auto bytes = static_cast<std::size_t>(got);
      bytes_read_total.add(bytes);
      return {IoStatus::kOk, bytes, 0};
    }
    if (got == 0) return {IoStatus::kEof, 0, 0};
    if (errno == EINTR) continue;
    if (would_block(errno)) return {IoStatus::kWouldBlock, 0, 0};
    return {IoStatus::kError, 0, errno};
  }
}

IoResult sys_write(const Fd& fd, const std::uint8_t* buf, std::size_t n) {
  static Counter& bytes_written_total =
      MetricsRegistry::global().counter("net.async.bytes_written");
  for (;;) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE, not
    // kill the process with SIGPIPE.
    const ssize_t put = ::send(fd.get(), buf, n, MSG_NOSIGNAL);
    if (put >= 0) {
      const auto bytes = static_cast<std::size_t>(put);
      bytes_written_total.add(bytes);
      return {IoStatus::kOk, bytes, 0};
    }
    if (errno == EINTR) continue;
    if (would_block(errno)) return {IoStatus::kWouldBlock, 0, 0};
    return {IoStatus::kError, 0, errno};
  }
}

AcceptResult sys_accept(const Fd& listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      AcceptResult result;
      result.fd = Fd(fd);
      result.status = IoStatus::kOk;
      return result;
    }
    if (errno == EINTR) continue;
    AcceptResult result;
    result.status = would_block(errno) ? IoStatus::kWouldBlock : IoStatus::kError;
    return result;
  }
}

Fd sys_epoll_create() { return Fd(::epoll_create1(EPOLL_CLOEXEC)); }

bool sys_epoll_add(const Fd& epoll_fd, int fd, std::uint64_t key) {
  epoll_event ev{};
  // Edge-triggered on both directions: handlers drain until kWouldBlock on
  // every wakeup, so a level re-arm is never needed and EPOLL_CTL_MOD stays
  // off the hot path entirely.
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.u64 = key;
  return ::epoll_ctl(epoll_fd.get(), EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool sys_epoll_del(const Fd& epoll_fd, int fd) {
  return ::epoll_ctl(epoll_fd.get(), EPOLL_CTL_DEL, fd, nullptr) == 0;
}

std::size_t sys_epoll_wait(const Fd& epoll_fd, int timeout_ms,
                           std::vector<ReadyEvent>& out) {
  epoll_event events[128];
  int n;
  for (;;) {
    n = ::epoll_wait(epoll_fd.get(), events, 128, timeout_ms);
    if (n >= 0) break;
    if (errno != EINTR) return 0;
  }
  for (int i = 0; i < n; ++i) {
    ReadyEvent ev;
    ev.key = events[i].data.u64;
    ev.readable = (events[i].events & EPOLLIN) != 0;
    ev.writable = (events[i].events & EPOLLOUT) != 0;
    ev.hangup =
        (events[i].events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
    out.push_back(ev);
  }
  return static_cast<std::size_t>(n);
}

std::size_t sys_raise_nofile(std::size_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (static_cast<std::size_t>(lim.rlim_cur) < want) {
    rlimit raised = lim;
    raised.rlim_cur =
        lim.rlim_max == RLIM_INFINITY
            ? static_cast<rlim_t>(want)
            : std::min(static_cast<rlim_t>(want), lim.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return static_cast<std::size_t>(lim.rlim_cur);
}

}  // namespace xpuf::net::async
