// Epoll event loop: edge-triggered readiness dispatch plus a timer wheel.
//
// One loop owns one epoll instance. Handlers register per-fd and receive
// folded readiness events (readable/writable/hangup); registration is
// edge-triggered for BOTH directions, so a handler must drain its fd until
// kWouldBlock on every wakeup — the SocketTransport pump honors this.
// Deadlines go through the TimerWheel and fire via a single timer callback
// keyed by an opaque engine key; the loop reads time only through the
// injected Clock, so tests drive it with ManualClock and the firing order is
// reproducible tick-for-tick.
//
// Single-threaded by contract (the async engine multiplexes thousands of
// connections on one lane; determinism comes from per-device purity, not
// locks) — nothing here is thread-safe.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/async/clock.hpp"
#include "net/async/syscall.hpp"
#include "net/async/timer_wheel.hpp"

namespace xpuf::net::async {

/// Per-fd readiness callback target.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void on_ready(bool readable, bool writable, bool hangup) = 0;
};

class EventLoop {
 public:
  /// `clock` must outlive the loop.
  explicit EventLoop(Clock& clock, std::size_t wheel_slots = 256);

  bool valid() const { return epoll_.valid(); }
  std::uint64_t now() { return clock_->ticks(); }

  /// Registers `fd` (edge-triggered, read+write) with `handler`, which must
  /// stay alive until remove(). Returns false when epoll rejects the fd.
  bool add(int fd, EventHandler* handler);
  void remove(int fd);

  /// Arms `key` to fire at tick `deadline` through the timer handler.
  void arm_timer(std::uint64_t deadline, std::uint64_t key);
  void set_timer_handler(std::function<void(std::uint64_t key, std::uint64_t now)> fn) {
    timer_handler_ = std::move(fn);
  }

  /// One iteration: wait for readiness (bounded by `max_wait_ms` and the
  /// next armed deadline), dispatch fd handlers, then fire due timers.
  /// Returns the number of fd events dispatched.
  std::size_t poll(int max_wait_ms);

  std::size_t handler_count() const { return handlers_.size(); }
  bool timers_armed() const { return wheel_.armed(); }

 private:
  Clock* clock_;
  Fd epoll_;
  TimerWheel wheel_;
  std::map<int, EventHandler*> handlers_;
  std::function<void(std::uint64_t, std::uint64_t)> timer_handler_;
  std::vector<ReadyEvent> events_;  ///< reused across polls
};

}  // namespace xpuf::net::async
