// Transport over one nonblocking stream socket.
//
// SocketTransport implements the exact Transport contract the session layer
// already speaks (send whole encoded frames / receive whole blobs / idle
// quiescence), so DeviceClient and ServerSessionHandler run UNCHANGED over
// TCP or Unix-domain sockets. Unlike PipeTransport, one SocketTransport
// carries BOTH directions of its connection (a socket is full-duplex); the
// engine hands the same object to the client as tx and rx.
//
// Write path: send() appends the encoded frame to an in-memory write buffer
// and opportunistically flushes; flush_writes() (called again on EPOLLOUT)
// pushes until kWouldBlock, tracking partial writes by offset. The buffer is
// capped — a peer that stops reading eventually marks the transport failed,
// which the engine counts and closes (overflow is never a silent drop).
//
// Read path: pump_reads() (called on EPOLLIN) drains the socket until
// kWouldBlock/EOF into the FrameStreamDecoder; receive() then yields one
// validated blob per call, which recv_frame decodes with the same corrupt
// accounting as every other transport.
#pragma once

#include <cstdint>
#include <vector>

#include "net/async/stream_decoder.hpp"
#include "net/async/syscall.hpp"
#include "net/transport.hpp"

namespace xpuf::net::async {

enum class PumpStatus : std::uint8_t {
  kOk = 0,
  kPeerClosed,  ///< orderly EOF (or EPIPE on write) — drain then close
  kError,       ///< hard socket error; transport is marked failed
};

class SocketTransport final : public Transport {
 public:
  /// Takes ownership of the (nonblocking) socket.
  explicit SocketTransport(Fd fd, std::size_t max_write_buffer = 4u << 20)
      : fd_(std::move(fd)), max_write_buffer_(max_write_buffer) {}

  // Transport contract ----------------------------------------------------
  void send(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> receive() override;
  /// Idle = nothing buffered outbound and no undelivered inbound bytes.
  bool idle() const override {
    return write_buffer_.size() == write_pos_ && decoder_.empty();
  }
  void tick() override {}  // time lives in the event loop, not the transport

  // Event-loop surface ----------------------------------------------------
  /// Drains the socket into the decoder until kWouldBlock or EOF.
  PumpStatus pump_reads();
  /// Flushes buffered writes until kWouldBlock or the buffer empties.
  PumpStatus flush_writes();

  bool wants_write() const { return write_pos_ < write_buffer_.size(); }
  bool failed() const { return failed_; }
  int fd() const { return fd_.get(); }
  const Fd& fd_handle() const { return fd_; }  ///< for sys_socket_error
  const FrameStreamDecoder& decoder() const { return decoder_; }

 private:
  Fd fd_;
  std::size_t max_write_buffer_;
  std::vector<std::uint8_t> write_buffer_;
  std::size_t write_pos_ = 0;  ///< flushed prefix of write_buffer_
  FrameStreamDecoder decoder_;
  bool failed_ = false;
};

}  // namespace xpuf::net::async
