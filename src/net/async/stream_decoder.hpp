// Incremental frame delimiter for byte streams.
//
// TCP delivers bytes, not frames: a read may end mid-header, mid-payload, or
// carry three frames at once. FrameStreamDecoder accumulates bytes and emits
// one complete, checksum-valid frame BLOB at a time — it only delimits
// (magic + bounded length + CRC); semantic decoding stays in decode_frame via
// recv_frame, so corrupt-frame accounting is identical for pipe and socket
// transports.
//
// Invariance contract (proved by tests/test_stream_decoder.cpp): the
// sequence of emitted blobs is a pure function of the cumulative byte
// sequence, independent of how feed() chunks it — byte-at-a-time dribble and
// one giant write produce identical output.
//
// Resync: a byte position that cannot start a valid frame (bad magic,
// oversized length, bad CRC) is skipped one byte at a time, counted in
// net.async.resync_bytes, until a valid frame boundary is found. Memory is
// bounded by kHeaderBytes + kMaxPayloadBytes + kTrailerBytes plus one read
// chunk, because an oversized length field is rejected before buffering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace xpuf::net::async {

class FrameStreamDecoder {
 public:
  /// Appends raw stream bytes.
  void feed(const std::uint8_t* data, std::size_t n);

  /// Extracts the next complete frame blob (header + payload + checksum,
  /// ready for decode_frame), or nullopt when more bytes are needed.
  std::optional<std::vector<std::uint8_t>> next();

  /// True when no undelivered bytes are buffered (quiescence check).
  bool empty() const { return pos_ >= buffer_.size(); }
  std::size_t buffered() const { return buffer_.size() - pos_; }

  /// Bytes skipped hunting for a frame boundary (lifetime total).
  std::uint64_t resync_bytes() const { return resync_bytes_; }

 private:
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix of buffer_
  std::uint64_t resync_bytes_ = 0;
};

}  // namespace xpuf::net::async
