#include "net/async/event_loop.hpp"

#include <algorithm>
#include <cmath>

#include "common/metrics.hpp"

namespace xpuf::net::async {

EventLoop::EventLoop(Clock& clock, std::size_t wheel_slots)
    : clock_(&clock), epoll_(sys_epoll_create()), wheel_(wheel_slots) {}

bool EventLoop::add(int fd, EventHandler* handler) {
  if (!sys_epoll_add(epoll_, fd, static_cast<std::uint64_t>(fd))) return false;
  handlers_[fd] = handler;
  return true;
}

void EventLoop::remove(int fd) {
  if (handlers_.erase(fd) > 0) sys_epoll_del(epoll_, fd);
}

void EventLoop::arm_timer(std::uint64_t deadline, std::uint64_t key) {
  wheel_.arm(deadline, key);
}

std::size_t EventLoop::poll(int max_wait_ms) {
  // Bound the wait by the next armed deadline so a quiet loop still fires
  // TTL/retransmit timers on time.
  int wait_ms = max_wait_ms;
  std::uint64_t next = 0;
  if (wheel_.next_deadline(next)) {
    const double until = clock_->millis_until(next);
    const int capped =
        until >= 1e9 ? 1000000000 : static_cast<int>(std::ceil(until));
    wait_ms = wait_ms < 0 ? capped : std::min(wait_ms, capped);
  }
  if (wait_ms < 0) wait_ms = -1;  // no timers armed: caller's wait verbatim

  events_.clear();
  sys_epoll_wait(epoll_, wait_ms, events_);
  std::size_t dispatched = 0;
  for (const ReadyEvent& ev : events_) {
    // A handler dispatched earlier in this batch may have removed a later
    // fd; the map lookup makes stale events harmless.
    auto it = handlers_.find(static_cast<int>(ev.key));
    if (it == handlers_.end()) continue;
    it->second->on_ready(ev.readable, ev.writable, ev.hangup);
    ++dispatched;
  }

  if (timer_handler_) {
    static Counter& timers_fired =
        MetricsRegistry::global().counter("net.async.timers_fired");
    const std::uint64_t now = clock_->ticks();
    for (const TimerEntry& entry : wheel_.collect_due(now)) {
      timers_fired.add();
      timer_handler_(entry.key, now);
    }
  }
  return dispatched;
}

}  // namespace xpuf::net::async
