#include "net/service.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "net/server_session.hpp"

namespace xpuf::net {

namespace {

// StreamFamily key of a connection's fault stream; the two directions of one
// connection land on decorrelated streams. (Issuance keys live in
// server_session.cpp — issue_stream_key — shared with the async engine.)
std::uint64_t fault_key(std::uint64_t device_id, bool server_side) {
  return device_id * 2 + (server_side ? 1 : 0);
}

}  // namespace

struct ServiceEngine::Connection {
  Connection(const sim::XorPufChip& chip, const sim::Environment& env,
             Rng measure_rng, const ServiceConfig& config,
             const StreamFamily& fault_family,
             const StreamFamily& issue_family, puf::ServerDatabase& db,
             std::map<std::uint64_t, puf::ServerModel>& provisioned,
             std::uint32_t auth_sessions, bool enroll_first,
             bool revoke_at_end)
      : device_id(chip.id()),
        client_tx(c2s_pipe, config.faults, fault_family,
                  fault_key(chip.id(), /*server_side=*/false)),
        server_tx(s2c_pipe, config.faults, fault_family,
                  fault_key(chip.id(), /*server_side=*/true)),
        client(chip, env, measure_rng, client_tx, s2c_pipe, auth_sessions,
               config.client_policy, enroll_first, revoke_at_end),
        handler(chip.id(), db, provisioned, issue_family,
                ServerPolicy{config.session_ttl_rounds,
                             config.busy_retry_rounds}) {}

  std::uint64_t device_id;
  PipeTransport c2s_pipe;  ///< client -> server frames land here
  PipeTransport s2c_pipe;  ///< server -> client frames land here
  FaultyTransport client_tx;
  FaultyTransport server_tx;
  DeviceClient client;
  ServerSessionHandler handler;
  ChannelStats server_stats;
  std::uint32_t server_seq = 0;

  bool idle() const {
    return client_tx.idle() && server_tx.idle() && c2s_pipe.idle() &&
           s2c_pipe.idle();
  }

  /// Routes handler replies onto this connection's server->client transport,
  /// stamping the per-connection seq and endpoint stats.
  class ReplyToPipe final : public ReplySink {
   public:
    explicit ReplyToPipe(Connection& conn) : conn_(&conn) {}

    void send(FrameType type, std::uint32_t session_id,
              std::vector<std::uint8_t> payload) override {
      Frame frame;
      frame.header.type = type;
      frame.header.device_id = conn_->device_id;
      frame.header.session_id = session_id;
      frame.header.seq = conn_->server_seq++;
      frame.payload = std::move(payload);
      send_frame(conn_->server_tx, frame, conn_->server_stats);
    }

   private:
    Connection* conn_;
  };
};

struct ServiceEngine::Shard {
  explicit Shard(puf::DatabaseConfig db_config) : db(db_config) {}

  puf::ServerDatabase db;
  /// Enrolled models waiting for their ENROLL_BEGIN activation. Partitioned
  /// here at provision() time so activation is a shard-local map insert.
  std::map<std::uint64_t, puf::ServerModel> provisioned;
  std::vector<std::unique_ptr<Connection>> connections;
};

ServiceEngine::ServiceEngine(ServiceConfig config)
    : config_(config),
      fault_family_(Rng(config.seed ^ 0xfa'17'00'01).fork_base()),
      issue_family_(Rng(config.seed ^ 0xfa'17'00'02).fork_base()),
      measure_family_(Rng(config.seed ^ 0xfa'17'00'03).fork_base()) {
  XPUF_REQUIRE(config.shards >= 1, "the shard grid needs at least one shard");
  XPUF_REQUIRE(config.max_inflight_per_device >= 1,
               "a device must be allowed at least one in-flight session");
  XPUF_REQUIRE(config.session_ttl_rounds >= 1, "session TTL must be >= 1 round");
  shards_.reserve(config.shards);
  for (std::uint32_t s = 0; s < config.shards; ++s)
    shards_.push_back(std::make_unique<Shard>(config.database));
}

ServiceEngine::~ServiceEngine() = default;

ServiceEngine::Shard& ServiceEngine::shard_of(std::uint64_t device_id) {
  return *shards_[static_cast<std::size_t>(device_id % config_.shards)];
}

void ServiceEngine::provision(const sim::XorPufChip& chip,
                              puf::ServerModel model,
                              const sim::Environment& env,
                              std::uint32_t auth_sessions, bool enroll_first,
                              bool revoke_at_end) {
  const std::uint64_t device_id = static_cast<std::uint64_t>(chip.id());
  XPUF_REQUIRE(device_index_.find(device_id) == device_index_.end(),
               "device provisioned twice");
  XPUF_REQUIRE(model.chip_id() == chip.id(),
               "enrolled model does not belong to this chip");
  Shard& shard = shard_of(device_id);
  if (enroll_first) {
    shard.provisioned.emplace(device_id, std::move(model));
  } else {
    // No activation step scripted: the model goes live immediately.
    shard.db.register_device(std::move(model));
  }
  shard.connections.push_back(std::make_unique<Connection>(
      chip, env, measure_family_.stream(device_id), config_, fault_family_,
      issue_family_, shard.db, shard.provisioned, auth_sessions, enroll_first,
      revoke_at_end));
  device_index_.emplace(
      device_id,
      std::make_pair(static_cast<std::uint32_t>(device_id % config_.shards),
                     static_cast<std::uint32_t>(shard.connections.size() - 1)));
}

const std::vector<SessionRecord>& ServiceEngine::device_records(
    std::uint64_t device_id) const {
  const auto it = device_index_.find(device_id);
  XPUF_REQUIRE(it != device_index_.end(), "unknown device id");
  return shards_[it->second.first]
      ->connections[it->second.second]
      ->client.records();
}

ServiceReport ServiceEngine::run() {
  XPUF_TRACE_SPAN("net.service_run");
  XPUF_REQUIRE(!device_index_.empty(), "run() needs at least one provisioned device");
  std::uint32_t round = 0;
  bool all_finished = false;
  bool all_idle = false;
  for (; round < config_.max_rounds; ++round) {
    // Serial quiescence check between rounds: finished clients may still owe
    // the wire duplicated or held frames, so both conditions must hold.
    all_finished = true;
    all_idle = true;
    for (const auto& shard : shards_)
      for (const auto& conn : shard->connections) {
        all_finished = all_finished && conn->client.finished();
        all_idle = all_idle && conn->idle();
      }
    if (all_finished && all_idle) break;
    parallel_for(shards_.size(), 1,
                 [&](std::size_t begin, std::size_t end, std::size_t) {
                   for (std::size_t s = begin; s < end; ++s)
                     step_shard(s, round);
                 });
  }
  return finalize(round, all_finished, all_idle);
}

void ServiceEngine::step_shard(std::size_t shard_index, std::uint32_t round) {
  Shard& shard = *shards_[shard_index];
  for (auto& conn : shard.connections) {
    conn->client.step(round);
    serve(*conn, round);
    conn->client_tx.tick();
    conn->server_tx.tick();
  }
}

void ServiceEngine::serve(Connection& conn, std::uint32_t round) {
  static Counter& ignored =
      MetricsRegistry::global().counter("net.frames_ignored");
  conn.handler.expire_if_due(round);
  Connection::ReplyToPipe sink(conn);
  while (auto frame = recv_frame(conn.c2s_pipe, conn.server_stats)) {
    if (frame->header.device_id != conn.device_id) {
      ignored.add(1);  // cannot happen on a per-device pipe; counted anyway
      continue;
    }
    conn.handler.handle(*frame, round, sink);
  }
}

namespace {

/// FNV-1a style mixing; order-sensitive, but finalize() feeds it in the
/// fixed device_index_ order, so the digest is schedule-independent.
void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

}  // namespace

ServiceReport ServiceEngine::finalize(std::uint32_t rounds, bool all_finished,
                                      bool all_idle) {
  ServiceReport report;
  report.rounds = rounds;
  report.all_finished = all_finished;
  report.all_idle = all_idle;
  report.devices = device_index_.size();
  if (!all_finished)
    report.violations.push_back("round budget exhausted with live sessions");
  if (!all_idle)
    report.violations.push_back("round budget exhausted with frames in flight");
  std::uint64_t h = 0xc0ffee;
  std::uint64_t outcome_h = 0xc0ffee;
  std::uint64_t ledger_entries = 0;
  for (const auto& [device_id, where] : device_index_) {
    const Connection& conn = *shards_[where.first]->connections[where.second];
    const Shard& shard = *shards_[where.first];
    for (const SessionRecord& rec : conn.client.records()) {
      report.sessions_total += 1;
      report.retries += rec.retries;
      switch (rec.terminal) {
        case SessionPhase::kApproved: report.approved += 1; break;
        case SessionPhase::kDenied: report.denied += 1; break;
        case SessionPhase::kRejected: report.rejected += 1; break;
        case SessionPhase::kFailed: report.failed += 1; break;
        default:
          report.violations.push_back(
              "device " + std::to_string(device_id) + " session " +
              std::to_string(rec.session_id) + " has no terminal state");
      }
      mix(h, device_id);
      mix(h, rec.session_id);
      mix(h, static_cast<std::uint64_t>(rec.opened_with));
      mix(h, static_cast<std::uint64_t>(rec.terminal));
      mix(h, rec.retries);
      mix(h, rec.mismatches);
      mix(h, rec.challenges_used);
      // Transport-invariant digest: what the session DECIDED, not how many
      // times the wire made the client ask.
      mix(outcome_h, device_id);
      mix(outcome_h, rec.session_id);
      mix(outcome_h, static_cast<std::uint64_t>(rec.opened_with));
      mix(outcome_h, static_cast<std::uint64_t>(rec.terminal));
      mix(outcome_h, rec.mismatches);
      mix(outcome_h, rec.challenges_used);
    }
    if (!conn.client.finished())
      report.violations.push_back("device " + std::to_string(device_id) +
                                  " did not finish its session plan");
    // Frame conservation per direction (exact once the wire is idle):
    //   delivered + dropped == sent + duplicated
    //   corrupt == truncated + bitflipped (single fault per frame)
    const FaultTally& up = conn.client_tx.tally();
    const FaultTally& down = conn.server_tx.tally();
    const ChannelStats& client_stats = conn.client.channel_stats();
    const ChannelStats& server_stats = conn.server_stats;
    if (all_idle) {
      if (server_stats.delivered + up.dropped != up.sent + up.duplicated)
        report.violations.push_back("device " + std::to_string(device_id) +
                                    ": uplink frame conservation broken");
      if (client_stats.delivered + down.dropped != down.sent + down.duplicated)
        report.violations.push_back("device " + std::to_string(device_id) +
                                    ": downlink frame conservation broken");
      if (server_stats.corrupt != up.truncated + up.bitflipped)
        report.violations.push_back("device " + std::to_string(device_id) +
                                    ": uplink corruption accounting broken");
      if (client_stats.corrupt != down.truncated + down.bitflipped)
        report.violations.push_back("device " + std::to_string(device_id) +
                                    ": downlink corruption accounting broken");
    }
    if (client_stats.sent != up.sent || server_stats.sent != down.sent)
      report.violations.push_back("device " + std::to_string(device_id) +
                                  ": endpoint/wire sent counts disagree");
    report.frames_sent += client_stats.sent + server_stats.sent;
    report.frames_delivered += client_stats.delivered + server_stats.delivered;
    report.frames_corrupt += client_stats.corrupt + server_stats.corrupt;
    report.faults.sent += up.sent + down.sent;
    report.faults.dropped += up.dropped + down.dropped;
    report.faults.duplicated += up.duplicated + down.duplicated;
    report.faults.reordered += up.reordered + down.reordered;
    report.faults.truncated += up.truncated + down.truncated;
    report.faults.bitflipped += up.bitflipped + down.bitflipped;
    mix(h, client_stats.sent);
    mix(h, client_stats.delivered);
    mix(h, client_stats.corrupt);
    mix(h, server_stats.sent);
    mix(h, server_stats.delivered);
    mix(h, server_stats.corrupt);
    const auto chip_id = static_cast<std::size_t>(device_id);
    if (shard.db.knows(chip_id))
      ledger_entries += shard.db.issued_count(chip_id);
    report.batches_issued += conn.handler.ledger().batches_issued;
  }
  report.fingerprint = h;
  report.outcome_fingerprint = outcome_h;

  // Serial pass over counters the engine owns end-to-end: the snapshot must
  // agree with the per-connection ledgers summed above.
  auto& registry = MetricsRegistry::global();
  report.sessions_expired = registry.counter("net.sessions_expired").total();
  report.nacks_sent = registry.counter("net.nacks_sent").total();
  report.enroll_activated = registry.counter("net.enroll_activated").total();
  report.revocations = registry.counter("net.revocations").total();
  // Gauges are last-writer-wins and therefore racy during the parallel run;
  // overwrite them serially here so snapshots compare bit-identically.
  registry.gauge("db.ledger_size").set(static_cast<double>(ledger_entries));
  registry.gauge("net.devices").set(static_cast<double>(report.devices));
  registry.gauge("net.rounds").set(static_cast<double>(report.rounds));
  return report;
}

}  // namespace xpuf::net
