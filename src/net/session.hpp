// Device-side protocol driver of the authentication service.
//
// A DeviceClient executes a scripted plan of sessions — one optional
// ENROLL_BEGIN activation, N AUTH_BEGIN authentications, an optional final
// REVOKE — over an unreliable transport. Each session is a tiny state
// machine (see DESIGN.md for the diagram):
//
//   IDLE --begin--> AWAIT_CHALLENGE --batch/measure--> AWAIT_RESULT
//        --result--> APPROVED | DENIED
//        --terminal NACK--> REJECTED
//        --retry budget exhausted--> FAILED
//
// Loss recovery is retransmission with exponential backoff measured in
// engine rounds (the deterministic clock of the in-process service), bounded
// by ClientPolicy::max_retries; responses for a challenge batch are measured
// once and the encoded payload is cached, so a retransmitted RESPONSE_SUBMIT
// carries bit-identical responses. Every session ends in exactly ONE
// terminal phase — the accounting invariant the service bench reconciles.
#pragma once

#include <cstdint>
#include <vector>

#include "net/transport.hpp"
#include "sim/chip.hpp"
#include "sim/environment.hpp"

namespace xpuf::net {

enum class SessionPhase : std::uint8_t {
  kIdle = 0,
  kAwaitChallenge,
  kAwaitResult,
  // Terminal phases — exactly one per session.
  kApproved,
  kDenied,
  kRejected,  ///< server sent a terminal NACK
  kFailed,    ///< retry budget exhausted (transport-level failure)
};

bool is_terminal(SessionPhase phase);
const char* to_string(SessionPhase phase);

/// Retry policy, expressed in the caller's clock domain. The DeviceClient
/// never reads a clock: every deadline comparison uses the `round` value
/// passed into step(), so "rounds" are whatever monotonic tick the engine
/// supplies — lockstep protocol rounds (where one round is a full RTT and a
/// timeout of 4 is generous) or event-loop clock ticks (where one tick is
/// ~1 ms wall time and the same policy needs a far larger window). Engines
/// that change the clock domain MUST re-size timeout_rounds for it; the
/// async engine does this via AsyncServiceConfig::client_timeout_ticks.
struct ClientPolicy {
  std::uint32_t timeout_rounds = 4;  ///< first await window; doubles per retry
  std::uint32_t max_retries = 6;     ///< retransmissions per session
};

/// Outcome ledger entry for one completed session.
struct SessionRecord {
  std::uint32_t session_id = 0;
  FrameType opened_with = FrameType::kAuthBegin;
  SessionPhase terminal = SessionPhase::kIdle;
  std::uint32_t retries = 0;
  std::uint32_t mismatches = 0;
  std::uint32_t challenges_used = 0;
};

/// Optional hook into session lifecycle events, for engines that attach
/// timing (the event loop's latency histogram) without entangling the state
/// machine with any clock. Callbacks fire synchronously inside step().
class SessionObserver {
 public:
  virtual ~SessionObserver() = default;
  virtual void on_session_opened(std::uint32_t session_id,
                                 std::uint32_t round) = 0;
  virtual void on_session_terminal(const SessionRecord& record,
                                   std::uint32_t round) = 0;
};

class DeviceClient {
 public:
  /// `rng` is this connection's private stream (measurement noise draws);
  /// `to_server`/`from_server` are the two transport directions, typically
  /// FaultyTransport decorations of a PipeTransport pair.
  DeviceClient(const sim::XorPufChip& chip, sim::Environment env, Rng rng,
               Transport& to_server, Transport& from_server,
               std::uint32_t auth_sessions, ClientPolicy policy = {},
               bool enroll_first = true, bool revoke_at_end = false);

  /// One engine round: drain the inbox, advance the state machine, open the
  /// next scripted session or retransmit on timeout.
  void step(std::uint32_t round);

  /// True once every scripted session reached a terminal phase.
  bool finished() const { return plan_index_ >= plan_.size(); }

  std::uint64_t device_id() const;
  SessionPhase phase() const { return phase_; }
  const std::vector<SessionRecord>& records() const { return records_; }
  const ChannelStats& channel_stats() const { return stats_; }

  /// The round step() will act on next if no frame arrives: retransmit (or
  /// fail the session) once `round >= deadline_round()`. Event-loop engines
  /// arm their timer wheel off this instead of polling every tick.
  std::uint32_t deadline_round() const { return deadline_round_; }

  /// `observer` must outlive the client (nullptr detaches).
  void set_observer(SessionObserver* observer) { observer_ = observer; }

 private:
  void open_next_session(std::uint32_t round);
  void handle(const Frame& frame, std::uint32_t round);
  void on_deadline(std::uint32_t round);
  void transmit(std::uint32_t round);
  void finish_session(SessionPhase terminal, std::uint32_t round);
  void arm_deadline(std::uint32_t round, std::uint32_t wait);

  const sim::XorPufChip* chip_;
  sim::Environment env_;
  Rng rng_;
  Transport* tx_;
  Transport* rx_;
  ClientPolicy policy_;

  std::vector<FrameType> plan_;
  std::size_t plan_index_ = 0;
  std::vector<SessionRecord> records_;

  SessionPhase phase_ = SessionPhase::kIdle;
  SessionRecord current_;
  std::uint32_t session_counter_ = 0;
  std::uint32_t seq_ = 0;            ///< per-connection transmission counter
  std::uint32_t deadline_round_ = 0;
  std::uint32_t timeout_cur_ = 0;
  /// Encoded payload of the frame a deadline retransmits (begin frames are
  /// empty; RESPONSE_SUBMIT carries the cached measured bits).
  FrameType pending_type_ = FrameType::kAuthBegin;
  std::vector<std::uint8_t> pending_payload_;

  ChannelStats stats_;
  SessionObserver* observer_ = nullptr;
};

}  // namespace xpuf::net
