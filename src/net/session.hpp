// Device-side protocol driver of the authentication service.
//
// A DeviceClient executes a scripted plan of sessions — one optional
// ENROLL_BEGIN activation, N AUTH_BEGIN authentications, an optional final
// REVOKE — over an unreliable transport. Each session is a tiny state
// machine (see DESIGN.md for the diagram):
//
//   IDLE --begin--> AWAIT_CHALLENGE --batch/measure--> AWAIT_RESULT
//        --result--> APPROVED | DENIED
//        --terminal NACK--> REJECTED
//        --retry budget exhausted--> FAILED
//
// Loss recovery is retransmission with exponential backoff measured in
// engine rounds (the deterministic clock of the in-process service), bounded
// by ClientPolicy::max_retries; responses for a challenge batch are measured
// once and the encoded payload is cached, so a retransmitted RESPONSE_SUBMIT
// carries bit-identical responses. Every session ends in exactly ONE
// terminal phase — the accounting invariant the service bench reconciles.
#pragma once

#include <cstdint>
#include <vector>

#include "net/transport.hpp"
#include "sim/chip.hpp"
#include "sim/environment.hpp"

namespace xpuf::net {

enum class SessionPhase : std::uint8_t {
  kIdle = 0,
  kAwaitChallenge,
  kAwaitResult,
  // Terminal phases — exactly one per session.
  kApproved,
  kDenied,
  kRejected,  ///< server sent a terminal NACK
  kFailed,    ///< retry budget exhausted (transport-level failure)
};

bool is_terminal(SessionPhase phase);
const char* to_string(SessionPhase phase);

struct ClientPolicy {
  std::uint32_t timeout_rounds = 4;  ///< first await window; doubles per retry
  std::uint32_t max_retries = 6;     ///< retransmissions per session
};

/// Outcome ledger entry for one completed session.
struct SessionRecord {
  std::uint32_t session_id = 0;
  FrameType opened_with = FrameType::kAuthBegin;
  SessionPhase terminal = SessionPhase::kIdle;
  std::uint32_t retries = 0;
  std::uint32_t mismatches = 0;
  std::uint32_t challenges_used = 0;
};

class DeviceClient {
 public:
  /// `rng` is this connection's private stream (measurement noise draws);
  /// `to_server`/`from_server` are the two transport directions, typically
  /// FaultyTransport decorations of a PipeTransport pair.
  DeviceClient(const sim::XorPufChip& chip, sim::Environment env, Rng rng,
               Transport& to_server, Transport& from_server,
               std::uint32_t auth_sessions, ClientPolicy policy = {},
               bool enroll_first = true, bool revoke_at_end = false);

  /// One engine round: drain the inbox, advance the state machine, open the
  /// next scripted session or retransmit on timeout.
  void step(std::uint32_t round);

  /// True once every scripted session reached a terminal phase.
  bool finished() const { return plan_index_ >= plan_.size(); }

  std::uint64_t device_id() const;
  SessionPhase phase() const { return phase_; }
  const std::vector<SessionRecord>& records() const { return records_; }
  const ChannelStats& channel_stats() const { return stats_; }

 private:
  void open_next_session(std::uint32_t round);
  void handle(const Frame& frame, std::uint32_t round);
  void on_deadline(std::uint32_t round);
  void transmit(std::uint32_t round);
  void finish_session(SessionPhase terminal);
  void arm_deadline(std::uint32_t round, std::uint32_t wait);

  const sim::XorPufChip* chip_;
  sim::Environment env_;
  Rng rng_;
  Transport* tx_;
  Transport* rx_;
  ClientPolicy policy_;

  std::vector<FrameType> plan_;
  std::size_t plan_index_ = 0;
  std::vector<SessionRecord> records_;

  SessionPhase phase_ = SessionPhase::kIdle;
  SessionRecord current_;
  std::uint32_t session_counter_ = 0;
  std::uint32_t seq_ = 0;            ///< per-connection transmission counter
  std::uint32_t deadline_round_ = 0;
  std::uint32_t timeout_cur_ = 0;
  /// Encoded payload of the frame a deadline retransmits (begin frames are
  /// empty; RESPONSE_SUBMIT carries the cached measured bits).
  FrameType pending_type_ = FrameType::kAuthBegin;
  std::vector<std::uint8_t> pending_payload_;

  ChannelStats stats_;
};

}  // namespace xpuf::net
