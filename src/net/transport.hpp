// Transport abstraction of the authentication service.
//
// A Transport is one direction of a connection: a FIFO of encoded frames.
// PipeTransport is the deterministic in-process implementation; the
// FaultyTransport decorator injects seeded drops, duplicates, reorders,
// truncations, and bit-flips so every protocol path has a hostile-network
// test. Fault schedules are stream-keyed per connection (StreamFamily, the
// PR 1 RNG-splitting pattern): the fault pattern a connection sees is a pure
// function of (family base, connection key, per-connection frame order), so
// runs are bit-identical at any worker-thread count.
//
// Concurrency contract: a transport pair belongs to exactly one connection,
// and every connection is owned by exactly one ServiceEngine shard — all
// calls on one transport happen on that shard's lane, serially. Transports
// therefore need no locks, matching the chunk-ownership rule of
// common/parallel.hpp.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "net/wire.hpp"

namespace xpuf::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues one encoded frame toward the peer.
  virtual void send(std::vector<std::uint8_t> frame) = 0;

  /// Pops the next deliverable frame; nullopt when none is pending.
  virtual std::optional<std::vector<std::uint8_t>> receive() = 0;

  /// True when nothing is queued or held in flight (accounting quiescence —
  /// the engine only reconciles once every transport is idle).
  virtual bool idle() const = 0;

  /// Advances one engine round (reorder hold queues age here).
  virtual void tick() = 0;
};

/// Deterministic in-process FIFO pipe: frames arrive exactly once, in order.
class PipeTransport final : public Transport {
 public:
  void send(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> receive() override;
  bool idle() const override { return queue_.empty(); }
  void tick() override {}

 private:
  std::deque<std::vector<std::uint8_t>> queue_;
};

/// Per-fault injection probabilities. At most one fault is applied per frame
/// (a single uniform draw selects the band), so the tallies partition the
/// sent count exactly.
struct FaultProfile {
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double truncate = 0.0;
  double bitflip = 0.0;
  /// Rounds a reordered frame is held before release (1..max, seeded draw).
  std::uint32_t reorder_delay_max = 3;

  double total() const { return drop + duplicate + reorder + truncate + bitflip; }

  static FaultProfile none() { return {}; }
  /// Every fault class at the same per-frame rate.
  static FaultProfile uniform(double rate) {
    FaultProfile p;
    p.drop = p.duplicate = p.reorder = p.truncate = p.bitflip = rate;
    return p;
  }
};

/// Exact per-instance fault ledger; the engine sums these to prove zero
/// accounting drift (delivered + dropped == sent + duplicated).
struct FaultTally {
  std::uint64_t sent = 0;        ///< frames handed to send()
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;  ///< extra copies created
  std::uint64_t reordered = 0;
  std::uint64_t truncated = 0;
  std::uint64_t bitflipped = 0;

  std::uint64_t faults() const {
    return dropped + duplicated + reordered + truncated + bitflipped;
  }
};

class FaultyTransport final : public Transport {
 public:
  /// `connection_key` keys this connection's private fault stream in
  /// `family`; distinct keys (connections, directions) are decorrelated.
  FaultyTransport(Transport& inner, FaultProfile profile,
                  const StreamFamily& family, std::uint64_t connection_key);

  void send(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> receive() override;
  bool idle() const override;
  void tick() override;

  const FaultTally& tally() const { return tally_; }

 private:
  Transport* inner_;
  FaultProfile profile_;
  Rng rng_;
  FaultTally tally_;
  /// Reordered frames with their remaining hold rounds.
  std::deque<std::pair<std::uint32_t, std::vector<std::uint8_t>>> held_;
};

/// Per-endpoint frame accounting (client side or server side of one
/// connection). Owned by the shard lane, so plain integers suffice; the same
/// events also feed the global net.* counters.
struct ChannelStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t corrupt = 0;
};

/// Encodes and sends one frame; counts net.frames_sent.
void send_frame(Transport& transport, const Frame& frame, ChannelStats& stats);

/// Pops blobs until one decodes. Counts net.frames_delivered for every pop
/// and net.frames_corrupt for undecodable ones (swallowed — the session
/// retry layer recovers); nullopt once the queue is empty.
std::optional<Frame> recv_frame(Transport& transport, ChannelStats& stats);

}  // namespace xpuf::net
