// Householder QR factorization — the numerically robust least-squares path
// (used when the normal equations are ill-conditioned, and by tests as a
// reference solver).
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace xpuf::linalg {

/// Thin QR of an m x n matrix (m >= n) via Householder reflections.
class QR {
 public:
  explicit QR(const Matrix& a);

  /// Minimum-norm least-squares solution of A x ~= b (m >= n, full rank).
  /// Throws NumericalError on (numerically) rank-deficient input.
  Vector solve(const Vector& b) const;

  /// Upper-triangular R (n x n).
  Matrix r() const;

  /// Applies Q^T to a length-m vector.
  Vector apply_qt(const Vector& b) const;

  /// Absolute value of the smallest diagonal of R — a cheap rank/condition
  /// indicator.
  double min_abs_diag() const;

 private:
  Matrix qr_;                // Householder vectors below the diagonal, R on/above
  std::vector<double> tau_;  // reflector scales
  std::size_t m_ = 0, n_ = 0;
};

/// One-shot least squares via QR.
Vector solve_least_squares_qr(const Matrix& a, const Vector& b);

}  // namespace xpuf::linalg
