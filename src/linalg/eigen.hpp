// Symmetric eigendecomposition (cyclic Jacobi) — needed by CMA-ES to sample
// from N(m, sigma^2 C) and generally useful for covariance analysis.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace xpuf::linalg {

struct EigenDecomposition {
  /// Eigenvalues in ascending order.
  Vector values;
  /// Column k of `vectors` is the unit eigenvector for values[k].
  Matrix vectors;
};

/// Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
/// The input is symmetrized ((A + A^T)/2) to absorb round-off asymmetry;
/// genuinely non-symmetric input is a precondition violation.
/// Throws NumericalError if the sweep limit is exceeded (pathological input).
EigenDecomposition eigen_symmetric(const Matrix& a, std::size_t max_sweeps = 64);

/// Square root of a symmetric positive semi-definite matrix:
/// B = V diag(sqrt(max(lambda, 0))) V^T. Clamps tiny negative eigenvalues
/// (round-off) to zero.
Matrix sqrt_spsd(const Matrix& a);

}  // namespace xpuf::linalg
