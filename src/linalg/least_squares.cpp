#include "linalg/least_squares.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"

namespace xpuf::linalg {

namespace {

LeastSquaresResult finish(const Matrix& a, const Vector& b, Vector x,
                          LeastSquaresMethod used) {
  LeastSquaresResult res;
  Vector pred = matvec(a, x);
  double rss = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double e = pred[i] - b[i];
    rss += e * e;
  }
  double mean_b = 0.0;
  for (double v : b) mean_b += v;
  mean_b /= static_cast<double>(b.size());
  double tss = 0.0;
  for (double v : b) tss += (v - mean_b) * (v - mean_b);
  res.residual_norm = std::sqrt(rss);
  res.r_squared = tss > 0.0 ? 1.0 - rss / tss : 0.0;
  res.coefficients = std::move(x);
  res.method_used = used;
  return res;
}

Vector solve_normal(const Matrix& a, const Vector& b, double ridge) {
  Matrix g = gram(a);
  if (ridge > 0.0)
    for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) += ridge;
  Vector atb = matvec_transposed(a, b);
  return Cholesky(g).solve(atb);
}

}  // namespace

LeastSquaresResult solve_least_squares(const Matrix& a, const Vector& b,
                                       const LeastSquaresOptions& options) {
  XPUF_REQUIRE(a.rows() == b.size(), "least squares: row/target mismatch");
  XPUF_REQUIRE(a.rows() >= a.cols(), "least squares: underdetermined system");

  switch (options.method) {
    case LeastSquaresMethod::kNormalEquations:
      return finish(a, b, solve_normal(a, b, options.ridge),
                    LeastSquaresMethod::kNormalEquations);
    case LeastSquaresMethod::kQr: {
      // Ridge via explicit augmentation [A; sqrt(lambda) I].
      if (options.ridge > 0.0) {
        Matrix aug(a.rows() + a.cols(), a.cols());
        for (std::size_t r = 0; r < a.rows(); ++r)
          for (std::size_t c = 0; c < a.cols(); ++c) aug(r, c) = a(r, c);
        const double s = std::sqrt(options.ridge);
        for (std::size_t c = 0; c < a.cols(); ++c) aug(a.rows() + c, c) = s;
        Vector baug(a.rows() + a.cols());
        for (std::size_t r = 0; r < a.rows(); ++r) baug[r] = b[r];
        return finish(a, b, QR(aug).solve(baug), LeastSquaresMethod::kQr);
      }
      return finish(a, b, QR(a).solve(b), LeastSquaresMethod::kQr);
    }
    case LeastSquaresMethod::kAuto: {
      try {
        return finish(a, b, solve_normal(a, b, options.ridge),
                      LeastSquaresMethod::kNormalEquations);
      } catch (const NumericalError&) {
        LeastSquaresOptions qr_opts = options;
        qr_opts.method = LeastSquaresMethod::kQr;
        return solve_least_squares(a, b, qr_opts);
      }
    }
  }
  throw NumericalError("unreachable least-squares method");
}

}  // namespace xpuf::linalg
