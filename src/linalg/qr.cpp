#include "linalg/qr.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xpuf::linalg {

QR::QR(const Matrix& a) : qr_(a), m_(a.rows()), n_(a.cols()) {
  XPUF_REQUIRE(m_ >= n_, "QR expects a tall (m >= n) matrix");
  tau_.assign(n_, 0.0);
  for (std::size_t k = 0; k < n_; ++k) {
    // Householder vector for column k (rows k..m-1), stored with implicit
    // leading 1; R's diagonal entry replaces qr_(k, k).
    double norm = 0.0;
    for (std::size_t i = k; i < m_; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0.0 ? -norm : norm;
    const double v0 = qr_(k, k) - alpha;
    // Normalize so v[k] == 1.
    for (std::size_t i = k + 1; i < m_; ++i) qr_(i, k) /= v0;
    tau_[k] = -v0 / alpha;  // tau = 2 / (v^T v) with v[k] = 1 scaling
    qr_(k, k) = alpha;
    // Apply reflector to the remaining columns.
    for (std::size_t j = k + 1; j < n_; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < m_; ++i) s += qr_(i, k) * qr_(i, j);
      s *= tau_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m_; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

Vector QR::apply_qt(const Vector& b) const {
  XPUF_REQUIRE(b.size() == m_, "apply_qt dimension mismatch");
  Vector y = b;
  for (std::size_t k = 0; k < n_; ++k) {
    if (tau_[k] == 0.0) continue;
    double s = y[k];
    for (std::size_t i = k + 1; i < m_; ++i) s += qr_(i, k) * y[i];
    s *= tau_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m_; ++i) y[i] -= s * qr_(i, k);
  }
  return y;
}

Vector QR::solve(const Vector& b) const {
  Vector y = apply_qt(b);
  // Rank test relative to the largest diagonal of R: a diagonal entry that
  // is ~eps of the largest signals numerical rank deficiency.
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n_; ++i) max_diag = std::max(max_diag, std::fabs(qr_(i, i)));
  const double tol = std::max(1e-300, 1e-12 * max_diag);
  Vector x(n_);
  for (std::size_t ii = n_; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    const double d = qr_(i, i);
    if (std::fabs(d) < tol)
      throw NumericalError("QR solve: rank-deficient matrix (zero diagonal in R)");
    double s = y[i];
    for (std::size_t j = i + 1; j < n_; ++j) s -= qr_(i, j) * x[j];
    x[i] = s / d;
  }
  return x;
}

Matrix QR::r() const {
  Matrix r(n_, n_);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = i; j < n_; ++j) r(i, j) = qr_(i, j);
  return r;
}

double QR::min_abs_diag() const {
  double m = std::fabs(qr_(0, 0));
  for (std::size_t i = 1; i < n_; ++i) m = std::min(m, std::fabs(qr_(i, i)));
  return m;
}

Vector solve_least_squares_qr(const Matrix& a, const Vector& b) { return QR(a).solve(b); }

}  // namespace xpuf::linalg
