// Cholesky factorization and SPD solves — the normal-equations path used by
// the linear-regression enrollment model.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace xpuf::linalg {

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
/// Throws NumericalError if a pivot is not strictly positive.
class Cholesky {
 public:
  explicit Cholesky(const Matrix& spd);

  /// Solves A x = b using the stored factor (forward + backward substitution).
  Vector solve(const Vector& b) const;

  /// The factor L with A = L L^T.
  const Matrix& factor() const { return l_; }

  /// log(det A) = 2 * sum(log L_ii); useful for model-evidence diagnostics.
  double log_det() const;

 private:
  Matrix l_;
};

/// One-shot SPD solve.
Vector solve_spd(const Matrix& a, const Vector& b);

}  // namespace xpuf::linalg
