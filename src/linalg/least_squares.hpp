// Least-squares front end: picks between the fast normal-equations path and
// the robust QR path, with optional ridge (Tikhonov) regularization.
//
// This is the core numerical kernel of the paper's enrollment scheme: the
// server fits each arbiter PUF's delay-parameter vector w by regressing
// measured soft responses on the transformed challenge features (Sec 4).
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace xpuf::linalg {

enum class LeastSquaresMethod {
  kNormalEquations,  ///< A^T A via Cholesky — fastest, fine for PUF features
  kQr,               ///< Householder QR — robust to ill-conditioning
  kAuto,             ///< normal equations, falling back to QR on breakdown
};

struct LeastSquaresOptions {
  LeastSquaresMethod method = LeastSquaresMethod::kAuto;
  /// Ridge penalty lambda (adds lambda*I to the Gram matrix). The paper's
  /// 5,000-sample x 33-feature problems are well-posed, so the default is a
  /// tiny jitter that only matters for degenerate synthetic inputs.
  double ridge = 0.0;
};

struct LeastSquaresResult {
  Vector coefficients;       ///< fitted x
  double residual_norm = 0;  ///< ||A x - b||_2
  double r_squared = 0;      ///< 1 - RSS/TSS against mean(b)
  LeastSquaresMethod method_used = LeastSquaresMethod::kAuto;
};

/// Solves min_x ||A x - b||^2 (+ ridge ||x||^2).
LeastSquaresResult solve_least_squares(const Matrix& a, const Vector& b,
                                       const LeastSquaresOptions& options = {});

}  // namespace xpuf::linalg
