// Dense row-major matrix with the BLAS-2/3 kernels the solvers need.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/vector.hpp"

namespace xpuf::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer data; all rows must have equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row r (contiguous, cols() doubles).
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  const std::vector<double>& raw() const { return data_; }

  /// Appends one row in amortized O(cols) time: the flat storage grows
  /// geometrically (std::vector push semantics), so building an n-row matrix
  /// row by row is O(n * cols) total — never the O(n^2) of copy-and-grow.
  /// The row length must match cols(); an empty 0 x 0 matrix adopts the
  /// first row's length.
  void append_row(std::span<const double> row);

  /// Pre-reserves flat storage for `rows` rows (cols() must be known).
  void reserve_rows(std::size_t rows) { data_.reserve(rows * cols_); }

  /// Reshapes in place to rows x cols. Contents become unspecified; existing
  /// heap capacity is reused when it suffices (the storage-reusing chunk
  /// producers lean on this to stop per-chunk allocation churn).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

  bool operator==(const Matrix& rhs) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A x.
Vector matvec(const Matrix& a, const Vector& x);

/// y = A^T x.
Vector matvec_transposed(const Matrix& a, const Vector& x);

/// C = A B (naive triple loop with row-major-friendly ordering). Serial
/// reference kernel; the blocked/parallel kernels below are tested against
/// it.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A B, cache-blocked over the inner dimension and parallelized over
/// row blocks on the global thread pool. Each output element accumulates in
/// ascending-k order regardless of blocking or thread count, so the result
/// is bit-identical for 1..N threads.
Matrix matmul_blocked(const Matrix& a, const Matrix& b);

/// C = A B^T with B supplied already transposed: `bt` is (p x k) row-major,
/// so c(i, j) = dot(a.row(i), bt.row(j)) runs over two contiguous rows —
/// the cache-friendly layout for MLP forward passes (activations x weight
/// rows). Parallel over rows of A; bit-identical for any thread count.
Matrix matmul_nt(const Matrix& a, const Matrix& bt);

/// C = A^T B (k x n times k x p -> n x p), the gradient-accumulation kernel
/// (C = sum over rows r of outer(a.row(r), b.row(r))). Rows are sharded
/// into fixed-size chunks whose partial sums are combined in ascending
/// chunk order, so the result depends on the chunk grid but never on the
/// thread count. `row_chunk` overrides the shard size (0 keeps the default
/// grid); callers that must reproduce a historical partial-sum grid — the
/// logistic-regression objective's kGradChunk — pass their own.
Matrix matmul_tn(const Matrix& a, const Matrix& b, std::size_t row_chunk = 0);

/// Gram matrix A^T A (symmetric, computed in the upper triangle and
/// mirrored) — the normal-equations kernel for least squares.
Matrix gram(const Matrix& a);

/// Frobenius norm.
double norm_frobenius(const Matrix& a);

/// Max |a_ij - b_ij|; matrices must have equal shape.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace xpuf::linalg
