#include "linalg/vector.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xpuf::linalg {

Vector& Vector::operator+=(const Vector& rhs) {
  XPUF_REQUIRE(size() == rhs.size(), "vector += dimension mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  XPUF_REQUIRE(size() == rhs.size(), "vector -= dimension mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector& Vector::operator/=(double s) {
  XPUF_REQUIRE(s != 0.0, "vector division by zero");
  for (double& x : data_) x /= s;
  return *this;
}

double dot(const Vector& a, const Vector& b) { return dot(a.span(), b.span()); }

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  XPUF_REQUIRE(x.size() == y.size(), "axpy dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector hadamard(const Vector& a, const Vector& b) {
  XPUF_REQUIRE(a.size() == b.size(), "hadamard dimension mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

bool all_finite(const Vector& v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace xpuf::linalg
