// Dense double vector with the BLAS-1 operations the ML stack needs.
//
// Deliberately a thin value type over std::vector<double>: PUF models hold
// 33-65 element weight vectors, the MLP holds a few thousand parameters, so
// simplicity and copy-friendliness beat expression templates here.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace xpuf::linalg {

class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked access (throws std::out_of_range).
  double& at(std::size_t i) { return data_.at(i); }
  double at(std::size_t i) const { return data_.at(i); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::span<const double> span() const { return {data_.data(), data_.size()}; }
  std::span<double> span() { return {data_.data(), data_.size()}; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  const std::vector<double>& raw() const { return data_; }

  void resize(std::size_t n, double fill = 0.0) { data_.resize(n, fill); }
  void fill(double v) { data_.assign(data_.size(), v); }

  /// Amortized O(1) append (std::vector geometric growth underneath) — the
  /// building block for incrementally assembled targets (ml::Dataset::add).
  void push_back(double v) { data_.push_back(v); }
  void reserve(std::size_t n) { data_.reserve(n); }

  // Element-wise arithmetic. Dimension mismatches throw via XPUF_REQUIRE.
  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);
  Vector& operator/=(double s);

  friend Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
  friend Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
  friend Vector operator*(Vector lhs, double s) { return lhs *= s; }
  friend Vector operator*(double s, Vector rhs) { return rhs *= s; }
  friend Vector operator/(Vector lhs, double s) { return lhs /= s; }

  bool operator==(const Vector& rhs) const = default;

 private:
  std::vector<double> data_;
};

/// Ascending-index dot product over raw spans — THE shared row-wise kernel.
/// Every scalar forward pass in the tree (regression predicts, PUF model
/// evaluation, linear-view delays, attack objectives) routes through this
/// one loop, so they all share the exact accumulation order of the GEMM
/// kernels (matmul_nt / matvec accumulate each output element the same way)
/// and batch-vs-scalar equivalence stays a bit-level claim. Inline so hot
/// loops pay no cross-TU call.
inline double dot(std::span<const double> a, std::span<const double> b) {
  XPUF_REQUIRE(a.size() == b.size(), "dot dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Dot product; dimensions must match.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& v);

/// Infinity norm (max |x_i|); 0 for empty vectors.
double norm_inf(const Vector& v);

/// y += alpha * x (the BLAS axpy).
void axpy(double alpha, const Vector& x, Vector& y);

/// Element-wise (Hadamard) product.
Vector hadamard(const Vector& a, const Vector& b);

/// True if every element is finite.
bool all_finite(const Vector& v);

}  // namespace xpuf::linalg
