#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace xpuf::linalg {

EigenDecomposition eigen_symmetric(const Matrix& a, std::size_t max_sweeps) {
  XPUF_REQUIRE(a.rows() == a.cols(), "eigen_symmetric needs a square matrix");
  const std::size_t n = a.rows();
  // Work on the symmetrized copy.
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = 0.5 * (a(i, j) + a(j, i));
  Matrix v = Matrix::identity(n);

  auto off_diagonal_norm = [&m, n] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += m(i, j) * m(i, j);
    return std::sqrt(2.0 * s);
  };

  const double tol = 1e-14 * std::max(1.0, norm_frobenius(m));
  std::size_t sweeps = 0;
  while (off_diagonal_norm() > tol) {
    if (++sweeps > max_sweeps)
      throw NumericalError("Jacobi eigensolver did not converge");
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) <= tol / static_cast<double>(n)) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        // Rotation angle eliminating m(p, q).
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = std::copysign(1.0, theta) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to rows/columns p and q.
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&m](std::size_t i, std::size_t j) { return m(i, i) < m(j, j); });

  EigenDecomposition out;
  out.values = Vector(n);
  out.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = m(order[k], order[k]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, k) = v(i, order[k]);
  }
  return out;
}

Matrix sqrt_spsd(const Matrix& a) {
  const EigenDecomposition eig = eigen_symmetric(a);
  const std::size_t n = a.rows();
  Matrix out(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const double lambda = eig.values[k];
    XPUF_REQUIRE(lambda > -1e-8 * std::max(1.0, std::fabs(eig.values[n - 1])),
                 "sqrt_spsd of a matrix with a significantly negative eigenvalue");
    const double root = lambda > 0.0 ? std::sqrt(lambda) : 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        out(i, j) += root * eig.vectors(i, k) * eig.vectors(j, k);
  }
  return out;
}

}  // namespace xpuf::linalg
