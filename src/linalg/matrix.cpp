#include "linalg/matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xpuf::linalg {

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix{};
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    XPUF_REQUIRE(rows[r].size() == cols, "ragged rows in Matrix::from_rows");
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  XPUF_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix += shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  XPUF_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix -= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector matvec(const Matrix& a, const Vector& x) {
  XPUF_REQUIRE(a.cols() == x.size(), "matvec shape mismatch");
  Vector y(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row(r);
    double s = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vector matvec_transposed(const Matrix& a, const Vector& x) {
  XPUF_REQUIRE(a.rows() == x.size(), "matvec_transposed shape mismatch");
  Vector y(a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row(r);
    const double xr = x[r];
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += row[c] * xr;
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  XPUF_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row(r);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (std::size_t j = i; j < a.cols(); ++j) g(i, j) += ri * row[j];
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

double norm_frobenius(const Matrix& a) {
  double s = 0.0;
  for (double x : a.raw()) s += x * x;
  return std::sqrt(s);
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  XPUF_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.raw().size(); ++i)
    m = std::max(m, std::fabs(a.raw()[i] - b.raw()[i]));
  return m;
}

}  // namespace xpuf::linalg
