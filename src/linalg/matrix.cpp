#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace xpuf::linalg {

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix{};
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    XPUF_REQUIRE(rows[r].size() == cols, "ragged rows in Matrix::from_rows");
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::append_row(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  XPUF_REQUIRE(row.size() == cols_, "append_row length mismatch");
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  XPUF_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix += shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  XPUF_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix -= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector matvec(const Matrix& a, const Vector& x) {
  XPUF_REQUIRE(a.cols() == x.size(), "matvec shape mismatch");
  Vector y(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row(r);
    double s = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vector matvec_transposed(const Matrix& a, const Vector& x) {
  XPUF_REQUIRE(a.rows() == x.size(), "matvec_transposed shape mismatch");
  Vector y(a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row(r);
    const double xr = x[r];
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += row[c] * xr;
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  XPUF_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

namespace {
// Row chunks for the parallel GEMM kernels. Fixed constants (independent of
// the thread count) so partial-sum grids — and therefore floating-point
// results — never change with the pool size.
constexpr std::size_t kGemmRowChunk = 32;
constexpr std::size_t kAccumRowChunk = 256;
// Inner-dimension block: 64 doubles of A-row reused against all of B keeps
// the working set of B rows in L1/L2.
constexpr std::size_t kInnerBlock = 64;
}  // namespace

Matrix matmul_blocked(const Matrix& a, const Matrix& b) {
  XPUF_REQUIRE(a.cols() == b.rows(), "matmul_blocked shape mismatch");
  Matrix c(a.rows(), b.cols());
  const std::size_t inner = a.cols();
  const std::size_t cols = b.cols();
  parallel_for(a.rows(), kGemmRowChunk,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 for (std::size_t kb = 0; kb < inner; kb += kInnerBlock) {
                   const std::size_t kend = std::min(inner, kb + kInnerBlock);
                   for (std::size_t i = begin; i < end; ++i) {
                     const double* arow = a.row(i);
                     double* crow = c.row(i);
                     for (std::size_t k = kb; k < kend; ++k) {
                       const double aik = arow[k];
                       const double* brow = b.row(k);
                       for (std::size_t j = 0; j < cols; ++j) crow[j] += aik * brow[j];
                     }
                   }
                 }
               });
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& bt) {
  XPUF_REQUIRE(a.cols() == bt.cols(), "matmul_nt shape mismatch");
  Matrix c(a.rows(), bt.rows());
  const std::size_t inner = a.cols();
  const std::size_t out = bt.rows();
  parallel_for(a.rows(), kGemmRowChunk,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 for (std::size_t i = begin; i < end; ++i) {
                   const double* arow = a.row(i);
                   double* crow = c.row(i);
                   for (std::size_t j = 0; j < out; ++j) {
                     const double* brow = bt.row(j);
                     double s = 0.0;
                     for (std::size_t k = 0; k < inner; ++k) s += arow[k] * brow[k];
                     crow[j] = s;
                   }
                 }
               });
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b, std::size_t row_chunk) {
  XPUF_REQUIRE(a.rows() == b.rows(), "matmul_tn shape mismatch");
  const std::size_t n = a.cols();
  const std::size_t p = b.cols();
  const std::size_t chunk = row_chunk == 0 ? kAccumRowChunk : row_chunk;
  Matrix zero(n, p);
  return parallel_reduce(
      a.rows(), chunk, zero,
      [&](Matrix& acc, std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const double* arow = a.row(r);
          const double* brow = b.row(r);
          for (std::size_t i = 0; i < n; ++i) {
            const double ai = arow[i];
            if (ai == 0.0) continue;
            double* accrow = acc.row(i);
            for (std::size_t j = 0; j < p; ++j) accrow[j] += ai * brow[j];
          }
        }
      },
      [](Matrix& acc, Matrix&& part) { acc += part; });
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row(r);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (std::size_t j = i; j < a.cols(); ++j) g(i, j) += ri * row[j];
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

double norm_frobenius(const Matrix& a) {
  double s = 0.0;
  for (double x : a.raw()) s += x * x;
  return std::sqrt(s);
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  XPUF_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.raw().size(); ++i)
    m = std::max(m, std::fabs(a.raw()[i] - b.raw()[i]));
  return m;
}

}  // namespace xpuf::linalg
