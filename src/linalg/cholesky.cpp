#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xpuf::linalg {

Cholesky::Cholesky(const Matrix& spd) {
  XPUF_REQUIRE(spd.rows() == spd.cols(), "Cholesky needs a square matrix");
  const std::size_t n = spd.rows();
  l_ = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = spd(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    if (!(d > 0.0) || !std::isfinite(d))
      throw NumericalError("Cholesky: matrix is not positive definite at pivot " +
                           std::to_string(j));
    const double ljj = std::sqrt(d);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = spd(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / ljj;
    }
  }
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = l_.rows();
  XPUF_REQUIRE(b.size() == n, "Cholesky solve dimension mismatch");
  // Forward substitution: L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  // Backward substitution: L^T x = y.
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l_(k, i) * x[k];
    x[i] = s / l_(i, i);
  }
  return x;
}

double Cholesky::log_det() const {
  double s = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Vector solve_spd(const Matrix& a, const Vector& b) { return Cholesky(a).solve(b); }

}  // namespace xpuf::linalg
