// Feed-forward arbiter PUF (extension; structure covered by the paper's
// soft-response reference [1]): intermediate arbiters feed later select
// lines, which breaks the linear additive model and adds noise sources.
#include <cstdio>

#include "ml/linear_regression.hpp"
#include "puf/transform.hpp"
#include "sim/feedforward.hpp"

int main() {
  using namespace xpuf;

  sim::DeviceParameters params;  // same 32-stage process as the linear device
  Rng fab(123);
  sim::FeedForwardArbiterDevice ff(
      params, sim::EnvironmentModel{},
      {{.tap_stage = 7, .target_stage = 15}, {.tap_stage = 15, .target_stage = 28}},
      fab);
  Rng fab2(123);
  const sim::ArbiterPufDevice linear(params, sim::EnvironmentModel{}, fab2);

  Rng rng(456);
  const auto env = sim::Environment::nominal();

  // Stability comparison: intermediate arbiters add flip opportunities.
  std::size_t stable_linear = 0, stable_ff = 0;
  const int n = 400;
  const std::uint64_t trials = 2'000;
  for (int i = 0; i < n; ++i) {
    const auto c = sim::random_challenge(32, rng);
    std::uint64_t ones = 0;
    for (std::uint64_t t = 0; t < trials; ++t)
      if (linear.evaluate(c, env, rng)) ++ones;
    if (ones == 0 || ones == trials) ++stable_linear;
    if (ff.measure_soft_response(c, env, trials, rng).fully_stable()) ++stable_ff;
  }
  std::printf("100%%-stable challenge fraction over %d challenges x %llu trials:\n", n,
              static_cast<unsigned long long>(trials));
  std::printf("  linear arbiter PUF:       %.1f%%\n", 100.0 * static_cast<double>(stable_linear) / n);
  std::printf("  feed-forward arbiter PUF: %.1f%%\n\n", 100.0 * static_cast<double>(stable_ff) / n);

  // Model fidelity: fit the paper's linear enrollment model to each device's
  // soft responses and compare hard-prediction accuracy.
  auto fit_accuracy = [&](auto&& soft_of, auto&& truth_of) {
    const std::size_t train_n = 4'000;
    ml::Dataset data;
    data.x = linalg::Matrix(train_n, 33);
    data.y = linalg::Vector(train_n);
    std::vector<sim::Challenge> train;
    for (std::size_t i = 0; i < train_n; ++i) {
      train.push_back(sim::random_challenge(32, rng));
      puf::feature_vector_into(train.back(), data.x.row(i));
      data.y[i] = soft_of(train.back());
    }
    ml::LinearRegression reg;
    reg.fit(data);
    std::size_t hits = 0;
    const std::size_t test_n = 4'000;
    for (std::size_t i = 0; i < test_n; ++i) {
      const auto c = sim::random_challenge(32, rng);
      const linalg::Vector phi = puf::feature_vector(c);
      const bool pred = reg.predict(std::span<const double>(phi.data(), phi.size())) > 0.5;
      if (pred == truth_of(c)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(test_n);
  };

  const double acc_linear = fit_accuracy(
      [&](const sim::Challenge& c) {
        std::uint64_t ones = 0;
        for (int t = 0; t < 200; ++t)
          if (linear.evaluate(c, env, rng)) ++ones;
        return static_cast<double>(ones) / 200.0;
      },
      [&](const sim::Challenge& c) { return linear.delay_difference(c, env) > 0.0; });
  const double acc_ff = fit_accuracy(
      [&](const sim::Challenge& c) {
        return ff.measure_soft_response(c, env, 200, rng).soft_response();
      },
      [&](const sim::Challenge& c) { return ff.delay_difference(c, env) > 0.0; });

  std::printf("linear enrollment model accuracy (hard responses):\n");
  std::printf("  on the linear PUF:       %.1f%%\n", 100.0 * acc_linear);
  std::printf("  on the feed-forward PUF: %.1f%%\n\n", 100.0 * acc_ff);
  std::printf("Feed-forward loops raise modeling resistance (the linear model "
              "degrades) but cost stability — the same security/stability tension "
              "the paper resolves with wide XORs plus model-selected challenges.\n");
  return 0;
}
