// Modeling-attack demo: train the paper's MLP (35/25/25, L-BFGS) on stable
// CRPs of XOR PUFs of increasing width and watch the attack degrade —
// the security half of the paper's story (Fig 4 at example scale).
#include <cstdio>

#include "puf/attack.hpp"
#include "sim/population.hpp"

int main() {
  using namespace xpuf;

  sim::PopulationConfig config;
  config.n_chips = 1;
  config.n_pufs_per_chip = 8;
  config.seed = 99;
  sim::ChipPopulation lot(config);
  Rng rng = lot.measurement_rng();

  std::printf("MLP modeling attack on n-XOR arbiter PUFs "
              "(35/25/25 hidden units, L-BFGS, stable CRPs only)\n\n");
  std::printf("%-4s %-12s %-12s %-14s %-14s\n", "n", "stable CRPs", "train size",
              "test accuracy", "ms per CRP");

  for (std::size_t n : {1u, 2u, 4u, 6u}) {
    puf::AttackDatasetConfig dcfg;
    dcfg.n_pufs = n;
    dcfg.challenges = 10'000;
    dcfg.trials = 5'000;
    const puf::AttackDataset data =
        puf::build_stable_attack_dataset(lot.chip(0), dcfg, rng);

    puf::MlpAttackConfig acfg;  // paper topology by default
    acfg.mlp.activation = ml::Activation::kTanh;
    acfg.lbfgs.max_iterations = 100;
    const puf::AttackResult res = puf::run_mlp_attack(data, acfg);
    std::printf("%-4zu %-12zu %-12zu %-14.3f %-14.3f\n", n,
                data.train.size() + data.test.size(), res.train_size,
                res.test_accuracy, res.ms_per_crp());
  }

  std::printf("\nAt a fixed measurement budget the attack decays with n — the paper "
              "measured the same shape on silicon and concluded n >= 10 is needed "
              "(with ~1M CRPs, accuracy for n < 10 still exceeds 90%%).\n");
  std::printf("The classic logistic-regression XOR attack is also available: see "
              "puf::run_lr_xor_attack.\n");
  return 0;
}
