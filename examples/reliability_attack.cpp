// Reliability-attack demo (Becker [9]): why the deployed XOR output being
// freely queryable is dangerous, and how the paper's stable-only protocol
// closes the side channel.
#include <cmath>
#include <cstdio>
#include <span>

#include "common/math.hpp"
#include "puf/attack.hpp"
#include "puf/attack_reliability.hpp"
#include "puf/selection.hpp"
#include "sim/population.hpp"

int main() {
  using namespace xpuf;
  const std::size_t n = 2;

  sim::PopulationConfig config;
  config.n_chips = 1;
  config.n_pufs_per_chip = n;
  config.seed = 404;
  sim::ChipPopulation lot(config);
  auto& chip = lot.chip(0);
  Rng rng(5);

  std::printf("attacker queries each of 5,000 random challenges 1,000 times on the\n"
              "deployed %zu-XOR chip (fuses blown — only the XOR output is visible)\n\n",
              n);
  const auto obs =
      puf::collect_xor_reliability_crps(chip, 5'000, 1'000, sim::Environment::nominal(), rng);
  double unstable = 0;
  for (const auto& o : obs) unstable += o.reliability() < 1.0;
  std::printf("observed reliability signal: %.1f%% of challenges show flips\n\n",
              100.0 * unstable / static_cast<double>(obs.size()));

  puf::AttackDatasetConfig dcfg;
  dcfg.n_pufs = n;
  dcfg.challenges = 4'000;
  dcfg.trials = 1'000;
  const puf::AttackDataset holdout = puf::build_stable_attack_dataset(chip, dcfg, rng);

  puf::ReliabilityAttackConfig acfg;
  acfg.n_pufs = n;
  const puf::ReliabilityAttackResult res =
      puf::run_reliability_attack(obs, holdout.train, acfg);

  std::printf("CMA-ES reliability attack: recovered %zu/%zu constituents "
              "(%zu slots, %zu evaluations)\n",
              res.recovered.size(), n, res.restarts_used, res.evaluations);
  for (std::size_t i = 0; i < res.recovered.size(); ++i) {
    double best = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      const linalg::Vector wt =
          chip.device_for_analysis(p).reduced_weights(sim::Environment::nominal());
      best = std::max(best, std::fabs(pearson_correlation(
                                std::span<const double>(res.recovered[i].data(), wt.size()),
                                std::span<const double>(wt.data(), wt.size()))));
    }
    std::printf("  recovered[%zu]: fitness %.3f, best |corr| to true silicon %.3f\n", i,
                res.fitness[i], best);
  }
  std::printf("XOR prediction accuracy of the stolen model: %.1f%%\n\n",
              100.0 * puf::reliability_attack_accuracy(res, holdout.test));

  std::printf("the defense built into the paper's protocol: only 100%%-stable CRPs "
              "are ever exchanged, so an eavesdropper's transcript has reliability "
              "== 1 everywhere — zero signal for this attack (see "
              "bench_ext2_reliability_attack for the quantified contrast).\n");
  return 0;
}
