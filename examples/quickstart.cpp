// Quickstart: fabricate a simulated XOR arbiter PUF chip, look at soft
// responses, and see why stability selection matters.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "sim/population.hpp"

int main() {
  using namespace xpuf;

  // A fab lot of one chip: 10 parallel 32-stage arbiter PUFs behind an XOR.
  sim::PopulationConfig config;
  config.n_chips = 1;
  config.n_pufs_per_chip = 10;
  config.seed = 7;  // process variation is deterministic per seed
  sim::ChipPopulation lot(config);
  sim::XorPufChip& chip = lot.chip(0);
  Rng rng = lot.measurement_rng();

  std::printf("chip %zu: %zu arbiter PUFs x %zu stages each\n\n", chip.id(),
              chip.puf_count(), chip.stages());

  const auto env = sim::Environment::nominal();  // 0.9 V / 25 C

  // Apply one random challenge and read the XOR response a few times.
  const sim::Challenge challenge = sim::random_challenge(chip.stages(), rng);
  std::printf("one challenge, ten one-shot XOR reads: ");
  for (int i = 0; i < 10; ++i)
    std::printf("%d", chip.xor_response(challenge, env, rng) ? 1 : 0);
  std::printf("\n(if these disagree, the challenge is unstable for the XOR output)\n\n");

  // Soft responses: the on-chip counter statistic the whole paper rests on.
  std::printf("per-PUF soft responses over 100,000 evaluations:\n");
  for (std::size_t p = 0; p < chip.puf_count(); ++p) {
    const sim::SoftMeasurement m =
        chip.measure_soft_response(p, challenge, env, 100'000, rng);
    std::printf("  PUF %zu: soft = %.5f  %s\n", p, m.soft_response(),
                m.fully_stable() ? "(100% stable)" : "(UNSTABLE)");
  }

  // Stability of the XOR gets exponentially worse with width.
  std::printf("\nfraction of 1,000 random challenges 100%% stable on all first n PUFs:\n");
  std::size_t stable_counts[10] = {};
  for (int i = 0; i < 1'000; ++i) {
    const auto c = sim::random_challenge(chip.stages(), rng);
    for (std::size_t p = 0; p < 10; ++p) {
      if (!chip.measure_soft_response(p, c, env, 10'000, rng).fully_stable()) break;
      ++stable_counts[p];
    }
  }
  for (std::size_t n = 1; n <= 10; ++n)
    std::printf("  n=%2zu: %5.1f%%\n", n, 0.1 * static_cast<double>(stable_counts[n - 1]));
  std::printf("\n-> ~0.8^n, the paper's Fig 3. See authentication_demo for the fix.\n");
  return 0;
}
