// Key-generation walkthrough: derive a 256-bit key from a 10-XOR PUF with
// the code-offset fuzzy extractor, using the paper's stable-challenge
// selection to keep the error-correction budget trivial.
#include <cstdio>

#include "puf/key_generation.hpp"
#include "puf/selection.hpp"
#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"

int main() {
  using namespace xpuf;
  const std::size_t n_pufs = 10;

  sim::PopulationConfig config;
  config.n_chips = 2;
  config.n_pufs_per_chip = n_pufs;
  config.seed = 33;
  sim::ChipPopulation lot(config);
  sim::XorPufChip& chip = lot.chip(0);
  Rng rng = lot.measurement_rng();

  // Enroll and tighten thresholds over the V/T grid (as in the paper).
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 5'000;
  ecfg.trials = 10'000;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);
  const auto eval = puf::random_challenges(chip.stages(), 2'000, rng);
  std::vector<puf::EvaluationBlock> blocks;
  for (const auto& env : sim::paper_corner_grid())
    blocks.push_back(puf::measure_evaluation_block(chip, eval, env, 10'000, rng));
  model.set_betas(puf::find_betas(model, blocks).betas);

  // Select the 127 key challenges from the predicted-stable set and
  // generate the key with a modest BCH(127, 113, t=2).
  puf::ModelBasedSelector selector(model, n_pufs);
  const puf::SelectionResult sel = selector.select(127, rng);
  std::printf("selected %zu stable key challenges (yield %.3f%%)\n",
              sel.challenges.size(), 100.0 * sel.yield());

  const puf::FuzzyExtractor fx(puf::KeyGenConfig{.bch_m = 7, .bch_t = 2});
  const puf::KeyGenResult gen =
      fx.generate(chip, sel.challenges, sim::Environment::nominal(), rng);
  std::printf("derived key:  %s\n", crypto::to_hex(gen.key).c_str());
  std::printf("helper data:  %zu public bits (+ the challenge list)\n\n",
              gen.helper.offset.size());

  std::printf("reproduction across the V/T grid (one fresh read each):\n");
  for (const auto& env : sim::paper_corner_grid()) {
    const puf::KeyRepResult rep = fx.reproduce(chip, gen.helper, env, rng);
    std::printf("  %-10s %s (errors corrected: %zu)\n", env.label().c_str(),
                rep.ok && rep.key == gen.key ? "KEY OK " : "FAILED",
                rep.errors_corrected);
  }

  std::printf("\na cloned helper on different silicon:\n");
  const puf::KeyRepResult stolen =
      fx.reproduce(lot.chip(1), gen.helper, sim::Environment::nominal(), rng);
  std::printf("  chip 1 reproduction: %s\n",
              stolen.ok && stolen.key == gen.key ? "KEY LEAKED (BUG!)"
                                                 : "failed — key stays bound to chip 0");
  return 0;
}
