// Voltage/temperature stability: how CRPs that look stable at the nominal
// corner behave across the paper's 3x3 V/T grid, and how the beta-tightened
// selection survives where nominal-only selection does not.
#include <cstdio>

#include "puf/selection.hpp"
#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"

int main() {
  using namespace xpuf;
  const std::size_t n_pufs = 10;

  sim::PopulationConfig config;
  config.n_chips = 1;
  config.n_pufs_per_chip = n_pufs;
  config.seed = 11;
  sim::ChipPopulation lot(config);
  sim::XorPufChip& chip = lot.chip(0);
  Rng rng = lot.measurement_rng();

  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 5'000;
  ecfg.trials = 10'000;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);

  const auto eval = puf::random_challenges(chip.stages(), 2'000, rng);
  const auto nominal_block = puf::measure_evaluation_block(
      chip, eval, sim::Environment::nominal(), 10'000, rng);
  std::vector<puf::EvaluationBlock> grid_blocks;
  for (const auto& env : sim::paper_corner_grid())
    grid_blocks.push_back(puf::measure_evaluation_block(chip, eval, env, 10'000, rng));

  puf::ServerModel nominal_model = model;
  nominal_model.set_betas(puf::find_betas(model, {nominal_block}).betas);
  puf::ServerModel vt_model = model;
  vt_model.set_betas(puf::find_betas(model, grid_blocks).betas);

  std::printf("betas: nominal-only %.2f/%.2f   all-V/T %.2f/%.2f\n\n",
              nominal_model.betas().beta0, nominal_model.betas().beta1,
              vt_model.betas().beta0, vt_model.betas().beta1);

  // Select with each model, then re-measure the selected challenges at
  // every corner and count survivors.
  puf::ModelBasedSelector nominal_sel(nominal_model, n_pufs);
  puf::ModelBasedSelector vt_sel(vt_model, n_pufs);
  const auto batch_nominal = nominal_sel.select(64, rng);
  const auto batch_vt = vt_sel.select(64, rng);

  std::printf("%-10s | %-26s | %-26s\n", "corner", "nominal-beta batch unstable",
              "V/T-beta batch unstable");
  for (const auto& env : sim::paper_corner_grid()) {
    auto count_unstable = [&](const std::vector<sim::Challenge>& challenges) {
      std::size_t bad = 0;
      for (const auto& c : challenges) {
        for (std::size_t p = 0; p < n_pufs; ++p) {
          if (!chip.measure_soft_response(p, c, env, 10'000, rng).fully_stable()) {
            ++bad;
            break;
          }
        }
      }
      return bad;
    };
    std::printf("%-10s | %15zu / 64         | %15zu / 64\n", env.label().c_str(),
                count_unstable(batch_nominal.challenges),
                count_unstable(batch_vt.challenges));
  }

  std::printf("\nselection yield: nominal betas %.3f%%, V/T betas %.3f%% — the V/T "
              "margin costs usable CRPs but buys corner-proof stability without ever "
              "testing the chip at those corners per-CRP (paper Sec 5.2).\n",
              100.0 * batch_nominal.yield(), 100.0 * batch_vt.yield());
  return 0;
}
