// End-to-end walkthrough of the paper's model-assisted XOR PUF lifecycle:
// enrollment through fused taps, linear-regression model extraction,
// threshold derivation + beta tightening, fuse burn, and finally
// zero-Hamming-distance authentication across voltage/temperature corners.
#include <cstdio>

#include "common/error.hpp"
#include "puf/authentication.hpp"
#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"

int main() {
  using namespace xpuf;
  const std::size_t n_pufs = 10;

  sim::PopulationConfig config;
  config.n_chips = 2;  // chip 0 is genuine, chip 1 plays the counterfeit
  config.n_pufs_per_chip = n_pufs;
  config.seed = 2017;
  sim::ChipPopulation lot(config);
  sim::XorPufChip& chip = lot.chip(0);
  Rng rng = lot.measurement_rng();

  std::printf("=== Enrollment (paper Fig 6) ===\n");
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 5'000;
  ecfg.trials = 10'000;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);
  std::printf("fitted %zu per-PUF linear models from soft responses "
              "(r^2 of PUF 0: %.3f, fit time %.2f ms)\n",
              model.puf_count(), model.puf(0).train_r_squared,
              model.puf(0).fit_time_ms);
  std::printf("raw thresholds of PUF 0: Thr(0)=%.3f Thr(1)=%.3f\n",
              model.puf(0).thresholds.thr0, model.puf(0).thresholds.thr1);

  std::printf("\n=== Threshold adjustment over the V/T grid (paper Sec 5) ===\n");
  const auto eval_challenges = puf::random_challenges(chip.stages(), 2'000, rng);
  std::vector<puf::EvaluationBlock> blocks;
  for (const auto& env : sim::paper_corner_grid())
    blocks.push_back(puf::measure_evaluation_block(chip, eval_challenges, env, 10'000, rng));
  const puf::BetaSearchResult betas = puf::find_betas(model, blocks);
  model.set_betas(betas.betas);
  std::printf("beta0 = %.2f, beta1 = %.2f (violations at 1.00/1.00: %zu -> %zu)\n",
              betas.betas.beta0, betas.betas.beta1, betas.violations_before,
              betas.violations_after);

  std::printf("\n=== Deployment: burn the enrollment fuses ===\n");
  chip.blow_fuses();
  std::printf("chip deployed; individual PUF taps now read as: ");
  try {
    chip.individual_response(0, eval_challenges[0], sim::Environment::nominal(), rng);
    std::printf("accessible (BUG!)\n");
  } catch (const xpuf::AccessError& e) {
    std::printf("AccessError (\"%s\") — as intended\n", e.what());
  }

  std::printf("\n=== Authentication (paper Fig 7), zero Hamming distance ===\n");
  puf::AuthenticationServer server(model, n_pufs, {.challenge_count = 64});
  for (const auto& env : sim::paper_corner_grid()) {
    const auto genuine = server.authenticate(chip, env, rng);
    const auto fake = server.authenticate(lot.chip(1), env, rng);
    std::printf("  %-10s genuine: %s (%zu/%zu mismatches)   counterfeit: %s "
                "(%zu mismatches)\n",
                env.label().c_str(), genuine.approved ? "APPROVED" : "DENIED ",
                genuine.mismatches, genuine.challenges_used,
                fake.approved ? "APPROVED (BUG!)" : "DENIED",
                fake.mismatches);
  }

  std::printf("\n=== Why selection matters: random challenges, same chip ===\n");
  std::size_t failures = 0;
  const int rounds = 10;
  for (int i = 0; i < rounds; ++i)
    if (!server.authenticate(chip, {0.8, 60.0}, rng, /*model_selected=*/false).approved)
      ++failures;
  std::printf("random-challenge zero-HD authentication at 0.8V/60C: %d/%d rounds "
              "FAILED on the genuine chip\n",
              static_cast<int>(failures), rounds);
  std::printf("model-selected challenges keep the genuine chip at zero mismatches — "
              "the paper's central claim.\n");
  return 0;
}
