// Challenge-selection strategies side by side: the paper's model-based
// selector (works on never-measured challenges, no device access after
// enrollment) vs the measurement-based prior art [1] (needs per-challenge
// testing through the fused taps).
#include <cstdio>

#include "common/timer.hpp"
#include "puf/selection.hpp"
#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"

int main() {
  using namespace xpuf;
  const std::size_t n_pufs = 10;

  sim::PopulationConfig config;
  config.n_chips = 1;
  config.n_pufs_per_chip = n_pufs;
  config.seed = 5;
  sim::ChipPopulation lot(config);
  sim::XorPufChip& chip = lot.chip(0);
  Rng rng = lot.measurement_rng();

  // Enroll + nominal beta adjustment.
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 5'000;
  ecfg.trials = 10'000;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);
  const auto eval = puf::random_challenges(chip.stages(), 3'000, rng);
  const auto block = puf::measure_evaluation_block(chip, eval, sim::Environment::nominal(),
                                                   10'000, rng);
  model.set_betas(puf::find_betas(model, {block}).betas);

  const std::size_t quota = 128;

  std::printf("goal: %zu challenges stable on ALL %zu PUFs (XOR width %zu)\n\n", quota,
              n_pufs, n_pufs);

  {
    Timer timer;
    puf::ModelBasedSelector selector(model, n_pufs);
    const puf::SelectionResult res = selector.select(quota, rng);
    std::printf("model-based selector (paper):\n");
    std::printf("  candidates tried: %zu, yield %.3f%%, wall time %.1f ms\n",
                res.candidates_tried, 100.0 * res.yield(), timer.millis());
    std::printf("  device measurements needed: 0 (pure server-side prediction)\n\n");
  }
  {
    Timer timer;
    puf::MeasurementBasedSelector selector(chip, sim::Environment::nominal(), 10'000,
                                           n_pufs);
    const puf::SelectionResult res = selector.select(quota, rng);
    std::printf("measurement-based selector (prior art [1]):\n");
    std::printf("  candidates tried: %zu, yield %.3f%%, wall time %.1f ms\n",
                res.candidates_tried, 100.0 * res.yield(), timer.millis());
    std::printf("  device measurements needed: ~%zu challenge x 10,000-evaluation "
                "counter runs\n\n",
                res.candidates_tried);
  }

  std::printf("The model-based selector trades a small one-time enrollment cost "
              "(5,000 measured CRPs) for unlimited server-side selection afterwards — "
              "and its beta margin also covers V/T corners the measurement-based "
              "selector never saw (run vt_stability to see that part).\n");
  return 0;
}
