#!/usr/bin/env python3
"""Validates a bench timing artifact (bench_out/<name>_timing.json).

Every BenchTimer writes the same flat record: name/seconds/threads/items
plus any bench-specific numeric fields attached via set_field. This gate
checks that structural schema, and — when the record carries an A/B pair
(scalar_seconds / batched_seconds from bench_scan_throughput --mode both,
or materialized_seconds / streaming_seconds from bench_enroll_throughput)
— that the optimized side has not regressed behind its reference path.

The default A/B tolerance is parity with 15% slack, not the much larger
speedup the batched core actually delivers: CI shares one noisy core, and
a throughput gate that flakes gets deleted. Tighten with --min-speedup
(e.g. --min-speedup 2.0) on quiet hardware.

Usage: check_bench_regression.py <timing.json> [--min-speedup X]
"""
import json
import sys


def fail(msg: str) -> None:
    print(f"bench timing: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    args = [a for a in sys.argv[1:]]
    min_speedup = None
    if "--min-speedup" in args:
        i = args.index("--min-speedup")
        try:
            min_speedup = float(args[i + 1])
        except (IndexError, ValueError):
            fail("--min-speedup needs a numeric argument")
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    try:
        with open(args[0], "r", encoding="utf-8") as f:
            record = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {args[0]}: {e}")

    if not isinstance(record, dict):
        fail("timing record is not a JSON object")
    if not isinstance(record.get("name"), str) or not record["name"]:
        fail("'name' absent or not a nonempty string")
    for key in ("seconds", "threads", "items"):
        if not isinstance(record.get(key), (int, float)) or isinstance(record.get(key), bool):
            fail(f"'{key}' absent or not numeric")
    if record["seconds"] < 0:
        fail("'seconds' is negative")
    if record["threads"] < 1:
        fail("'threads' is below one")
    for key, value in record.items():
        if key == "name":
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(f"extra field '{key}' is not numeric")

    summary = f"{record['name']}: {record['seconds']:.3f}s, {record['threads']} threads"
    # (reference field, optimized field, label) — each bench writes one pair.
    ab_pairs = [
        ("scalar_seconds", "batched_seconds", "batched"),
        ("materialized_seconds", "streaming_seconds", "streaming"),
        ("uncached_seconds", "cached_seconds", "lru-cached"),
        # bench_service_load --transport socket: the in-process lockstep
        # oracle (opt) replays the socket run's workload (ref); parity-with-
        # slack keeps the oracle from quietly regressing to the point where
        # reconciliation dominates the socket job.
        ("socket_seconds", "lockstep_seconds", "lockstep-oracle"),
        # bench_auth_throughput: serial per-candidate screening walk (ref)
        # vs the FeatureBlock-batched screener, asserted bit-identical
        # in-run before timing.
        ("screen_serial_seconds", "screen_batched_seconds", "batched-screening"),
        # bench_auth_throughput: request-time live screening (ref) vs
        # pre-screened pool drains; the acceptance-scale floor (>= 3x on the
        # million-device fleet) lives in the bench's own --require-speedup.
        ("issue_live_seconds", "issue_pooled_seconds", "pooled-issue"),
    ]
    found_pair = False
    for ref_key, opt_key, label in ab_pairs:
        ref = record.get(ref_key)
        opt = record.get(opt_key)
        if ref is None or opt is None:
            continue
        found_pair = True
        if opt <= 0 or ref <= 0:
            fail(f"A/B pair {ref_key}/{opt_key} present but a side is non-positive")
        speedup = ref / opt
        floor = min_speedup if min_speedup is not None else 1.0 / 1.15
        if speedup < floor:
            fail(f"{label} speedup {speedup:.2f} below floor {floor:.2f} "
             f"({ref_key} {ref:.4f}s, {opt_key} {opt:.4f}s)")
        summary += f", {label} speedup {speedup:.2f} (floor {floor:.2f})"
    if min_speedup is not None and not found_pair:
        fail("--min-speedup given but record has no A/B pair")

    print(f"bench timing: OK: {summary}")


if __name__ == "__main__":
    main()
