// xpuf_cli — command-line driver for the simulated XOR-PUF lifecycle.
//
// A "lot file" captures the fabrication parameters (chips are regenerated
// deterministically from it — the simulator plays the role of the fab), and
// server models travel as model files, so the phases can run as separate
// invocations just like a real enrollment line / authentication server:
//
//   xpuf_cli fabricate    --out lot.csv --chips 2 --pufs 10 --seed 2017
//   xpuf_cli enroll       --lot lot.csv --chip 0 --train 5000 --trials 10000
//                         --vt --out model.csv          (one command line)
//   xpuf_cli authenticate --lot lot.csv --chip 0 --model model.csv
//                         --voltage 0.8 --temperature 60 --count 64
//   xpuf_cli attack       --lot lot.csv --chip 0 --n 4 --crps 20000
//   xpuf_cli metrics      --lot lot.csv --n 10
#include <cstdio>
#include <string>

#include "analysis/puf_metrics.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "puf/attack.hpp"
#include "puf/authentication.hpp"
#include "puf/model_store.hpp"
#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"

namespace {

using namespace xpuf;

void write_lot(const sim::PopulationConfig& cfg, const std::string& path) {
  CsvWriter csv(path, {"chips", "pufs_per_chip", "stages", "seed"});
  csv.write_row(std::vector<std::string>{
      std::to_string(cfg.n_chips), std::to_string(cfg.n_pufs_per_chip),
      std::to_string(cfg.device.stages), std::to_string(cfg.seed)});
}

sim::PopulationConfig read_lot(const std::string& path) {
  const CsvData data = read_csv(path);
  if (data.rows.empty()) throw ParseError("lot file has no data row: " + path);
  sim::PopulationConfig cfg;
  cfg.n_chips = std::stoull(data.rows[0][data.column("chips")]);
  cfg.n_pufs_per_chip = std::stoull(data.rows[0][data.column("pufs_per_chip")]);
  cfg.device.stages = std::stoull(data.rows[0][data.column("stages")]);
  cfg.seed = std::stoull(data.rows[0][data.column("seed")]);
  return cfg;
}

int cmd_fabricate(const Cli& cli) {
  sim::PopulationConfig cfg;
  cfg.n_chips = static_cast<std::size_t>(cli.get_int("chips", 2));
  cfg.n_pufs_per_chip = static_cast<std::size_t>(cli.get_int("pufs", 10));
  cfg.device.stages = static_cast<std::size_t>(cli.get_int("stages", 32));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2017));
  const std::string out = cli.get("out", "lot.csv");
  write_lot(cfg, out);
  std::printf("fabricated lot: %zu chips x %zu PUFs x %zu stages (seed %llu) -> %s\n",
              cfg.n_chips, cfg.n_pufs_per_chip, cfg.device.stages,
              static_cast<unsigned long long>(cfg.seed), out.c_str());
  return 0;
}

int cmd_enroll(const Cli& cli) {
  const sim::PopulationConfig cfg = read_lot(cli.get("lot", "lot.csv"));
  sim::ChipPopulation pop(cfg);
  const auto chip_idx = static_cast<std::size_t>(cli.get_int("chip", 0));
  auto& chip = pop.chip(chip_idx);
  Rng rng(static_cast<std::uint64_t>(cli.get_int("rng", 1)));

  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = static_cast<std::size_t>(cli.get_int("train", 5'000));
  ecfg.trials = static_cast<std::uint64_t>(cli.get_int("trials", 10'000));
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);
  std::printf("enrolled chip %zu: %zu PUF models, r^2[0] = %.3f\n", chip_idx,
              model.puf_count(), model.puf(0).train_r_squared);

  const auto eval_n = static_cast<std::size_t>(cli.get_int("eval", 3'000));
  const auto eval = puf::random_challenges(chip.stages(), eval_n, rng);
  std::vector<puf::EvaluationBlock> blocks;
  if (cli.has("vt")) {
    for (const auto& env : sim::paper_corner_grid())
      blocks.push_back(puf::measure_evaluation_block(chip, eval, env, ecfg.trials, rng));
    std::printf("beta adjustment over the 9-corner V/T grid...\n");
  } else {
    blocks.push_back(puf::measure_evaluation_block(chip, eval,
                                                   sim::Environment::nominal(),
                                                   ecfg.trials, rng));
  }
  const puf::BetaSearchResult betas = puf::find_betas(model, blocks);
  model.set_betas(betas.betas);
  std::printf("betas: %.2f / %.2f (converged: %s)\n", betas.betas.beta0,
              betas.betas.beta1, betas.converged ? "yes" : "no");

  const std::string out = cli.get("out", "model.csv");
  puf::save_server_model(model, out);
  std::printf("server model written to %s\n", out.c_str());
  return 0;
}

int cmd_authenticate(const Cli& cli) {
  const sim::PopulationConfig cfg = read_lot(cli.get("lot", "lot.csv"));
  sim::ChipPopulation pop(cfg);
  const auto chip_idx = static_cast<std::size_t>(cli.get_int("chip", 0));
  puf::ServerModel model = puf::load_server_model(cli.get("model", "model.csv"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("rng", 2)));

  const sim::Environment env{cli.get_double("voltage", 0.9),
                             cli.get_double("temperature", 25.0)};
  puf::AuthenticationPolicy policy;
  policy.challenge_count = static_cast<std::size_t>(cli.get_int("count", 64));
  policy.max_hamming_distance =
      static_cast<std::size_t>(cli.get_int("max-hd", 0));
  puf::AuthenticationServer server(model, model.puf_count(), policy);
  const puf::AuthenticationOutcome out =
      server.authenticate(pop.chip(chip_idx), env, rng,
                          !cli.has("random-challenges"));
  std::printf("corner %s, %zu challenges (%s): %s — %zu mismatches\n",
              env.label().c_str(), out.challenges_used,
              cli.has("random-challenges") ? "random" : "model-selected",
              out.approved ? "APPROVED" : "DENIED", out.mismatches);
  return out.approved ? 0 : 1;
}

int cmd_attack(const Cli& cli) {
  const sim::PopulationConfig cfg = read_lot(cli.get("lot", "lot.csv"));
  sim::ChipPopulation pop(cfg);
  const auto chip_idx = static_cast<std::size_t>(cli.get_int("chip", 0));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("rng", 3)));

  puf::AttackDatasetConfig dcfg;
  dcfg.n_pufs = static_cast<std::size_t>(cli.get_int("n", 4));
  dcfg.challenges = static_cast<std::size_t>(cli.get_int("crps", 20'000));
  dcfg.trials = static_cast<std::uint64_t>(cli.get_int("trials", 5'000));
  const puf::AttackDataset data =
      puf::build_stable_attack_dataset(pop.chip(chip_idx), dcfg, rng);
  std::printf("stable CRPs: %zu of %zu measured (%.1f%%)\n",
              data.train.size() + data.test.size(), data.challenges_measured,
              100.0 * data.stable_fraction);

  puf::MlpAttackConfig acfg;
  acfg.mlp.activation = ml::Activation::kTanh;
  acfg.lbfgs.max_iterations = static_cast<std::size_t>(cli.get_int("iters", 150));
  const puf::AttackResult res = puf::run_mlp_attack(data, acfg);
  std::printf("MLP (35/25/25, L-BFGS) attack on %zu-XOR: test accuracy %.3f "
              "(train %.3f, %.3f ms/CRP)\n",
              dcfg.n_pufs, res.test_accuracy, res.train_accuracy, res.ms_per_crp());
  return 0;
}

int cmd_metrics(const Cli& cli) {
  const sim::PopulationConfig cfg = read_lot(cli.get("lot", "lot.csv"));
  sim::ChipPopulation pop(cfg);
  Rng rng(static_cast<std::uint64_t>(cli.get_int("rng", 4)));
  const auto n = static_cast<std::size_t>(
      cli.get_int("n", static_cast<std::int64_t>(cfg.n_pufs_per_chip)));
  const auto challenges = static_cast<std::size_t>(cli.get_int("challenges", 2'000));

  std::printf("lot metrics at nominal corner (XOR width %zu, %zu challenges):\n", n,
              challenges);
  std::printf("  uniformity (chip 0):    %.4f (ideal 0.5)\n",
              analysis::uniformity(pop.chip(0), n, challenges,
                                   sim::Environment::nominal(), rng));
  if (pop.size() >= 2)
    std::printf("  uniqueness (lot):       %.4f (ideal 0.5)\n",
                analysis::uniqueness(pop, n, challenges, sim::Environment::nominal(),
                                     rng));
  std::printf("  reliability error:      %.4f at nominal, %.4f at 0.8V/60C "
              "(ideal 0)\n",
              analysis::reliability_error(pop.chip(0), n, challenges / 4, 5,
                                          sim::Environment::nominal(), rng),
              analysis::reliability_error(pop.chip(0), n, challenges / 4, 5,
                                          {0.8, 60.0}, rng));
  return 0;
}

void usage() {
  std::printf(
      "xpuf_cli <command> [options]\n"
      "commands:\n"
      "  fabricate    --out lot.csv --chips N --pufs M --stages K --seed S\n"
      "  enroll       --lot lot.csv --chip I --train N --trials K [--vt] --out model.csv\n"
      "  authenticate --lot lot.csv --chip I --model model.csv [--voltage V]\n"
      "               [--temperature T] [--count N] [--max-hd H] [--random-challenges]\n"
      "  attack       --lot lot.csv --chip I --n W --crps N [--iters I]\n"
      "  metrics      --lot lot.csv [--n W] [--challenges N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Cli cli(argc, argv);
    if (cli.positional().empty()) {
      usage();
      return 2;
    }
    const std::string& command = cli.positional().front();
    if (command == "fabricate") return cmd_fabricate(cli);
    if (command == "enroll") return cmd_enroll(cli);
    if (command == "authenticate") return cmd_authenticate(cli);
    if (command == "attack") return cmd_attack(cli);
    if (command == "metrics") return cmd_metrics(cli);
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
