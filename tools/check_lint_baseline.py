#!/usr/bin/env python3
"""Gates a CI run on the xpuf_lint JSON report and the suppression budget.

The report (xpuf_lint --format json) is the SARIF-lite artifact the release
job drops under bench_out/ci/. This gate enforces two policies:

  * zero violations — every finding is either fixed or carries an explicit
    allow marker, so a red report means unreviewed code;
  * shrink-only suppression budget — per-rule allow()/allow-file() counts
    may never exceed tools/lint_baseline.json. A rule absent from the
    baseline has budget zero, so new suppressions of a new rule fail until
    they are deliberately budgeted. Verified guarded-by markers cost no
    budget and are not counted here.

When a rule's count drops below its budget the gate stays green but says
so: ratchet the baseline down in the same change that removed the markers,
or the headroom silently becomes room for regressions.

Usage: check_lint_baseline.py <lint_report.json> <lint_baseline.json>
"""
import json
import sys


def fail(msg: str) -> None:
    print(f"lint baseline: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")
    if not isinstance(doc, dict):
        fail(f"{path} is not a JSON object")
    return doc


def counts(doc: dict, path: str, key: str) -> dict:
    table = doc.get(key)
    if not isinstance(table, dict):
        fail(f"{path}: '{key}' absent or not an object")
    for rule, n in table.items():
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            fail(f"{path}: '{key}' entry {rule!r} is not a non-negative integer")
    return table


def main() -> None:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    report_path, baseline_path = sys.argv[1], sys.argv[2]

    report = load(report_path)
    if report.get("version") != 1:
        fail(f"{report_path}: unsupported report version {report.get('version')!r}")
    stats = report.get("stats")
    if not isinstance(stats, dict):
        fail(f"{report_path}: 'stats' absent or not an object")
    if not isinstance(report.get("results"), list):
        fail(f"{report_path}: 'results' absent or not a list")

    total = stats.get("violations_total")
    if not isinstance(total, int) or isinstance(total, bool):
        fail(f"{report_path}: 'stats.violations_total' absent or not an integer")
    if total != len(report["results"]):
        fail(f"{report_path}: violations_total={total} but {len(report['results'])} results")
    if total > 0:
        for v in report["results"][:10]:
            print(f"  {v.get('file')}:{v.get('line')}: [{v.get('ruleId')}] "
                  f"{v.get('message')}", file=sys.stderr)
        fail(f"{total} lint violation(s); fix them or add reviewed allow markers")

    baseline = load(baseline_path)
    if baseline.get("version") != 1:
        fail(f"{baseline_path}: unsupported baseline version {baseline.get('version')!r}")
    budget = counts(baseline, baseline_path, "suppressions")
    used = counts(stats, report_path, "suppressions_by_rule")

    over = []
    slack = []
    for rule in sorted(set(budget) | set(used)):
        u, b = used.get(rule, 0), budget.get(rule, 0)
        if u > b:
            over.append(f"{rule}: {u} suppression(s), budget {b}")
        elif u < b:
            slack.append(f"{rule}: {u} < budget {b}")
    if over:
        for line in over:
            print(f"  {line}", file=sys.stderr)
        fail("suppression budget exceeded; fix the findings instead of "
             "suppressing them (the budget only ratchets down)")
    if slack:
        print("lint baseline: OK (ratchet available: "
              + "; ".join(slack) + " — tighten tools/lint_baseline.json)")
    else:
        print("lint baseline: OK")


if __name__ == "__main__":
    main()
