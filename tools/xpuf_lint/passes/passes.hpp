// xpuf_lint semantic passes — project-wide checks over the cross-TU index.
//
// Unlike the per-file rules in lint.cpp, each pass sees the whole tree at
// once: the include graph (layering), every parallel region and RNG binding
// (determinism), the paired halves of the wire codec (wire-pairing), and
// every MetricsRegistry counter registration (metrics-accounting). Passes
// return raw violations; the engine (engine.hpp) applies suppressions and
// guarded-by verification afterwards, so a pass never needs to know about
// allow comments.
#pragma once

#include <vector>

#include "index/index.hpp"
#include "lint.hpp"

namespace xpuf::lint {

/// Rule `layering`: enforces the declared module DAG
/// (common <- linalg/crypto <- sim <- ml <- puf <- analysis/net) on every
/// resolved src/-internal include edge, and reports any cycle in the
/// observed module graph.
std::vector<Violation> pass_layering(const ProjectIndex& index);

/// Rules `parallel-rng` / `unordered-fp`: inside parallel_for /
/// parallel_reduce bodies, every Rng must be keyed off a per-item
/// StreamFamily::stream(i) — constructing an unkeyed Rng, calling
/// fork()/fork_base(), or drawing from a generator created outside the body
/// all make results depend on thread scheduling. Separately, iterating a
/// std::unordered_* container into an accumulation makes the result depend
/// on hash iteration order.
std::vector<Violation> pass_determinism(const ProjectIndex& index);

/// Rule `wire-pairing`: in a codec TU (wire.cpp or the enrollment-store's
/// record.cpp, together with its same-stem header), every put_uN must have a
/// byte-width-matching read_uN, every encode_X's put sequence must mirror
/// decode_X's read sequence, and each encode_X's reserve() constant must
/// equal the fixed byte footprint of its put calls.
std::vector<Violation> pass_wire_pairing(const ProjectIndex& index);

/// Rule `metrics-accounting`: every counter("name") registered under src/
/// must be incremented somewhere, and its value must be observable — a
/// .total() read, or the name appearing in a tests//bench/ audit.
std::vector<Violation> pass_metrics_accounting(const ProjectIndex& index);

}  // namespace xpuf::lint
