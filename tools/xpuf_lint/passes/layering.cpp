#include "passes/passes.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>

namespace xpuf::lint {

namespace {

/// The declared dependency closure: module -> modules it may include.
/// Kept transitively closed so the check is a single set lookup per edge.
const std::map<std::string, std::set<std::string>>& layer_dag() {
  static const std::map<std::string, std::set<std::string>> dag = {
      {"common", {}},
      {"linalg", {"common"}},
      {"crypto", {"common"}},
      {"sim", {"common", "linalg", "crypto"}},
      {"ml", {"common", "linalg", "crypto", "sim"}},
      {"puf", {"common", "linalg", "crypto", "sim", "ml"}},
      {"analysis", {"common", "linalg", "crypto", "sim", "ml", "puf"}},
      {"net", {"common", "linalg", "crypto", "sim", "ml", "puf"}},
  };
  return dag;
}

}  // namespace

std::vector<Violation> pass_layering(const ProjectIndex& index) {
  std::vector<Violation> out;
  // Observed module-level edges (cross-module, src/-internal only), with one
  // representative include edge each for violation anchoring.
  std::map<std::pair<std::string, std::string>, const IncludeEdge*> observed;
  for (const IncludeEdge& e : index.includes) {
    const std::string from = ProjectIndex::module_of(e.from);
    const std::string to = ProjectIndex::module_of(e.to);
    if (from.empty() || to.empty() || from == to) continue;
    if (!observed.count({from, to})) observed[{from, to}] = &e;

    const auto allowed = layer_dag().find(from);
    if (allowed == layer_dag().end()) {
      out.push_back({e.from, e.line, "layering",
                     "module '" + from + "' is not in the declared layering DAG; add it "
                     "to the layer table in tools/xpuf_lint/passes/layering.cpp"});
      continue;
    }
    if (!layer_dag().count(to)) {
      out.push_back({e.from, e.line, "layering",
                     "include of undeclared module '" + to + "' from '" + from + "'"});
      continue;
    }
    if (!allowed->second.count(to)) {
      out.push_back({e.from, e.line, "layering",
                     "illegal layer edge " + from + " -> " + to + ": '" + from +
                         "' may only include " +
                         (allowed->second.empty()
                              ? std::string("nothing")
                              : [&] {
                                  std::string s;
                                  for (const std::string& m : allowed->second)
                                    s += (s.empty() ? "" : ", ") + m;
                                  return s;
                                }())});
    }
  }

  // Cycle detection over the observed module graph (colors: 0 white, 1 on
  // stack, 2 done). The DAG table already forbids cycles among declared
  // modules, but fixture trees and future modules can observe edges the
  // table does not know; a cycle must be loud either way.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [edge, site] : observed) adj[edge.first].push_back(edge.second);
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  std::set<std::string> reported;
  // Iterative DFS with an explicit parent chain so the cycle path is
  // reconstructible.
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    for (const std::string& v : adj[u]) {
      if (color[v] == 1) {
        // Found a back edge u -> v: the cycle is the stack suffix from v.
        std::string path;
        bool in_cycle = false;
        for (const std::string& m : stack) {
          if (m == v) in_cycle = true;
          if (in_cycle) path += m + " -> ";
        }
        path += v;
        if (reported.insert(path).second) {
          const IncludeEdge* site = observed[{u, v}];
          out.push_back({site->from, site->line, "layering", "module cycle: " + path});
        }
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (const auto& [u, _] : adj)
    if (color[u] == 0) dfs(u);

  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.message) < std::tie(b.file, b.line, b.message);
  });
  return out;
}

}  // namespace xpuf::lint
