#include "passes/passes.hpp"

#include <algorithm>
#include <map>
#include <regex>
#include <string>

namespace xpuf::lint {

namespace {

bool path_has_prefix(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

/// True iff `file` has a statement mentioning `var` (as its own identifier,
/// not a member access) that ends in a `.method(` call — this admits both
/// the direct `var.add(1)` form and selection expressions like
/// `(ok ? approved : denied).add(1)`.
bool file_calls(const SourceFile& f, const std::string& var, const std::string& method) {
  const std::regex re("(^|[^\\w.])" + var + R"(\b[^;]*\.\s*)" + method + R"(\s*\()");
  return std::regex_search(f.code, re);
}

}  // namespace

std::vector<Violation> pass_metrics_accounting(const ProjectIndex& index) {
  // Group registration sites of src/ counters by metric name.
  std::map<std::string, std::vector<const CounterSite*>> by_name;
  for (const CounterSite& site : index.counters)
    if (path_has_prefix(site.file, "src/")) by_name[site.name].push_back(&site);

  std::vector<Violation> out;
  for (const auto& [name, sites] : by_name) {
    bool incremented = false;
    bool audited = false;
    for (const CounterSite* site : sites) {
      if (site->inline_add) incremented = true;
      if (site->inline_total) audited = true;
      if (site->bound_var.empty()) continue;
      const SourceFile* f = index.file(site->file);
      if (!f) continue;
      if (file_calls(*f, site->bound_var, "add")) incremented = true;
      if (file_calls(*f, site->bound_var, "total")) audited = true;
    }
    // An audit may also live outside src/: a tests/ or bench/ file that
    // names the metric (snapshot lookups, zero-drift ledgers) pins its value
    // to an independently-computed expectation.
    if (!audited) {
      const std::string quoted = "\"" + name + "\"";
      for (const SourceFile& f : index.files) {
        if (!path_has_prefix(f.rel_path, "tests/") && !path_has_prefix(f.rel_path, "bench/"))
          continue;
        if (f.code_with_strings.find(quoted) != std::string::npos) {
          audited = true;
          break;
        }
      }
    }

    const CounterSite* anchor = sites.front();
    if (!incremented) {
      out.push_back({anchor->file, anchor->line, "metrics-accounting",
                     "counter '" + name + "' is registered but never incremented; dead "
                     "metrics hide real gaps in the ledger — wire an add() or delete it"});
    } else if (!audited) {
      out.push_back({anchor->file, anchor->line, "metrics-accounting",
                     "counter '" + name + "' is incremented but its value is never "
                     "audited; add a tests//bench/ check that pins it to an "
                     "independently-computed expectation (or read its total in a "
                     "snapshot consumer)"});
    }
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.message) < std::tie(b.file, b.line, b.message);
  });
  return out;
}

}  // namespace xpuf::lint
