#include "passes/passes.hpp"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <string>

namespace xpuf::lint {

namespace {

/// 1-based line of a character offset, from precomputed newline prefix data.
std::size_t line_of(const std::vector<std::size_t>& newline_before, std::size_t pos) {
  // newline_before[i] == count of '\n' in code[0, i).
  return newline_before[pos] + 1;
}

std::vector<std::size_t> newline_prefix(const std::string& code) {
  std::vector<std::size_t> pre(code.size() + 1, 0);
  for (std::size_t i = 0; i < code.size(); ++i)
    pre[i + 1] = pre[i] + (code[i] == '\n' ? 1 : 0);
  return pre;
}

const std::regex& rng_decl_pattern() {
  static const std::regex re(R"(\bRng\s+(\w+)\s*[=({])");
  return re;
}

/// Every method on xpuf::Rng that advances generator state.
const std::regex& rng_draw_pattern() {
  static const std::regex re(
      R"((\w+)\s*\.\s*(next_u64|uniform|uniform_below|normal|bernoulli|binomial|shuffle|poisson_knuth|binomial_inversion)\s*\()");
  return re;
}

const std::regex& fork_pattern() {
  static const std::regex re(R"(\.\s*fork(_base)?\s*\()");
  return re;
}

/// Contiguous character spans of `mask` that are true.
std::vector<std::pair<std::size_t, std::size_t>> true_spans(const std::vector<bool>& mask) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::size_t begin = 0;
  bool in = false;
  for (std::size_t i = 0; i <= mask.size(); ++i) {
    const bool v = i < mask.size() && mask[i];
    if (v && !in) {
      begin = i;
      in = true;
    } else if (!v && in) {
      spans.emplace_back(begin, i);
      in = false;
    }
  }
  return spans;
}

void check_parallel_rng(const SourceFile& f, std::vector<Violation>& out) {
  const std::string& code = f.code;
  const std::vector<bool> region = mark_parallel_regions(code);
  const std::vector<std::size_t> pre = newline_prefix(code);

  // Every Rng identifier declared anywhere in this file — receivers of draw
  // calls are only checked when we know they are generators.
  std::set<std::string> file_rngs;
  for (auto it = std::sregex_iterator(code.begin(), code.end(), rng_decl_pattern());
       it != std::sregex_iterator(); ++it)
    file_rngs.insert((*it)[1].str());

  for (const auto& [begin, end] : true_spans(region)) {
    const std::string body = code.substr(begin, end - begin);

    // Rng declarations inside the body: keyed iff the declaring statement
    // reaches a StreamFamily::stream(i) call.
    std::set<std::string> declared_in_body;
    for (auto it = std::sregex_iterator(body.begin(), body.end(), rng_decl_pattern());
         it != std::sregex_iterator(); ++it) {
      const std::size_t at = static_cast<std::size_t>(it->position(0));
      declared_in_body.insert((*it)[1].str());
      std::size_t stmt_end = body.find(';', at);
      if (stmt_end == std::string::npos) stmt_end = body.size();
      const std::string stmt = body.substr(at, stmt_end - at);
      if (stmt.find(".stream(") == std::string::npos)
        out.push_back({f.rel_path, line_of(pre, begin + at), "parallel-rng",
                       "Rng '" + (*it)[1].str() +
                           "' constructed inside a parallel body without a per-item "
                           "stream key; bind it from StreamFamily::stream(i)"});
    }

    // fork()/fork_base() advances shared generator state; inside a parallel
    // body the draw order depends on thread scheduling.
    for (auto it = std::sregex_iterator(body.begin(), body.end(), fork_pattern());
         it != std::sregex_iterator(); ++it) {
      const std::size_t at = static_cast<std::size_t>(it->position(0));
      out.push_back({f.rel_path, line_of(pre, begin + at), "parallel-rng",
                     "fork()/fork_base() inside a parallel body draws from shared "
                     "generator state; hoist the fork and key per-item streams instead"});
    }

    // Draws on a generator created outside the body.
    for (auto it = std::sregex_iterator(body.begin(), body.end(), rng_draw_pattern());
         it != std::sregex_iterator(); ++it) {
      const std::string receiver = (*it)[1].str();
      if (!file_rngs.count(receiver) || declared_in_body.count(receiver)) continue;
      const std::size_t at = static_cast<std::size_t>(it->position(0));
      out.push_back({f.rel_path, line_of(pre, begin + at), "parallel-rng",
                     "'" + receiver + "." + (*it)[2].str() +
                         "(...)' draws from an Rng created outside the parallel body; "
                         "results then depend on chunk scheduling"});
    }
  }
}

void check_unordered_fp(const SourceFile& f, const ProjectIndex& index,
                        std::vector<Violation>& out) {
  const auto names_it = index.unordered_names_by_file.find(f.rel_path);
  if (names_it == index.unordered_names_by_file.end() || names_it->second.empty()) return;
  const std::string& code = f.code;
  const std::vector<std::size_t> pre = newline_prefix(code);

  for (const std::string& name : names_it->second) {
    const std::regex loop(R"(\bfor\s*\(\s*[^;)]*:\s*)" + name + R"(\s*\))");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), loop);
         it != std::sregex_iterator(); ++it) {
      const std::size_t at = static_cast<std::size_t>(it->position(0));
      // Loop body: the next balanced brace block, or (braceless form) the
      // text up to the next ';'.
      std::size_t cursor = at + it->length(0);
      while (cursor < code.size() &&
             std::isspace(static_cast<unsigned char>(code[cursor])))
        ++cursor;
      std::string loop_body;
      if (cursor < code.size() && code[cursor] == '{') {
        int depth = 0;
        std::size_t j = cursor;
        while (j < code.size()) {
          if (code[j] == '{') ++depth;
          if (code[j] == '}' && --depth == 0) break;
          ++j;
        }
        loop_body = code.substr(cursor, j - cursor);
      } else {
        const std::size_t semi = code.find(';', cursor);
        loop_body = code.substr(cursor, semi == std::string::npos
                                            ? std::string::npos
                                            : semi - cursor);
      }
      if (loop_body.find("+=") != std::string::npos ||
          loop_body.find("-=") != std::string::npos)
        out.push_back({f.rel_path, line_of(pre, at), "unordered-fp",
                       "iterating hash container '" + name +
                           "' into an accumulation; hash order is unspecified, so "
                           "floating-point results vary across runs — iterate a sorted "
                           "view or use std::map"});
    }
  }
}

}  // namespace

std::vector<Violation> pass_determinism(const ProjectIndex& index) {
  std::vector<Violation> out;
  for (const SourceFile& f : index.files) {
    check_parallel_rng(f, out);
    check_unordered_fp(f, index, out);
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.message) < std::tie(b.file, b.line, b.message);
  });
  return out;
}

}  // namespace xpuf::lint
