#include "passes/passes.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <regex>
#include <string>

namespace xpuf::lint {

namespace {

std::string basename_of(const std::string& p) {
  const std::size_t slash = p.find_last_of('/');
  return slash == std::string::npos ? p : p.substr(slash + 1);
}

std::string dir_of(const std::string& rel) {
  const std::size_t slash = rel.find_last_of('/');
  return slash == std::string::npos ? "" : rel.substr(0, slash);
}

/// k-constant integer definitions (`constexpr std::uint32_t kHeaderBytes =
/// 24;`) from a blanked source — the vocabulary of reserve() accounting.
void collect_constants(const std::string& code, std::map<std::string, std::uint64_t>& out) {
  static const std::regex re(
      R"(constexpr\s+[\w:]+\s+(k\w+)\s*=\s*(\d[\d']*)u?\s*;)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
       it != std::sregex_iterator(); ++it) {
    std::string digits = (*it)[2].str();
    digits.erase(std::remove(digits.begin(), digits.end(), '\''), digits.end());
    out[(*it)[1].str()] = std::stoull(digits);
  }
}

/// Widths (in bits) of the put_uN calls in `body`, in source order.
std::vector<int> put_sequence(const std::string& body) {
  static const std::regex re(R"(\bput_u(8|16|32|64)\s*\()");
  std::vector<int> seq;
  for (auto it = std::sregex_iterator(body.begin(), body.end(), re);
       it != std::sregex_iterator(); ++it)
    seq.push_back(std::stoi((*it)[1].str()));
  return seq;
}

std::vector<int> read_sequence(const std::string& body) {
  static const std::regex re(R"(\bread_u(8|16|32|64)\s*\()");
  std::vector<int> seq;
  for (auto it = std::sregex_iterator(body.begin(), body.end(), re);
       it != std::sregex_iterator(); ++it)
    seq.push_back(std::stoi((*it)[1].str()));
  return seq;
}

std::string sequence_to_string(const std::vector<int>& seq) {
  std::string s = "[";
  for (std::size_t i = 0; i < seq.size(); ++i)
    s += (i ? "," : "") + std::string("u") + std::to_string(seq[i]);
  return s + "]";
}

/// Bytes a put_uN definition appends per call: the explicit push_back count,
/// or the shift-loop bound / 8 for the unrolled-loop form.
std::uint64_t put_body_bytes(const std::string& body) {
  static const std::regex loop_bound(R"(\bshift\s*<\s*(\d+))");
  std::smatch m;
  if (std::regex_search(body, m, loop_bound)) return std::stoull(m[1].str()) / 8;
  std::uint64_t n = 0;
  std::size_t at = 0;
  while ((at = body.find("push_back", at)) != std::string::npos) {
    ++n;
    at += 9;
  }
  return n;
}

/// Constant part of a reserve() argument: integer literals and known
/// k-constants joined by top-level '+'; dynamic terms contribute nothing.
std::uint64_t reserve_constant_sum(const std::string& expr,
                                   const std::map<std::string, std::uint64_t>& constants) {
  std::uint64_t sum = 0;
  int depth = 0;
  std::string term;
  auto flush = [&] {
    const std::string t = trim(term);
    term.clear();
    if (t.empty()) return;
    if (std::all_of(t.begin(), t.end(), [](char c) {
          return std::isdigit(static_cast<unsigned char>(c)) || c == '\'';
        })) {
      std::string digits = t;
      digits.erase(std::remove(digits.begin(), digits.end(), '\''), digits.end());
      sum += std::stoull(digits);
      return;
    }
    const auto it = constants.find(t);
    if (it != constants.end()) sum += it->second;
  };
  for (char c : expr) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == '+' && depth == 0) {
      flush();
      continue;
    }
    term.push_back(c);
  }
  flush();
  return sum;
}

/// The first reserve(...) argument in `body`, or nullopt-equivalent "".
bool find_reserve_arg(const std::string& body, std::string& arg) {
  const std::size_t at = body.find("reserve");
  if (at == std::string::npos) return false;
  const std::size_t open = body.find('(', at);
  if (open == std::string::npos) return false;
  int depth = 0;
  for (std::size_t i = open; i < body.size(); ++i) {
    if (body[i] == '(') ++depth;
    if (body[i] == ')' && --depth == 0) {
      arg = body.substr(open + 1, i - open - 1);
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Violation> pass_wire_pairing(const ProjectIndex& index) {
  std::vector<Violation> out;
  for (const SourceFile& f : index.files) {
    const std::string base = basename_of(f.rel_path);
    if (base != "wire.cpp" && base != "record.cpp") continue;
    // Same-stem header: wire.cpp <-> wire.hpp, record.cpp <-> record.hpp.
    const std::string dir = dir_of(f.rel_path);
    const std::string stem = base.substr(0, base.size() - 4);
    const std::string header_rel =
        dir.empty() ? stem + ".hpp" : dir + "/" + stem + ".hpp";

    // Functions defined in this TU (or inline in its paired header — the
    // byte primitives of a header-only codec), by name. A TU definition
    // shadows a same-named header one.
    std::map<std::string, const FunctionSym*> local;
    for (const auto& [name, syms] : index.functions)
      for (const FunctionSym& s : syms) {
        if (s.file == f.rel_path)
          local[name] = &s;
        else if (s.file == header_rel)
          local.emplace(name, &s);
      }
    const bool is_codec =
        std::any_of(local.begin(), local.end(), [](const auto& kv) {
          return kv.first.rfind("put_u", 0) == 0 || kv.first.rfind("encode_", 0) == 0;
        });
    if (!is_codec) continue;

    // Constants resolve from the TU and its paired header.
    std::map<std::string, std::uint64_t> constants;
    collect_constants(f.code, constants);
    if (const SourceFile* hdr = index.file(header_rel))
      collect_constants(hdr->code, constants);

    // 1. put_uN <-> read_uN pairing, with byte-width verification on both
    //    halves (reads may live in the header for fixture trees, so the
    //    lookup for the counterpart is index-wide).
    static const std::regex width_name(R"(^(put|read)_u(8|16|32|64)$)");
    for (const auto& [name, sym] : local) {
      std::smatch m;
      if (!std::regex_match(name, m, width_name)) continue;
      const std::uint64_t bytes = std::stoull(m[2].str()) / 8;
      if (m[1].str() == "put") {
        const std::string counterpart = "read_u" + m[2].str();
        if (index.functions.find(counterpart) == index.functions.end())
          out.push_back({sym->file, sym->line, "wire-pairing",
                         name + " has no " + counterpart +
                             " counterpart; every field writer needs a "
                             "bounds-checked reader"});
        const std::uint64_t wrote = put_body_bytes(sym->body);
        if (wrote != bytes)
          out.push_back({sym->file, sym->line, "wire-pairing",
                         name + " appends " + std::to_string(wrote) + " byte(s); its "
                             "name promises " + std::to_string(bytes)});
      } else {
        static const std::regex guard(R"(remaining\s*\(\s*\)\s*<\s*(\d+))");
        std::smatch g;
        if (!std::regex_search(sym->body, g, guard)) {
          out.push_back({sym->file, sym->line, "wire-pairing",
                         name + " has no remaining() bounds check; a truncated frame "
                             "would read past the buffer"});
        } else if (std::stoull(g[1].str()) != bytes) {
          out.push_back({sym->file, sym->line, "wire-pairing",
                         name + " guards " + g[1].str() + " byte(s); its name promises " +
                             std::to_string(bytes)});
        }
      }
    }

    // 2. encode_X put sequence must mirror decode_X read sequence.
    for (const auto& [name, sym] : local) {
      if (name.rfind("encode_", 0) != 0) continue;
      const std::string counterpart = "decode_" + name.substr(7);
      const auto dec = local.find(counterpart);
      if (dec == local.end()) {
        out.push_back({sym->file, sym->line, "wire-pairing",
                       name + " has no " + counterpart + "; one-way payloads cannot "
                           "round-trip"});
        continue;
      }
      const std::vector<int> puts = put_sequence(sym->body);
      const std::vector<int> reads = read_sequence(dec->second->body);
      if (puts != reads)
        out.push_back({sym->file, sym->line, "wire-pairing",
                       name + " writes " + sequence_to_string(puts) + " but " +
                           counterpart + " reads " + sequence_to_string(reads) +
                           "; field order and widths must match byte for byte"});
    }

    // 3. Frame-size accounting: each encode_X must reserve its fixed byte
    //    footprint, and the constant part of the reserve must equal the sum
    //    of the fixed put widths.
    for (const auto& [name, sym] : local) {
      if (name.rfind("encode_", 0) != 0) continue;
      std::uint64_t fixed = 0;
      for (int bits : put_sequence(sym->body)) fixed += static_cast<std::uint64_t>(bits) / 8;
      if (fixed == 0) continue;
      std::string arg;
      if (!find_reserve_arg(sym->body, arg)) {
        out.push_back({sym->file, sym->line, "wire-pairing",
                       name + " writes " + std::to_string(fixed) + " fixed bytes but "
                           "never reserves them; add a reserve() accounting for the "
                           "frame layout"});
        continue;
      }
      const std::uint64_t stated = reserve_constant_sum(arg, constants);
      if (stated != fixed)
        out.push_back({sym->file, sym->line, "wire-pairing",
                       name + " reserves " + std::to_string(stated) +
                           " fixed byte(s) but its put calls write " +
                           std::to_string(fixed) +
                           "; the reserve constants drifted from the frame layout"});
    }
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.message) < std::tie(b.file, b.line, b.message);
  });
  return out;
}

}  // namespace xpuf::lint
