// xpuf_lint cross-TU index — the shared substrate of the semantic passes.
//
// build_index() ingests every source file once and precomputes what the
// passes query repeatedly: blanked views and token streams (lexer/), the
// project include graph with resolved edges, a symbol table of
// namespace-scope function definitions (including out-of-line member
// functions, keyed by unqualified name), every MetricsRegistry counter
// registration with its binding variable, and per-file identifier sets for
// hash-ordered containers. The index is a pure function of the file set, so
// tests drive it with in-memory fixtures exactly like the CLI drives it with
// the checked-out tree.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lexer/lexer.hpp"

namespace xpuf::lint {

/// One ingested translation unit / header.
struct SourceFile {
  std::string rel_path;                ///< Path relative to the repo root.
  std::string content;                 ///< Raw bytes.
  std::string code;                    ///< Comments AND strings blanked.
  std::string code_with_strings;       ///< Comments blanked, strings kept.
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  std::vector<Token> tokens;           ///< Tokenized from `content`.
};

/// A resolved project include edge.
struct IncludeEdge {
  std::string from;   ///< Including file (rel path).
  std::string to;     ///< Included file (rel path, resolved).
  std::size_t line;   ///< 1-based line of the #include directive.
};

/// A namespace-scope function definition (free function or out-of-line
/// member — the key is the unqualified name, `read_u16` for
/// `WireReader::read_u16`).
struct FunctionSym {
  std::string name;
  std::string file;
  std::size_t line;      ///< 1-based line of the signature.
  std::string params;    ///< First balanced parenthesis group of the signature.
  std::string body;      ///< Blanked body text between the function's braces.
  bool has_require = false;  ///< Body contains an XPUF_REQUIRE check.
};

/// One `counter("name")` registration site.
struct CounterSite {
  std::string name;       ///< The metric name literal.
  std::string file;
  std::size_t line;       ///< 1-based.
  std::string bound_var;  ///< `x` for `Counter& x = ...counter("name")`, else "".
  bool inline_add = false;    ///< `counter("name").add(` chain.
  bool inline_total = false;  ///< `counter("name").total(` chain.
};

struct ProjectIndex {
  std::vector<SourceFile> files;
  std::map<std::string, std::size_t> file_ids;  ///< rel path -> files index.
  std::vector<IncludeEdge> includes;
  std::map<std::string, std::vector<FunctionSym>> functions;
  std::vector<CounterSite> counters;
  /// Identifiers declared with a std::unordered_* type, per declaring file.
  std::map<std::string, std::set<std::string>> unordered_names_by_file;

  const SourceFile* file(const std::string& rel) const;

  /// "src/<module>/..." -> "<module>"; "" for anything outside src/.
  static std::string module_of(const std::string& rel);

  /// True iff some indexed definition of `name` contains XPUF_REQUIRE.
  bool function_has_require(const std::string& name) const;
};

/// Structural function-definition scan used by both the index and the
/// require-guard rule. `code` must already have comments/strings blanked.
struct FunctionDef {
  std::size_t line0;      ///< 0-based line of the opening signature.
  std::string signature;  ///< Text from statement start through the param ')'.
  std::string params;     ///< First balanced parenthesis group.
  std::string body;       ///< Text between the function's braces.
};
std::vector<FunctionDef> namespace_scope_functions(const std::string& code);

/// Marks, per character of the blanked source, whether it falls inside a
/// parallel_for / parallel_reduce call (anywhere between the call's opening
/// parenthesis and its matching close — which covers the lambda body).
std::vector<bool> mark_parallel_regions(const std::string& code);

/// Ingests `(rel_path, content)` pairs and builds the full index.
ProjectIndex build_index(std::vector<std::pair<std::string, std::string>> file_set);

}  // namespace xpuf::lint
