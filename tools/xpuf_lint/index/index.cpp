#include "index/index.hpp"

#include <algorithm>
#include <cctype>
#include <regex>

namespace xpuf::lint {

namespace {

const std::set<std::string>& signature_stop_words() {
  static const std::set<std::string> kw = {"if",     "for",   "while", "switch",
                                           "return", "catch", "do",    "else",
                                           "struct", "class", "enum",  "union"};
  return kw;
}

/// Blanks preprocessor-directive lines (they are not ;-terminated, so they
/// would otherwise pollute the statement buffer of the structural pass).
std::string blank_preprocessor_lines(const std::string& code) {
  std::string out = code;
  std::size_t line_start = 0;
  bool in_directive = false;  // carries across '\'-continued directive lines
  for (std::size_t i = 0; i <= code.size(); ++i) {
    if (i == code.size() || code[i] == '\n') {
      std::size_t j = line_start;
      while (j < i && std::isspace(static_cast<unsigned char>(code[j]))) ++j;
      if (j < i && code[j] == '#') in_directive = true;
      if (in_directive) {
        for (std::size_t k = line_start; k < i; ++k) out[k] = ' ';
        std::size_t last = i;
        while (last > line_start &&
               std::isspace(static_cast<unsigned char>(code[last - 1])) && code[last - 1] != '\n')
          --last;
        in_directive = last > line_start && code[last - 1] == '\\';
      }
      line_start = i + 1;
    }
  }
  return out;
}

/// Collapses "a/b/../c" and "./" segments; keeps the path repo-relative.
std::string normalize_path(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  auto flush = [&] {
    if (cur.empty() || cur == ".") {
      cur.clear();
      return;
    }
    if (cur == "..") {
      if (!parts.empty()) parts.pop_back();
    } else {
      parts.push_back(cur);
    }
    cur.clear();
  };
  for (char c : path) {
    if (c == '/')
      flush();
    else
      cur.push_back(c);
  }
  flush();
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.push_back('/');
    out += parts[i];
  }
  return out;
}

std::string dir_of(const std::string& rel) {
  const std::size_t slash = rel.find_last_of('/');
  return slash == std::string::npos ? "" : rel.substr(0, slash);
}

/// Extracts identifiers declared with a std::unordered_* type. A tiny
/// angle-depth scanner instead of a regex: the element type may itself be a
/// template (`std::unordered_map<std::string, std::vector<int>> seen`).
void collect_unordered_names(const std::string& code, std::set<std::string>& out) {
  const std::string marker = "std::unordered_";
  std::size_t at = 0;
  while ((at = code.find(marker, at)) != std::string::npos) {
    std::size_t i = at + marker.size();
    while (i < code.size() && ident_char(code[i])) ++i;  // map / set / ...
    while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
    if (i >= code.size() || code[i] != '<') {
      at = i;
      continue;
    }
    int depth = 0;
    while (i < code.size()) {
      if (code[i] == '<') ++depth;
      if (code[i] == '>' && --depth == 0) {
        ++i;
        break;
      }
      ++i;
    }
    while (i < code.size() && (std::isspace(static_cast<unsigned char>(code[i])) ||
                               code[i] == '&' || code[i] == '*'))
      ++i;
    std::size_t name_begin = i;
    while (i < code.size() && ident_char(code[i])) ++i;
    if (i > name_begin &&
        !std::isdigit(static_cast<unsigned char>(code[name_begin])))
      out.insert(code.substr(name_begin, i - name_begin));
    at = i;
  }
}

/// Walks tokens for `counter ( "name" )` chains and records the registration
/// site, the inline .add()/.total() chain flags, and the variable the
/// reference is bound to (scan back over the statement for
/// `Counter & <var> =`).
void collect_counter_sites(const SourceFile& f, std::vector<CounterSite>& out) {
  const std::vector<Token>& t = f.tokens;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier || t[i].text != "counter") continue;
    if (t[i + 1].kind != TokenKind::kPunct || t[i + 1].text != "(") continue;
    if (t[i + 2].kind != TokenKind::kString) continue;
    if (t[i + 3].kind != TokenKind::kPunct || t[i + 3].text != ")") continue;
    CounterSite site;
    site.name = t[i + 2].text;
    site.file = f.rel_path;
    site.line = t[i].line;
    // Chained call after the close paren?
    if (i + 6 < t.size() && t[i + 4].text == "." &&
        t[i + 5].kind == TokenKind::kIdentifier && t[i + 6].text == "(") {
      if (t[i + 5].text == "add") site.inline_add = true;
      if (t[i + 5].text == "total") site.inline_total = true;
    }
    // Statement prefix: scan back to the statement boundary looking for
    // `Counter & <var> =`.
    std::size_t b = i;
    while (b > 0) {
      const Token& tb = t[b - 1];
      if (tb.kind == TokenKind::kPunct &&
          (tb.text == ";" || tb.text == "{" || tb.text == "}"))
        break;
      --b;
    }
    for (std::size_t k = b; k + 3 <= i; ++k) {
      if (t[k].kind == TokenKind::kIdentifier && t[k].text == "Counter" &&
          t[k + 1].text == "&" && t[k + 2].kind == TokenKind::kIdentifier &&
          k + 3 < t.size() && t[k + 3].text == "=") {
        site.bound_var = t[k + 2].text;
        break;
      }
    }
    out.push_back(std::move(site));
  }
}

}  // namespace

std::vector<FunctionDef> namespace_scope_functions(const std::string& raw_code) {
  const std::string code = blank_preprocessor_lines(raw_code);
  std::vector<FunctionDef> out;
  std::vector<char> scopes;  // 'n' named ns, 'a' anon ns, 'f' function, 'o' other
  std::string stmt;          // text since last ; { }
  bool stmt_has_content = false;  // stmt holds a non-whitespace char
  std::size_t stmt_line0 = 0;
  std::size_t line0 = 0;
  auto ns_depth = [&] {
    return static_cast<std::size_t>(
        std::count_if(scopes.begin(), scopes.end(), [](char s) { return s == 'n' || s == 'a'; }));
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '\n') ++line0;
    if (c == ';') {
      stmt.clear();
      stmt_has_content = false;
      stmt_line0 = line0 + 1;
      continue;
    }
    if (c == '}') {
      if (!scopes.empty()) scopes.pop_back();
      stmt.clear();
      stmt_has_content = false;
      stmt_line0 = line0 + 1;
      continue;
    }
    if (c != '{') {
      // Whitespace accumulates in stmt, so anchor the statement's line on the
      // first real character, not on stmt.empty().
      if (!stmt_has_content && !std::isspace(static_cast<unsigned char>(c))) {
        stmt_line0 = line0;
        stmt_has_content = true;
      }
      stmt.push_back(c);
      continue;
    }
    // Opening brace: classify the scope from the pending statement text.
    const std::string t = trim(stmt);
    static const std::regex ns_re(R"(^namespace(\s+[\w:]+)?\s*$)");
    std::smatch m;
    char kind = 'o';
    if (std::regex_match(t, m, ns_re)) {
      kind = m[1].matched ? 'n' : 'a';
    } else if (scopes.size() == ns_depth() && t.find('(') != std::string::npos) {
      // Candidate function definition at namespace scope. Extract the first
      // balanced paren group and the identifier before it.
      const std::size_t open = t.find('(');
      int depth = 0;
      std::size_t close = std::string::npos;
      for (std::size_t k = open; k < t.size(); ++k) {
        if (t[k] == '(') ++depth;
        if (t[k] == ')' && --depth == 0) {
          close = k;
          break;
        }
      }
      std::size_t name_end = open;
      while (name_end > 0 && std::isspace(static_cast<unsigned char>(t[name_end - 1])))
        --name_end;
      std::size_t name_begin = name_end;
      while (name_begin > 0 && ident_char(t[name_begin - 1])) --name_begin;
      const std::string name = t.substr(name_begin, name_end - name_begin);
      const bool in_anon =
          std::find(scopes.begin(), scopes.end(), 'a') != scopes.end();
      if (close != std::string::npos && !name.empty() && !in_anon &&
          !signature_stop_words().count(name) && t.find("operator") == std::string::npos &&
          t.rfind("static ", 0) != 0 && t.find('=') == std::string::npos) {
        kind = 'f';
        FunctionDef def;
        def.line0 = stmt_line0;
        def.signature = t.substr(0, close + 1);
        def.params = t.substr(open + 1, close - open - 1);
        // Capture the body: from i+1 to the matching close brace.
        int bdepth = 1;
        std::size_t j = i + 1;
        while (j < code.size() && bdepth > 0) {
          if (code[j] == '{') ++bdepth;
          if (code[j] == '}') --bdepth;
          ++j;
        }
        def.body = code.substr(i + 1, j - i - 2 < code.size() ? j - i - 2 : 0);
        out.push_back(std::move(def));
      }
    }
    scopes.push_back(kind);
    stmt.clear();
    stmt_has_content = false;
    stmt_line0 = line0 + 1;
  }
  return out;
}

std::vector<bool> mark_parallel_regions(const std::string& code) {
  std::vector<bool> in_region(code.size(), false);
  std::vector<int> call_stack;  // paren depth at each open parallel call
  int paren_depth = 0;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (ident_char(c)) {
      std::size_t j = i;
      while (j < code.size() && ident_char(code[j])) ++j;
      const std::string word = code.substr(i, j - i);
      if ((word == "parallel_for" || word == "parallel_reduce") &&
          (i == 0 || (!ident_char(code[i - 1]) && code[i - 1] != ':'))) {
        std::size_t k = j;
        while (k < code.size() && std::isspace(static_cast<unsigned char>(code[k]))) ++k;
        if (k < code.size() && code[k] == '(') call_stack.push_back(paren_depth);
      }
      if (!call_stack.empty())
        for (std::size_t p = i; p < j; ++p) in_region[p] = true;
      i = j;
      continue;
    }
    if (c == '(') ++paren_depth;
    if (c == ')') {
      --paren_depth;
      if (!call_stack.empty() && paren_depth == call_stack.back()) call_stack.pop_back();
    }
    if (!call_stack.empty()) in_region[i] = true;
    ++i;
  }
  return in_region;
}

const SourceFile* ProjectIndex::file(const std::string& rel) const {
  const auto it = file_ids.find(rel);
  return it == file_ids.end() ? nullptr : &files[it->second];
}

std::string ProjectIndex::module_of(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return "";
  const std::size_t begin = 4;
  const std::size_t slash = rel.find('/', begin);
  if (slash == std::string::npos) return "";
  return rel.substr(begin, slash - begin);
}

bool ProjectIndex::function_has_require(const std::string& name) const {
  const auto it = functions.find(name);
  if (it == functions.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [](const FunctionSym& f) { return f.has_require; });
}

ProjectIndex build_index(std::vector<std::pair<std::string, std::string>> file_set) {
  std::sort(file_set.begin(), file_set.end());
  ProjectIndex index;
  index.files.reserve(file_set.size());
  for (auto& [rel, content] : file_set) {
    SourceFile f;
    f.rel_path = rel;
    f.content = std::move(content);
    f.code = blank_comments_and_strings(f.content);
    f.code_with_strings = blank_comments(f.content);
    f.raw_lines = split_lines(f.content);
    f.code_lines = split_lines(f.code);
    f.tokens = tokenize(f.content);
    index.file_ids[rel] = index.files.size();
    index.files.push_back(std::move(f));
  }

  // Include graph. Quoted includes resolve against the including file's
  // directory first, then the project include roots (matching the CMake
  // target_include_directories layout).
  static const std::regex inc_re(R"re(^\s*#\s*include\s*"([^"]+)")re");
  const std::vector<std::string> roots = {"src", "tools/xpuf_lint", "bench", "tests"};
  for (const SourceFile& f : index.files) {
    for (std::size_t i = 0; i < f.raw_lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(f.raw_lines[i], m, inc_re)) continue;
      const std::string inc = m[1].str();
      std::vector<std::string> candidates;
      const std::string dir = dir_of(f.rel_path);
      if (!dir.empty()) candidates.push_back(normalize_path(dir + "/" + inc));
      for (const std::string& root : roots)
        candidates.push_back(normalize_path(root + "/" + inc));
      candidates.push_back(normalize_path(inc));
      for (const std::string& cand : candidates) {
        if (index.file_ids.count(cand)) {
          index.includes.push_back({f.rel_path, cand, i + 1});
          break;
        }
      }
    }
  }

  // Symbol table, counter sites, unordered-container identifiers.
  for (const SourceFile& f : index.files) {
    for (const FunctionDef& def : namespace_scope_functions(f.code)) {
      const std::string sig = def.signature;
      std::size_t name_end = sig.find('(');
      if (name_end == std::string::npos) continue;
      while (name_end > 0 && std::isspace(static_cast<unsigned char>(sig[name_end - 1])))
        --name_end;
      std::size_t name_begin = name_end;
      while (name_begin > 0 && ident_char(sig[name_begin - 1])) --name_begin;
      FunctionSym sym;
      sym.name = sig.substr(name_begin, name_end - name_begin);
      if (sym.name.empty()) continue;
      sym.file = f.rel_path;
      sym.line = def.line0 + 1;
      sym.params = def.params;
      sym.body = def.body;
      sym.has_require = def.body.find("XPUF_REQUIRE") != std::string::npos;
      index.functions[sym.name].push_back(std::move(sym));
    }
    collect_counter_sites(f, index.counters);
    collect_unordered_names(f.code, index.unordered_names_by_file[f.rel_path]);
  }
  return index;
}

}  // namespace xpuf::lint
