// xpuf_lint analysis engine — one entry point over the per-file rules
// (lint.cpp) and the cross-TU semantic passes (passes/).
//
// analyze_files() is a pure function of an in-memory file set, so tests feed
// it fixture trees and get byte-identical behavior to the CLI running over
// the checkout. The engine owns the two pieces of policy the passes must not
// know about:
//
//   * suppression filtering — `// xpuf-lint: allow(rule)` comments silence
//     pass findings exactly like per-file findings, and every marker is
//     counted into Stats so the suppression budget (tools/lint_baseline.json)
//     can ratchet down;
//   * guarded-by verification — `// xpuf-lint: guarded-by(callee)` discharges
//     a require-guard finding only when the index proves the claim: the named
//     callee is invoked from the flagged function's body AND some indexed
//     definition of it contains XPUF_REQUIRE. A claim the index cannot prove
//     keeps the original finding and raises `bad-guard-ref`, so these markers
//     can never rot into blanket suppressions.
//
// The marker examples above are themselves parsed (the grammar has no notion
// of "inside documentation"), hence:
// xpuf-lint: allow-file(bad-suppression, bad-guard-ref)
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace xpuf::lint {

struct Stats {
  std::size_t files_scanned = 0;
  std::size_t include_edges = 0;
  std::size_t functions_indexed = 0;
  std::size_t counters_indexed = 0;
  /// guarded-by markers the index verified (these cost no budget).
  std::size_t guarded_by_verified = 0;
  std::map<std::string, std::size_t> violations_by_rule;
  /// allow()/allow-file() markers per rule — the suppression budget input.
  std::map<std::string, std::size_t> suppressions_by_rule;

  std::size_t violations_total() const;
  std::size_t suppressions_total() const;
};

struct Report {
  std::vector<Violation> violations;  ///< Post-suppression, sorted (file, line).
  Stats stats;
};

/// Reads the lintable tree under `root` (src/, bench/, tests/, tools/ —
/// .cpp/.hpp/.h) as (rel_path, content) pairs, sorted by path.
std::vector<std::pair<std::string, std::string>> read_tree(const std::string& root);

/// Runs the full analysis (per-file rules + semantic passes + suppression and
/// guarded-by policy) over an in-memory file set.
Report analyze_files(const std::vector<std::pair<std::string, std::string>>& files);

/// analyze_files(read_tree(root)).
Report analyze_project(const std::string& root);

/// Serializes a report as SARIF-lite JSON:
///   {"version":1,
///    "tool":{"name":"xpuf_lint","rules":[{"id","summary"}...]},
///    "results":[{"ruleId","file","line","message"}...],
///    "stats":{...}}
/// Consumed by tools/check_lint_baseline.py in CI.
std::string report_to_json(const Report& report);

}  // namespace xpuf::lint
