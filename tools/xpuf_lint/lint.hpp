// xpuf_lint — project-invariant checker for the xpuf tree.
//
// The reproducibility guarantees this repo makes (bit-identical scans for any
// thread count, exactly reseedable experiments, loud precondition failures)
// depend on conventions that the compiler cannot enforce: every random draw
// must flow through common/rng, parallel bodies must not touch bit-packed
// vector<bool> storage, and public puf//sim/ entry points must validate their
// dimensions with XPUF_REQUIRE. xpuf_lint machine-checks those conventions at
// the token/regex level — deliberately no libclang dependency, so it builds
// and runs everywhere the library does.
//
// Rules — each suppressible per line via an allow comment (the marker is
// `xpuf-lint:` followed by `allow(rule, ...)`, or `allow-file(rule, ...)` for
// a whole file). The syntax examples in this header are themselves parsed, so:
// xpuf-lint: allow-file(bad-suppression, bad-guard-ref)
//
//   raw-rng              std::mt19937 / rand() / srand() / std::*_distribution
//                        outside src/common/rng.{hpp,cpp}
//   nondeterminism       time( / clock( / std::random_device /
//                        system_clock outside src/common/rng.cpp
//   vector-bool-parallel vector<bool> (the type, or an identifier declared
//                        with that type anywhere in the tree) indexed inside
//                        a parallel_for body
//   require-guard        public function definitions in src/puf//src/sim/
//                        .cpp files taking container/dimension parameters
//                        whose body never checks XPUF_REQUIRE
//   raw-timing           std::chrono::steady_clock outside
//                        src/common/timer.hpp and src/common/trace.cpp —
//                        wall-clock reads flow through Timer / TraceSpan
//   narrowing            double literal initializing a float without an f
//                        suffix, and C-style arithmetic casts (use
//                        static_cast)
//   include-order        headers missing #pragma once (or placing it after an
//                        include); .cpp not including its own header first;
//                        <system> includes after "project" includes
//   wire-portability     inside src/net/wire.{hpp,cpp} only: raw memcpy /
//                        memmove of object bytes, reinterpret_cast /
//                        std::bit_cast type punning, or platform-width
//                        integer tokens (int, long, size_t, ...) — the frame
//                        codec serializes fixed-width fields through the
//                        explicit little-endian put_/read_ helpers
//
// Semantic rules (cross-TU, run by the engine in engine.hpp over the project
// index — see passes/passes.hpp):
//
//   layering             include edge violating the declared module DAG
//                        (common <- linalg/crypto <- sim <- ml <- puf <-
//                        analysis/net), or a cycle in the module graph
//   parallel-rng         unkeyed Rng construction, fork()/fork_base(), or a
//                        draw from an outer generator inside a parallel_for /
//                        parallel_reduce body
//   unordered-fp         std::unordered_* iteration feeding an accumulation;
//                        hash order is unspecified, FP results drift
//   wire-pairing         in wire.cpp or record.cpp (+ same-stem header):
//                        put_uN without a width-matching read_uN, encode/
//                        decode field sequences out of sync, or reserve()
//                        constants drifted from the fixed frame layout
//   metrics-accounting   a src/ counter registration that is never
//                        incremented, or incremented but never audited
//   bad-guard-ref        a guarded-by(callee) marker whose claim the index
//                        cannot prove (no call to an XPUF_REQUIRE-bearing
//                        definition), or one discharging nothing
//
// Besides allow comments there is a verified marker form,
// `// xpuf-lint: guarded-by(callee)`, for require-guard findings whose
// precondition check lives in the callee: the engine discharges the finding
// only after proving the claim against the symbol index, so it costs no
// suppression budget.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace xpuf::lint {

struct Violation {
  std::string file;     ///< Path as given to the linter.
  std::size_t line;     ///< 1-based line number.
  std::string rule;     ///< Rule identifier (see rules()).
  std::string message;  ///< Human-readable explanation.
};

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// The full rule registry (stable order, stable names — the names are the
/// suppression-comment vocabulary).
const std::vector<RuleInfo>& rules();

/// True iff `rule` names a registered rule.
bool is_known_rule(const std::string& rule);

/// Parses `// xpuf-lint: allow(a, b)` out of a raw source line. Returns the
/// listed rule names (empty if the line carries no allow comment). Unknown
/// rule names are returned too — lint_source reports them as violations of
/// the meta rule "bad-suppression" so typos cannot silently disable checks.
std::vector<std::string> parse_allow_comment(const std::string& line);

/// Same for the file-wide form `// xpuf-lint: allow-file(a, b)`.
std::vector<std::string> parse_allow_file_comment(const std::string& line);

/// Parses `// xpuf-lint: guarded-by(callee_a, callee_b)` — the names are
/// function identifiers, not rule names. Verification happens in the engine.
std::vector<std::string> parse_guarded_by_comment(const std::string& line);

/// Per-line suppression sets for one file: an allow comment covers its own
/// line; a comment-only allow line additionally covers the next line.
/// Unknown rule names surface in `meta` as bad-suppression findings.
struct Suppressions {
  std::set<std::string> file_wide;
  std::vector<std::set<std::string>> per_line;  ///< Indexed by 0-based line.
  std::vector<Violation> meta;

  bool allows(const std::string& rule, std::size_t line0) const;
};

Suppressions build_suppressions(const std::string& rel_path,
                                const std::vector<std::string>& raw_lines);

/// Cross-file knowledge the per-file pass needs: identifiers declared with
/// type vector<bool> (possibly nested), per file, so a .cpp using a
/// header-declared bit-packed field is still caught inside parallel bodies.
/// Scoped per file (a file only sees names from itself and the headers it
/// includes) so a common name like `bits` in one test cannot poison the rule
/// for an unrelated translation unit.
struct Context {
  /// Key: path relative to the repo root. Value: vector<bool> identifiers
  /// declared in that file.
  std::map<std::string, std::set<std::string>> vector_bool_names_by_file;
};

/// Scans `content` for vector<bool> declarations and records the declared
/// identifiers into `out` (pass 1 of lint_tree).
void collect_vector_bool_names(const std::string& content, std::set<std::string>& out);

/// Lints one in-memory translation unit. `rel_path` is the path relative to
/// the repo root; it drives path-scoped rules (the common/rng exemption for
/// raw-rng/nondeterminism, and require-guard applying only to .cpp files
/// under src/puf/ and src/sim/). Comments and string literals are blanked
/// before any pattern matching, so mentioning `rand()` in a comment is fine.
std::vector<Violation> lint_source(const std::string& rel_path, const std::string& content,
                                   const Context& ctx);

/// Runs the full semantic engine (per-file rules plus the cross-TU passes,
/// with suppression and guarded-by policy applied) over `root`'s source
/// trees and returns the surviving violations sorted by (file, line).
/// Equivalent to analyze_project(root).violations — see engine.hpp for the
/// report-with-stats form.
std::vector<Violation> lint_tree(const std::string& root);

/// Sanity-checks a .clang-tidy config: file exists, has a non-empty Checks
/// key, balanced quotes, and no tab indentation (clang-tidy's YAML parser
/// rejects tabs). Returns problems as violations against the config path.
std::vector<Violation> check_tidy_config(const std::string& path);

}  // namespace xpuf::lint
