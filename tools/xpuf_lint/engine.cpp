#include "engine.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <tuple>

#include "index/index.hpp"
#include "passes/passes.hpp"

namespace xpuf::lint {

namespace {

namespace fs = std::filesystem;

/// One guarded-by(callee, ...) marker. A trailing marker covers its own
/// line; a comment-only marker line additionally covers the next line —
/// the same coverage contract as allow comments.
struct GuardMarker {
  std::size_t line0;  ///< 0-based marker line.
  std::vector<std::string> callees;
  bool comment_only = false;
  bool used = false;
};

std::vector<GuardMarker> collect_guard_markers(const std::vector<std::string>& raw_lines) {
  std::vector<GuardMarker> out;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    std::vector<std::string> callees = parse_guarded_by_comment(raw_lines[i]);
    if (callees.empty()) continue;
    GuardMarker m;
    m.line0 = i;
    m.callees = std::move(callees);
    m.comment_only = trim(raw_lines[i]).rfind("//", 0) == 0;
    out.push_back(std::move(m));
  }
  return out;
}

bool marker_covers(const GuardMarker& m, std::size_t line0) {
  return m.line0 == line0 || (m.comment_only && m.line0 + 1 == line0);
}

/// True iff `body` calls `callee` (token-boundary match followed by '(').
bool body_calls(const std::string& body, const std::string& callee) {
  std::size_t at = 0;
  while ((at = body.find(callee, at)) != std::string::npos) {
    const bool left_ok = at == 0 || !ident_char(body[at - 1]);
    std::size_t after = at + callee.size();
    if (left_ok && after < body.size() && !ident_char(body[after])) {
      while (after < body.size() &&
             std::isspace(static_cast<unsigned char>(body[after])))
        ++after;
      if (after < body.size() && body[after] == '(') return true;
    }
    at += callee.size();
  }
  return false;
}

const FunctionSym* find_function_at(const ProjectIndex& index, const std::string& file,
                                    std::size_t line) {
  for (const auto& [name, syms] : index.functions)
    for (const FunctionSym& s : syms)
      if (s.file == file && s.line == line) return &s;
  return nullptr;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += raw;
        }
    }
  }
  return out;
}

void append_count_map(std::ostringstream& os, const std::map<std::string, std::size_t>& m,
                      const std::string& indent) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    os << (first ? "" : ",") << "\n" << indent << "  \"" << json_escape(k) << "\": " << v;
    first = false;
  }
  if (!first) os << "\n" << indent;
  os << "}";
}

}  // namespace

std::size_t Stats::violations_total() const {
  std::size_t n = 0;
  for (const auto& [rule, count] : violations_by_rule) n += count;
  return n;
}

std::size_t Stats::suppressions_total() const {
  std::size_t n = 0;
  for (const auto& [rule, count] : suppressions_by_rule) n += count;
  return n;
}

std::vector<std::pair<std::string, std::string>> read_tree(const std::string& root) {
  const std::vector<std::string> trees = {"src", "bench", "tests", "tools"};
  std::vector<std::pair<std::string, std::string>> files;
  for (const std::string& tree : trees) {
    const fs::path dir = fs::path(root) / tree;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      files.emplace_back(fs::relative(entry.path(), root).generic_string(), ss.str());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

Report analyze_files(const std::vector<std::pair<std::string, std::string>>& files) {
  Report report;
  report.stats.files_scanned = files.size();

  const ProjectIndex index = build_index(files);
  report.stats.include_edges = index.includes.size();
  report.stats.counters_indexed = index.counters.size();
  for (const auto& [name, syms] : index.functions)
    report.stats.functions_indexed += syms.size();

  // Per-file artifacts: vector<bool> context for lint_source, suppression
  // tables for pass filtering, guarded-by markers, and budget counting.
  Context ctx;
  std::map<std::string, Suppressions> sup_by_file;
  std::map<std::string, std::vector<GuardMarker>> guards_by_file;
  for (const auto& [rel, content] : files) {
    collect_vector_bool_names(content, ctx.vector_bool_names_by_file[rel]);
    const std::vector<std::string> raw_lines = split_lines(content);
    sup_by_file.emplace(rel, build_suppressions(rel, raw_lines));
    guards_by_file.emplace(rel, collect_guard_markers(raw_lines));
    for (const std::string& line : raw_lines) {
      for (const std::string& r : parse_allow_comment(line))
        if (is_known_rule(r)) ++report.stats.suppressions_by_rule[r];
      for (const std::string& r : parse_allow_file_comment(line))
        if (is_known_rule(r)) ++report.stats.suppressions_by_rule[r];
    }
  }

  // Per-file rules (lint_source filters its own suppressions).
  std::vector<Violation> all;
  for (const auto& [rel, content] : files) {
    std::vector<Violation> v = lint_source(rel, content, ctx);
    all.insert(all.end(), v.begin(), v.end());
  }

  // Semantic passes, filtered through the same suppression tables.
  for (auto* pass : {pass_layering, pass_determinism, pass_wire_pairing,
                     pass_metrics_accounting}) {
    for (Violation& v : pass(index)) {
      const auto it = sup_by_file.find(v.file);
      if (it != sup_by_file.end() && it->second.allows(v.rule, v.line - 1)) continue;
      all.push_back(std::move(v));
    }
  }

  // guarded-by policy: discharge require-guard findings the index can prove,
  // keep (and escalate) the ones it cannot.
  std::vector<Violation> kept;
  kept.reserve(all.size());
  for (Violation& v : all) {
    if (v.rule != "require-guard") {
      kept.push_back(std::move(v));
      continue;
    }
    auto& markers = guards_by_file[v.file];
    bool discharged = false;
    for (GuardMarker& m : markers) {
      if (!marker_covers(m, v.line - 1)) continue;
      m.used = true;
      const FunctionSym* sym = find_function_at(index, v.file, v.line);
      std::string unproven;
      for (const std::string& callee : m.callees) {
        if (sym && body_calls(sym->body, callee) && index.function_has_require(callee)) {
          discharged = true;
          break;
        }
        unproven = callee;
      }
      if (discharged) {
        ++report.stats.guarded_by_verified;
        break;
      }
      const auto sup = sup_by_file.find(v.file);
      if (sup == sup_by_file.end() || !sup->second.allows("bad-guard-ref", m.line0))
        kept.push_back({v.file, m.line0 + 1, "bad-guard-ref",
                        "guarded-by claims '" + unproven + "' checks this function's "
                        "preconditions, but the index finds no call to a definition "
                        "containing XPUF_REQUIRE"});
    }
    if (!discharged) kept.push_back(std::move(v));
  }

  // Stale markers: a guarded-by that discharges nothing is a suppression
  // wearing a proof's clothing — the guarded function grew its own check, or
  // the marker drifted off its line. Either way it must go.
  for (auto& [file, markers] : guards_by_file) {
    for (const GuardMarker& m : markers) {
      if (m.used) continue;
      const auto sup = sup_by_file.find(file);
      if (sup != sup_by_file.end() && sup->second.allows("bad-guard-ref", m.line0)) continue;
      kept.push_back({file, m.line0 + 1, "bad-guard-ref",
                      "stale guarded-by marker: no require-guard finding here to "
                      "discharge — remove it"});
    }
  }

  std::sort(kept.begin(), kept.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  for (const Violation& v : kept) ++report.stats.violations_by_rule[v.rule];
  report.violations = std::move(kept);
  return report;
}

Report analyze_project(const std::string& root) { return analyze_files(read_tree(root)); }

std::string report_to_json(const Report& report) {
  std::ostringstream os;
  os << "{\n  \"version\": 1,\n  \"tool\": {\n    \"name\": \"xpuf_lint\",\n"
     << "    \"rules\": [";
  bool first = true;
  for (const RuleInfo& r : rules()) {
    os << (first ? "" : ",") << "\n      {\"id\": \"" << json_escape(r.name)
       << "\", \"summary\": \"" << json_escape(r.summary) << "\"}";
    first = false;
  }
  os << "\n    ]\n  },\n  \"results\": [";
  first = true;
  for (const Violation& v : report.violations) {
    os << (first ? "" : ",") << "\n    {\"ruleId\": \"" << json_escape(v.rule)
       << "\", \"file\": \"" << json_escape(v.file) << "\", \"line\": " << v.line
       << ", \"message\": \"" << json_escape(v.message) << "\"}";
    first = false;
  }
  os << "\n  ],\n  \"stats\": {\n";
  const Stats& s = report.stats;
  os << "    \"files_scanned\": " << s.files_scanned << ",\n"
     << "    \"include_edges\": " << s.include_edges << ",\n"
     << "    \"functions_indexed\": " << s.functions_indexed << ",\n"
     << "    \"counters_indexed\": " << s.counters_indexed << ",\n"
     << "    \"guarded_by_verified\": " << s.guarded_by_verified << ",\n"
     << "    \"violations_total\": " << s.violations_total() << ",\n"
     << "    \"violations_by_rule\": ";
  append_count_map(os, s.violations_by_rule, "    ");
  os << ",\n    \"suppressions_total\": " << s.suppressions_total() << ",\n"
     << "    \"suppressions_by_rule\": ";
  append_count_map(os, s.suppressions_by_rule, "    ");
  os << "\n  }\n}\n";
  return os.str();
}

}  // namespace xpuf::lint
