#include "lexer/lexer.hpp"

#include <cctype>

namespace xpuf::lint {

namespace {

enum class S { kCode, kLine, kBlock, kString, kChar };

/// One state machine drives both blanking variants and the tokenizer: the
/// semantics of "where does a comment/string start and end" must not drift
/// between the per-file rules and the semantic passes.
std::string blank_impl(const std::string& src, bool blank_strings) {
  std::string out = src;
  S s = S::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (s) {
      case S::kCode:
        if (c == '/' && next == '/') {
          s = S::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          s = S::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          s = S::kString;
        } else if (c == '\'' && (i == 0 || !ident_char(src[i - 1]))) {
          // Ident-adjacent quotes are digit separators (2'000), not chars.
          s = S::kChar;
        }
        break;
      case S::kLine:
        if (c == '\n')
          s = S::kCode;
        else
          out[i] = ' ';
        break;
      case S::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          s = S::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case S::kString:
        if (c == '\\' && next != '\0') {
          if (blank_strings) {
            out[i] = ' ';
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          s = S::kCode;
        } else if (c != '\n' && blank_strings) {
          out[i] = ' ';
        }
        break;
      case S::kChar:
        if (c == '\\' && next != '\0') {
          if (blank_strings) {
            out[i] = ' ';
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          s = S::kCode;
        } else if (c != '\n' && blank_strings) {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

}  // namespace

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

std::string blank_comments_and_strings(const std::string& src) {
  return blank_impl(src, /*blank_strings=*/true);
}

std::string blank_comments(const std::string& src) {
  return blank_impl(src, /*blank_strings=*/false);
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t i = 0;
  auto at = [&](std::size_t k) { return k < src.size() ? src[k] : '\0'; };
  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && at(i + 1) == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && at(i + 1) == '*') {
      i += 2;
      while (i < src.size() && !(src[i] == '*' && at(i + 1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= src.size() ? i + 2 : src.size();
      continue;
    }
    // String literal.
    if (c == '"') {
      const std::size_t start_line = line;
      std::string body;
      ++i;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < src.size()) {
          body.push_back(src[i]);
          body.push_back(src[i + 1]);
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;
        body.push_back(src[i]);
        ++i;
      }
      if (i < src.size()) ++i;  // closing quote
      out.push_back({TokenKind::kString, body, start_line});
      continue;
    }
    // Character literal (an ident-adjacent quote is a digit separator and is
    // consumed by the number scanner below, never reached here).
    if (c == '\'' && (i == 0 || !ident_char(src[i - 1]))) {
      const std::size_t start_line = line;
      std::string body;
      ++i;
      while (i < src.size() && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < src.size()) {
          body.push_back(src[i]);
          body.push_back(src[i + 1]);
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;
        body.push_back(src[i]);
        ++i;
      }
      if (i < src.size()) ++i;
      out.push_back({TokenKind::kCharLit, body, start_line});
      continue;
    }
    // Number: digits with separators, a fraction, and a signed exponent.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start_line = line;
      std::string body;
      while (i < src.size()) {
        const char d = src[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' || d == '.' ||
            d == '\'') {
          body.push_back(d);
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && !body.empty() &&
            (body.back() == 'e' || body.back() == 'E' || body.back() == 'p' ||
             body.back() == 'P')) {
          body.push_back(d);
          ++i;
          continue;
        }
        break;
      }
      out.push_back({TokenKind::kNumber, body, start_line});
      continue;
    }
    // Identifier.
    if (ident_char(c)) {
      const std::size_t start_line = line;
      std::string body;
      while (i < src.size() && ident_char(src[i])) {
        body.push_back(src[i]);
        ++i;
      }
      out.push_back({TokenKind::kIdentifier, body, start_line});
      continue;
    }
    out.push_back({TokenKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace xpuf::lint
