// xpuf_lint lexing layer — comment/string-aware tokenization shared by the
// per-file rules (lint.cpp), the cross-TU index (index/), and the semantic
// passes (passes/).
//
// The lexer is deliberately approximate where full C++ lexing would drag in a
// preprocessor (no macro expansion, no raw-string `R"(...)"` delimiters — a
// raw string lexes as an ordinary string up to its first unescaped quote).
// That approximation has one consequence the rules accept: patterns never
// match inside comments or string literals, which is the property every rule
// in this tree actually needs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xpuf::lint {

enum class TokenKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,      ///< integer/float literal, digit separators included
  kString,      ///< "..." — text carries the unquoted body
  kCharLit,     ///< '...'
  kPunct,       ///< one punctuation character
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t line;  ///< 1-based line of the token's first character.
};

/// True for characters that may appear in an identifier.
bool ident_char(char c);

/// Replaces comments and string/character literals with spaces (newlines and
/// line lengths preserved) so rule patterns only ever match real code.
std::string blank_comments_and_strings(const std::string& src);

/// Same, but string/character literals survive — for analyses keyed on
/// string payloads (metric names, include paths) that must still ignore
/// commented-out code.
std::string blank_comments(const std::string& src);

std::vector<std::string> split_lines(const std::string& s);

std::string trim(const std::string& s);

/// Tokenizes `src`, skipping comments and whitespace. String and character
/// literals become single tokens carrying their body text.
std::vector<Token> tokenize(const std::string& src);

}  // namespace xpuf::lint
