#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

#include "engine.hpp"
#include "index/index.hpp"
#include "lexer/lexer.hpp"

namespace xpuf::lint {

namespace {

const std::vector<RuleInfo> kRules = {
    {"raw-rng",
     "raw std random engine or rand()/srand(); draw from common/rng streams instead"},
    {"nondeterminism",
     "wall-clock / random_device entropy source outside common/rng.cpp breaks reseedability"},
    {"vector-bool-parallel",
     "vector<bool> touched inside a parallel_for body; adjacent bits share words — stage "
     "bytes and commit serially"},
    {"require-guard",
     "public puf//sim/ entry point takes container/dimension parameters but never checks "
     "XPUF_REQUIRE"},
    {"raw-timing",
     "raw std::chrono::steady_clock outside common/timer.hpp / common/trace.cpp; time "
     "through Timer/TraceSpan so wall-clock stays out of measurement paths"},
    {"raw-syscall",
     "raw POSIX socket/epoll syscall or errno branch outside the syscall wrapper TU "
     "(src/net/async/syscall.cpp); go through the net::async::sys_* wrappers so "
     "EINTR/EAGAIN folding and byte accounting stay in one place"},
    {"narrowing",
     "double literal narrowed to float, or C-style arithmetic cast; use an f suffix / "
     "static_cast"},
    {"include-order",
     "header missing #pragma once, self-header not included first, or <system> include "
     "after a \"project\" include"},
    {"wire-portability",
     "wire codec uses memcpy/type-punning or non-fixed-width integers; serialize "
     "field-by-field with explicit little-endian put_/read_ helpers"},
    {"scalar-eval",
     "per-challenge delay_difference/one_probability/measure_soft_response call in a "
     "protocol hot path — evaluate batches through the FeatureBlock core "
     "(sim/linear.hpp) — or per-challenge model evaluation (predict_xor and friends) "
     "in the issuance files; screen candidates in blocks through ChallengeScreener "
     "(puf/screening.hpp)"},
    {"ml-dot",
     "hand-rolled row-wise dot-product loop in src/ml/; route it through linalg::dot or "
     "the GEMM kernels (matmul_nt / matmul_tn) so batch and scalar paths share one "
     "accumulation order"},
    {"bad-suppression", "xpuf-lint allow comment names a rule that does not exist"},
    // Semantic rules — emitted by the cross-TU passes (passes/) and the
    // engine's guarded-by policy, registered here so the suppression
    // vocabulary and --list-rules cover them.
    {"layering",
     "include edge violates the declared module DAG (common <- linalg/crypto <- sim <- "
     "ml <- puf <- analysis/net) or closes a module cycle"},
    {"parallel-rng",
     "Rng inside a parallel body is not keyed off StreamFamily::stream(i); draw order "
     "then depends on thread scheduling"},
    {"unordered-fp",
     "std::unordered_* iteration feeds an accumulation; hash order is unspecified, so "
     "floating-point results drift across runs"},
    {"wire-pairing",
     "codec halves drifted (wire.cpp / record.cpp + same-stem header): put_uN without "
     "a width-matched read_uN, encode/decode sequences out of sync, or reserve() not "
     "accounting the fixed frame bytes"},
    {"metrics-accounting",
     "registered counter is never incremented, or incremented but never audited by a "
     "tests//bench/ expectation or a total() consumer"},
    {"bad-guard-ref",
     "guarded-by(callee) marker the symbol index cannot verify, or one that no longer "
     "discharges any require-guard finding"},
};

std::vector<std::string> parse_allow_list(const std::string& line, const std::string& marker) {
  std::vector<std::string> out;
  const std::size_t at = line.find(marker);
  if (at == std::string::npos) return out;
  const std::size_t open = line.find('(', at + marker.size());
  if (open == std::string::npos) return out;
  const std::size_t close = line.find(')', open);
  if (close == std::string::npos) return out;
  std::string inner = line.substr(open + 1, close - open - 1);
  std::stringstream ss(inner);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool path_has_prefix(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool is_rng_file(const std::string& rel) {
  return rel == "src/common/rng.hpp" || rel == "src/common/rng.cpp";
}

std::string basename_of(const std::string& p) {
  const std::size_t slash = p.find_last_of('/');
  return slash == std::string::npos ? p : p.substr(slash + 1);
}

// ---------------------------------------------------------------------------
// Simple per-line regex rules.

struct PatternRule {
  const char* rule;
  std::regex pattern;
  const char* message;
};

const std::vector<PatternRule>& raw_rng_patterns() {
  static const std::vector<PatternRule> pats = {
      {"raw-rng", std::regex(R"(\bstd::mt19937)"),
       "std::mt19937 bypasses the seeded xoshiro streams; use xpuf::Rng"},
      {"raw-rng", std::regex(R"(\bstd::(minstd_rand0?|default_random_engine|ranlux\w+|knuth_b)\b)"),
       "std <random> engine bypasses the seeded xoshiro streams; use xpuf::Rng"},
      {"raw-rng", std::regex(R"((^|[^\w:])s?rand\s*\()"),
       "C rand()/srand() is neither seeded nor portable; use xpuf::Rng"},
      {"raw-rng", std::regex(R"(\bstd::\w+_distribution\b)"),
       "std <random> distributions differ across standard libraries; use the Rng "
       "distribution helpers"},
      {"nondeterminism", std::regex(R"(\bstd::random_device\b|[^\w:]random_device\b)"),
       "random_device injects unseeded entropy; derive streams from the experiment seed"},
      {"nondeterminism", std::regex(R"((^|[^\w:.])(time|clock)\s*\()"),
       "wall-clock entropy makes runs unreproducible; thread an explicit seed instead"},
      {"nondeterminism", std::regex(R"(\bgettimeofday\b|\bstd::chrono::system_clock\b)"),
       "wall-clock entropy makes runs unreproducible; use steady_clock for intervals"},
  };
  return pats;
}

const std::regex& float_literal_pattern() {
  // float x = 0.5;  (double literal, no f suffix)
  static const std::regex re(
      R"(\bfloat\s+\w+\s*=\s*[^;{]*\b\d+\.\d*(e[+-]?\d+)?(?![0-9fF]))");
  return re;
}

const std::regex& cstyle_cast_pattern() {
  static const std::regex re(
      R"(\(\s*(float|double|int|unsigned|long|short|std::size_t|size_t|std::u?int(8|16|32|64)_t|u?int(8|16|32|64)_t)\s*\)\s*[A-Za-z_0-9(])");
  return re;
}

// ---------------------------------------------------------------------------
// vector<bool> declarations and parallel_for regions.

const std::regex& vector_bool_decl_pattern() {
  static const std::regex re(
      R"(std::vector\s*<\s*(std::vector\s*<\s*)?bool\s*>\s*(>\s*)?[&*]?\s*([A-Za-z_]\w*))");
  return re;
}

const std::regex& vector_bool_use_pattern() {
  static const std::regex re(R"(\bvector\s*<\s*bool\b)");
  return re;
}

// ---------------------------------------------------------------------------
// require-guard: function-definition scanner for src/puf//src/sim/ .cpp.
// (The structural machinery — namespace_scope_functions, parallel-region
// marking — lives in index/, shared with the semantic passes.)

const std::regex& container_param_pattern() {
  static const std::regex re(
      R"(std::vector\s*<|\bMatrix\b|\bVector\b|\bChallenge\b|\bBatch\b|\bBlock\b|\bScan\b|\bDataset\b|\bstd::span\b|\bstd::size_t\b)");
  return re;
}

// ---------------------------------------------------------------------------
// include-order.

struct IncludeDirective {
  std::size_t line0;
  std::string path;  ///< Without the delimiters.
  bool angled;
};

// Collected from the RAW lines: the comment/string blanking pass erases the
// path inside a quoted include, which is exactly the text this rule needs.
std::vector<IncludeDirective> collect_includes(const std::vector<std::string>& raw_lines) {
  static const std::regex re(R"(^\s*#\s*include\s*([<"])([^>"]+)[>"])");
  std::vector<IncludeDirective> out;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(raw_lines[i], m, re))
      out.push_back({i, m[2].str(), m[1].str() == "<"});
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

bool is_known_rule(const std::string& rule) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return r.name == rule; });
}

std::vector<std::string> parse_allow_comment(const std::string& line) {
  // Reject the allow-file form: "allow-file(" also contains "allow" but the
  // marker match below requires the next non-space char to be '('.
  const std::size_t at = line.find("xpuf-lint:");
  if (at == std::string::npos) return {};
  std::string rest = trim(line.substr(at + std::string("xpuf-lint:").size()));
  if (rest.rfind("allow", 0) != 0 || rest.rfind("allow-file", 0) == 0) return {};
  return parse_allow_list(line, "xpuf-lint:");
}

std::vector<std::string> parse_allow_file_comment(const std::string& line) {
  const std::size_t at = line.find("xpuf-lint:");
  if (at == std::string::npos) return {};
  std::string rest = trim(line.substr(at + std::string("xpuf-lint:").size()));
  if (rest.rfind("allow-file", 0) != 0) return {};
  return parse_allow_list(line, "allow-file");
}

std::vector<std::string> parse_guarded_by_comment(const std::string& line) {
  const std::size_t at = line.find("xpuf-lint:");
  if (at == std::string::npos) return {};
  std::string rest = trim(line.substr(at + std::string("xpuf-lint:").size()));
  if (rest.rfind("guarded-by", 0) != 0) return {};
  return parse_allow_list(line, "guarded-by");
}

bool Suppressions::allows(const std::string& rule, std::size_t line0) const {
  if (file_wide.count(rule)) return true;
  return line0 < per_line.size() && per_line[line0].count(rule) != 0;
}

Suppressions build_suppressions(const std::string& rel_path,
                                const std::vector<std::string>& raw_lines) {
  Suppressions sup;
  sup.per_line.resize(raw_lines.size());
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    auto note_bad = [&](const std::string& name) {
      sup.meta.push_back({rel_path, i + 1, "bad-suppression",
                          "unknown rule '" + name + "' in xpuf-lint allow comment"});
    };
    for (const std::string& r : parse_allow_file_comment(line)) {
      if (!is_known_rule(r)) {
        note_bad(r);
        continue;
      }
      sup.file_wide.insert(r);
    }
    const std::vector<std::string> allowed = parse_allow_comment(line);
    if (allowed.empty()) continue;
    const bool comment_only = trim(line).rfind("//", 0) == 0;
    for (const std::string& r : allowed) {
      if (!is_known_rule(r)) {
        note_bad(r);
        continue;
      }
      sup.per_line[i].insert(r);
      if (comment_only && i + 1 < raw_lines.size()) sup.per_line[i + 1].insert(r);
    }
  }
  return sup;
}

void collect_vector_bool_names(const std::string& content, std::set<std::string>& out) {
  const std::string code = blank_comments_and_strings(content);
  auto begin = std::sregex_iterator(code.begin(), code.end(), vector_bool_decl_pattern());
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[3].str();
    if (!name.empty() && !std::isdigit(static_cast<unsigned char>(name[0]))) out.insert(name);
  }
}

std::vector<Violation> lint_source(const std::string& rel_path, const std::string& content,
                                   const Context& ctx) {
  std::vector<Violation> out;
  const std::string code = blank_comments_and_strings(content);
  const std::vector<std::string> raw_lines = split_lines(content);
  const std::vector<std::string> code_lines = split_lines(code);
  const Suppressions sup = build_suppressions(rel_path, raw_lines);

  auto report = [&](const std::string& rule, std::size_t line0, const std::string& msg) {
    if (!sup.allows(rule, line0)) out.push_back({rel_path, line0 + 1, rule, msg});
  };
  // Meta findings go through report() too, so a file documenting the
  // suppression syntax can allow(bad-suppression) its own examples.
  for (const Violation& v : sup.meta) report(v.rule, v.line - 1, v.message);

  // raw-rng / nondeterminism (path-exempt: the RNG implementation itself —
  // raw-rng for both rng files, nondeterminism for rng.cpp only, where the
  // one sanctioned entropy escape hatch may live).
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    for (const PatternRule& pr : raw_rng_patterns()) {
      const bool is_raw_rng = std::string(pr.rule) == "raw-rng";
      if (is_raw_rng && is_rng_file(rel_path)) continue;
      if (!is_raw_rng && rel_path == "src/common/rng.cpp") continue;
      if (std::regex_search(code_lines[i], pr.pattern)) report(pr.rule, i, pr.message);
    }
  }

  // raw-timing: clock reads live only in the sanctioned timing layer (the
  // Timer stopwatch and the TraceSpan recorder); everywhere else wall-clock
  // flows through those types so it can never leak into results.
  if (rel_path != "src/common/timer.hpp" && rel_path != "src/common/trace.cpp") {
    static const std::regex steady(R"(\bstd::chrono::steady_clock\b)");
    for (std::size_t i = 0; i < code_lines.size(); ++i)
      if (std::regex_search(code_lines[i], steady))
        report("raw-timing", i,
               "raw steady_clock read; use xpuf::Timer or XPUF_TRACE_SPAN instead");
  }

  // raw-syscall: every raw socket/epoll/fd syscall and every errno branch is
  // confined to the wrapper TU (net/async/syscall.cpp), which folds
  // EINTR/EAGAIN/partial transfers into IoStatus and owns the byte
  // conservation counters. A raw call site anywhere else re-opens the errno
  // branch matrix the wrappers closed. Three pattern tiers: errno itself,
  // ::-qualified calls of any wrapped syscall, and the unqualified names
  // distinctive enough to never collide with project identifiers.
  if (rel_path != "src/net/async/syscall.cpp") {
    static const std::vector<PatternRule> pats = {
        {"raw-syscall", std::regex(R"(\berrno\b)"),
         "errno inspection outside the syscall wrapper TU; consume the IoStatus a "
         "net::async::sys_* wrapper returns instead"},
        {"raw-syscall",
         std::regex(
             R"((^|[^\w])::\s*(read|write|close|accept4?|recv|send|connect|bind|listen|socket|socketpair|fcntl|setsockopt|getsockopt|getsockname|shutdown|unlink|epoll_create1?|epoll_ctl|epoll_wait)\s*\()"),
         "raw ::syscall outside the wrapper TU; use the net::async::sys_* wrappers"},
        {"raw-syscall",
         std::regex(
             R"((^|[^\w:.])(accept4|socketpair|setsockopt|getsockname|epoll_create1?|epoll_ctl|epoll_wait)\s*\()"),
         "raw socket/epoll syscall outside the wrapper TU; use the net::async::sys_* "
         "wrappers"},
    };
    for (std::size_t i = 0; i < code_lines.size(); ++i)
      for (const PatternRule& pr : pats)
        if (std::regex_search(code_lines[i], pr.pattern)) report(pr.rule, i, pr.message);
  }

  // narrowing.
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    if (std::regex_search(code_lines[i], float_literal_pattern()))
      report("narrowing", i, "double literal initializes a float; add an f suffix");
    if (std::regex_search(code_lines[i], cstyle_cast_pattern()))
      report("narrowing", i, "C-style arithmetic cast; use static_cast<> so narrowing is explicit");
  }

  // vector-bool-parallel. The name set is scoped: identifiers declared in
  // this file plus in every project header this file includes.
  std::set<std::string> vb_names;
  collect_vector_bool_names(content, vb_names);
  for (const IncludeDirective& inc : collect_includes(raw_lines)) {
    if (inc.angled) continue;
    for (const auto& [file, names] : ctx.vector_bool_names_by_file) {
      if (file == inc.path || (file.size() > inc.path.size() &&
                               file.compare(file.size() - inc.path.size() - 1, 1, "/") == 0 &&
                               file.compare(file.size() - inc.path.size(), inc.path.size(),
                                            inc.path) == 0)) {
        vb_names.insert(names.begin(), names.end());
      }
    }
  }
  {
    const std::vector<bool> region = mark_parallel_regions(code);
    // Line start offsets into `code`.
    std::vector<std::size_t> line_begin;
    line_begin.push_back(0);
    for (std::size_t i = 0; i < code.size(); ++i)
      if (code[i] == '\n') line_begin.push_back(i + 1);
    for (std::size_t li = 0; li < code_lines.size(); ++li) {
      const std::size_t begin = line_begin[li];
      const std::size_t end = begin + code_lines[li].size();
      bool any_in_region = false;
      for (std::size_t p = begin; p < end && p < region.size(); ++p)
        if (region[p]) {
          any_in_region = true;
          break;
        }
      if (!any_in_region) continue;
      const std::string& line = code_lines[li];
      if (std::regex_search(line, vector_bool_use_pattern())) {
        report("vector-bool-parallel", li,
               "vector<bool> type used inside a parallel_for body; stage std::uint8_t and "
               "commit serially");
        continue;
      }
      for (const std::string& name : vb_names) {
        const std::regex use(R"((^|[^\w.])()" + name + R"()\s*\[)");
        std::smatch m;
        if (std::regex_search(line, m, use) ||
            std::regex_search(line, std::regex(R"(\.\s*()" + name + R"()\s*\[)"))) {
          report("vector-bool-parallel", li,
                 "'" + name +
                     "' is declared vector<bool>; indexing it inside a parallel_for body "
                     "races on shared words");
          break;
        }
      }
    }
  }

  // wire-portability: the frame codec (src/net/wire.*) is the one place
  // where bytes cross a machine boundary, so it must stay byte-exact on any
  // host: no struct aliasing (memcpy/reinterpret_cast/bit_cast reads memory
  // in host endianness and host padding), and no integer type whose width
  // the standard leaves to the platform. Fields serialize one at a time
  // through the explicit little-endian put_*/read_* helpers.
  if (path_has_prefix(rel_path, "src/net/wire.")) {
    static const std::vector<PatternRule> pats = {
        {"wire-portability", std::regex(R"(\bmem(cpy|move)\s*\()"),
         "memcpy/memmove aliases object bytes in host order; serialize each field "
         "through the put_/read_ helpers"},
        {"wire-portability", std::regex(R"(\breinterpret_cast\b|\bstd::bit_cast\b)"),
         "type punning reads host-endian, host-padded memory; decode through WireReader"},
        {"wire-portability",
         std::regex(R"((^|[^\w])(int|long|short|unsigned|signed|size_t|wchar_t)\b)"),
         "platform-width integer in the wire codec; use std::uintN_t so the layout is "
         "identical on every host"},
    };
    for (std::size_t i = 0; i < code_lines.size(); ++i)
      for (const PatternRule& pr : pats)
        if (std::regex_search(code_lines[i], pr.pattern)) report(pr.rule, i, pr.message);
  }

  // require-guard: only .cpp files in src/puf/ and src/sim/.
  const bool guard_scope =
      (path_has_prefix(rel_path, "src/puf/") || path_has_prefix(rel_path, "src/sim/")) &&
      rel_path.size() > 4 && rel_path.substr(rel_path.size() - 4) == ".cpp";
  if (guard_scope) {
    for (const FunctionDef& def : namespace_scope_functions(code)) {
      if (!std::regex_search(def.params, container_param_pattern())) continue;
      if (def.body.find("XPUF_REQUIRE") != std::string::npos) continue;
      // A body that immediately delegates has its guard in the callee; the
      // heuristic skips single-statement forwarders.
      if (std::count(def.body.begin(), def.body.end(), ';') <= 1) continue;
      report("require-guard", def.line0,
             "public entry point takes dimensioned parameters but has no XPUF_REQUIRE "
             "precondition check");
    }
  }

  // scalar-eval: the scan/selection/attack hot paths (src/puf/ plus the
  // tester) route noise-free evaluation through the batched linear-view
  // core; a new per-challenge member call re-opens the cell-at-a-time cost
  // the batch rework removed. Sanctioned per-cell sites — the scalar
  // reference scan mode, the measurement-based baseline, ground-truth
  // analysis — carry allow comments stating why.
  const bool scalar_scope =
      rel_path == "src/sim/tester.cpp" ||
      (path_has_prefix(rel_path, "src/puf/") && rel_path.size() > 4 &&
       rel_path.substr(rel_path.size() - 4) == ".cpp");
  if (scalar_scope) {
    static const std::regex scalar_call(
        R"((\.|->)\s*(delay_difference|one_probability|measure_soft_response)\s*\()");
    for (std::size_t i = 0; i < code_lines.size(); ++i)
      if (std::regex_search(code_lines[i], scalar_call))
        report("scalar-eval", i,
               "per-challenge scalar evaluation call site; route the batch through the "
               "FeatureBlock core (sim/linear.hpp)");
  }

  // The issuance hot path raises the bar further: on the authentication/
  // selection/screening/database files, per-challenge MODEL evaluation
  // (predict_xor and friends, one challenge per call) is also a scalar-eval
  // finding — candidates must be screened in blocks through
  // ChallengeScreener. Scoped to exactly those files so model-class
  // internals (enrollment, model.cpp's own scalar kernels, analysis tools)
  // stay legal; the deliberate scalar fallback (issue_random's unscreened
  // baseline) carries an allow comment stating why.
  const bool model_eval_scope =
      rel_path == "src/puf/authentication.cpp" || rel_path == "src/puf/selection.cpp" ||
      rel_path == "src/puf/screening.cpp" || rel_path == "src/puf/database.cpp";
  if (model_eval_scope) {
    static const std::regex model_eval_call(
        R"((\.|->)\s*(predict_soft|predict_xor|all_stable|predict_response)\s*\()");
    for (std::size_t i = 0; i < code_lines.size(); ++i)
      if (std::regex_search(code_lines[i], model_eval_call))
        report("scalar-eval", i,
               "per-challenge model evaluation in the issuance hot path; screen "
               "candidates in blocks through ChallengeScreener (puf/screening.hpp)");
  }

  // ml-dot: the ML stack's forward passes and objectives share one
  // accumulation order through linalg::dot and the GEMM kernels — that is
  // what makes batch-vs-scalar equivalence a bit-level claim. A new
  // `acc += a[i] * b[i]` loop in src/ml/ forks that order (and the scalar
  // cost) again; sanctioned exceptions carry allow comments stating why.
  const bool ml_scope = path_has_prefix(rel_path, "src/ml/") && rel_path.size() > 4 &&
                        rel_path.substr(rel_path.size() - 4) == ".cpp";
  if (ml_scope) {
    static const std::regex ml_dot(
        R"(\+=\s*[\w.]+\s*\[\s*(\w+)\s*\]\s*\*\s*[\w.]+\s*\[\s*\1\s*\])");
    for (std::size_t i = 0; i < code_lines.size(); ++i)
      if (std::regex_search(code_lines[i], ml_dot))
        report("ml-dot", i,
               "hand-rolled row-wise dot product; use linalg::dot (scalar) or "
               "matmul_nt/matmul_tn (batched) so the accumulation order stays shared");
  }

  // include-order.
  {
    const std::vector<IncludeDirective> includes = collect_includes(raw_lines);
    const bool is_header = rel_path.size() > 4 &&
                           rel_path.substr(rel_path.size() - 4) == ".hpp";
    if (is_header) {
      std::size_t pragma_line = std::string::npos;
      for (std::size_t i = 0; i < code_lines.size(); ++i) {
        if (std::regex_search(code_lines[i], std::regex(R"(^\s*#\s*pragma\s+once\b)"))) {
          pragma_line = i;
          break;
        }
      }
      if (pragma_line == std::string::npos) {
        report("include-order", 0, "header has no #pragma once");
      } else if (!includes.empty() && includes.front().line0 < pragma_line) {
        report("include-order", includes.front().line0,
               "#include precedes #pragma once; the guard must come first");
      }
    }
    const bool is_cpp =
        rel_path.size() > 4 && rel_path.substr(rel_path.size() - 4) == ".cpp";
    if (is_cpp && !includes.empty()) {
      std::string stem = basename_of(rel_path);
      stem = stem.substr(0, stem.size() - 4);
      const auto self = std::find_if(includes.begin(), includes.end(), [&](const auto& inc) {
        const std::string base = basename_of(inc.path);
        return !inc.angled && base == stem + ".hpp";
      });
      if (self != includes.end() && self != includes.begin()) {
        report("include-order", self->line0,
               "self header \"" + self->path + "\" must be the first include");
      }
    }
    // A leading quoted include is the TU's primary header (self header, or
    // e.g. lint.hpp for main.cpp); after it, system headers come before
    // project headers.
    std::size_t first_checked =
        (is_cpp && !includes.empty() && !includes.front().angled) ? 1 : 0;
    bool seen_quoted = false;
    for (std::size_t i = first_checked; i < includes.size(); ++i) {
      if (!includes[i].angled) {
        seen_quoted = true;
      } else if (seen_quoted) {
        report("include-order", includes[i].line0,
               "<" + includes[i].path + "> appears after \"project\" includes; system "
               "headers come first");
      }
    }
  }

  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return out;
}

std::vector<Violation> lint_tree(const std::string& root) {
  return analyze_project(root).violations;
}

std::vector<Violation> check_tidy_config(const std::string& path) {
  std::vector<Violation> out;
  std::ifstream in(path);
  if (!in) {
    out.push_back({path, 0, "tidy-config", "config file missing or unreadable"});
    return out;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  const std::vector<std::string> lines = split_lines(content);
  bool has_checks = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.find('\t') != std::string::npos)
      out.push_back({path, i + 1, "tidy-config", "tab indentation; clang-tidy YAML requires spaces"});
    if (std::regex_search(line, std::regex(R"(^Checks\s*:)"))) has_checks = true;
    // Quote balance is checked outside YAML comments (apostrophes in prose
    // are fine).
    const std::size_t hash = line.find('#');
    const std::string yaml = hash == std::string::npos ? line : line.substr(0, hash);
    const auto quotes = std::count(yaml.begin(), yaml.end(), '\'');
    if (quotes % 2 != 0)
      out.push_back({path, i + 1, "tidy-config", "unbalanced single quote"});
  }
  if (!has_checks) out.push_back({path, 0, "tidy-config", "no top-level Checks: key"});
  return out;
}

}  // namespace xpuf::lint
