#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

namespace xpuf::lint {

namespace {

namespace fs = std::filesystem;

const std::vector<RuleInfo> kRules = {
    {"raw-rng",
     "raw std random engine or rand()/srand(); draw from common/rng streams instead"},
    {"nondeterminism",
     "wall-clock / random_device entropy source outside common/rng.cpp breaks reseedability"},
    {"vector-bool-parallel",
     "vector<bool> touched inside a parallel_for body; adjacent bits share words — stage "
     "bytes and commit serially"},
    {"require-guard",
     "public puf//sim/ entry point takes container/dimension parameters but never checks "
     "XPUF_REQUIRE"},
    {"raw-timing",
     "raw std::chrono::steady_clock outside common/timer.hpp / common/trace.cpp; time "
     "through Timer/TraceSpan so wall-clock stays out of measurement paths"},
    {"narrowing",
     "double literal narrowed to float, or C-style arithmetic cast; use an f suffix / "
     "static_cast"},
    {"include-order",
     "header missing #pragma once, self-header not included first, or <system> include "
     "after a \"project\" include"},
    {"wire-portability",
     "wire codec uses memcpy/type-punning or non-fixed-width integers; serialize "
     "field-by-field with explicit little-endian put_/read_ helpers"},
    {"scalar-eval",
     "per-challenge delay_difference/one_probability/measure_soft_response call in a "
     "protocol hot path; evaluate batches through the FeatureBlock core (sim/linear.hpp)"},
    {"ml-dot",
     "hand-rolled row-wise dot-product loop in src/ml/; route it through linalg::dot or "
     "the GEMM kernels (matmul_nt / matmul_tn) so batch and scalar paths share one "
     "accumulation order"},
    {"bad-suppression", "xpuf-lint allow comment names a rule that does not exist"},
};

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Replaces comments and string/character literals with spaces (newlines and
/// line lengths preserved) so rule patterns only ever match real code.
std::string blank_comments_and_strings(const std::string& src) {
  std::string out = src;
  enum class S { kCode, kLine, kBlock, kString, kChar };
  S s = S::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (s) {
      case S::kCode:
        if (c == '/' && next == '/') {
          s = S::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          s = S::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          s = S::kString;
        } else if (c == '\'' && (i == 0 || !ident_char(src[i - 1]))) {
          // Ident-adjacent quotes are digit separators (2'000), not chars.
          s = S::kChar;
        }
        break;
      case S::kLine:
        if (c == '\n')
          s = S::kCode;
        else
          out[i] = ' ';
        break;
      case S::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          s = S::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case S::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          s = S::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case S::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          s = S::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> parse_allow_list(const std::string& line, const std::string& marker) {
  std::vector<std::string> out;
  const std::size_t at = line.find(marker);
  if (at == std::string::npos) return out;
  const std::size_t open = line.find('(', at + marker.size());
  if (open == std::string::npos) return out;
  const std::size_t close = line.find(')', open);
  if (close == std::string::npos) return out;
  std::string inner = line.substr(open + 1, close - open - 1);
  std::stringstream ss(inner);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool path_has_prefix(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool is_rng_file(const std::string& rel) {
  return rel == "src/common/rng.hpp" || rel == "src/common/rng.cpp";
}

std::string basename_of(const std::string& p) {
  const std::size_t slash = p.find_last_of('/');
  return slash == std::string::npos ? p : p.substr(slash + 1);
}

/// Per-line suppression sets: an allow comment covers its own line; a
/// comment-only allow line additionally covers the next line.
struct Suppressions {
  std::set<std::string> file_wide;
  std::vector<std::set<std::string>> per_line;  // indexed by 0-based line
  std::vector<Violation> meta;                  // bad-suppression findings

  bool allows(const std::string& rule, std::size_t line0) const {
    if (file_wide.count(rule)) return true;
    return line0 < per_line.size() && per_line[line0].count(rule) != 0;
  }
};

Suppressions build_suppressions(const std::string& rel_path,
                                const std::vector<std::string>& raw_lines) {
  Suppressions sup;
  sup.per_line.resize(raw_lines.size());
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    auto note_bad = [&](const std::string& name) {
      sup.meta.push_back({rel_path, i + 1, "bad-suppression",
                          "unknown rule '" + name + "' in xpuf-lint allow comment"});
    };
    for (const std::string& r : parse_allow_file_comment(line)) {
      if (!is_known_rule(r)) {
        note_bad(r);
        continue;
      }
      sup.file_wide.insert(r);
    }
    const std::vector<std::string> allowed = parse_allow_comment(line);
    if (allowed.empty()) continue;
    const bool comment_only = trim(line).rfind("//", 0) == 0;
    for (const std::string& r : allowed) {
      if (!is_known_rule(r)) {
        note_bad(r);
        continue;
      }
      sup.per_line[i].insert(r);
      if (comment_only && i + 1 < raw_lines.size()) sup.per_line[i + 1].insert(r);
    }
  }
  return sup;
}

// ---------------------------------------------------------------------------
// Simple per-line regex rules.

struct PatternRule {
  const char* rule;
  std::regex pattern;
  const char* message;
};

const std::vector<PatternRule>& raw_rng_patterns() {
  static const std::vector<PatternRule> pats = {
      {"raw-rng", std::regex(R"(\bstd::mt19937)"),
       "std::mt19937 bypasses the seeded xoshiro streams; use xpuf::Rng"},
      {"raw-rng", std::regex(R"(\bstd::(minstd_rand0?|default_random_engine|ranlux\w+|knuth_b)\b)"),
       "std <random> engine bypasses the seeded xoshiro streams; use xpuf::Rng"},
      {"raw-rng", std::regex(R"((^|[^\w:])s?rand\s*\()"),
       "C rand()/srand() is neither seeded nor portable; use xpuf::Rng"},
      {"raw-rng", std::regex(R"(\bstd::\w+_distribution\b)"),
       "std <random> distributions differ across standard libraries; use the Rng "
       "distribution helpers"},
      {"nondeterminism", std::regex(R"(\bstd::random_device\b|[^\w:]random_device\b)"),
       "random_device injects unseeded entropy; derive streams from the experiment seed"},
      {"nondeterminism", std::regex(R"((^|[^\w:.])(time|clock)\s*\()"),
       "wall-clock entropy makes runs unreproducible; thread an explicit seed instead"},
      {"nondeterminism", std::regex(R"(\bgettimeofday\b|\bstd::chrono::system_clock\b)"),
       "wall-clock entropy makes runs unreproducible; use steady_clock for intervals"},
  };
  return pats;
}

const std::regex& float_literal_pattern() {
  // float x = 0.5;  (double literal, no f suffix)
  static const std::regex re(
      R"(\bfloat\s+\w+\s*=\s*[^;{]*\b\d+\.\d*(e[+-]?\d+)?(?![0-9fF]))");
  return re;
}

const std::regex& cstyle_cast_pattern() {
  static const std::regex re(
      R"(\(\s*(float|double|int|unsigned|long|short|std::size_t|size_t|std::u?int(8|16|32|64)_t|u?int(8|16|32|64)_t)\s*\)\s*[A-Za-z_0-9(])");
  return re;
}

// ---------------------------------------------------------------------------
// vector<bool> declarations and parallel_for regions.

const std::regex& vector_bool_decl_pattern() {
  static const std::regex re(
      R"(std::vector\s*<\s*(std::vector\s*<\s*)?bool\s*>\s*(>\s*)?[&*]?\s*([A-Za-z_]\w*))");
  return re;
}

const std::regex& vector_bool_use_pattern() {
  static const std::regex re(R"(\bvector\s*<\s*bool\b)");
  return re;
}

/// Marks, per character of the blanked source, whether it falls inside a
/// parallel_for / parallel_reduce call (anywhere between the call's opening
/// parenthesis and its matching close — which covers the lambda body).
std::vector<bool> mark_parallel_regions(const std::string& code) {
  std::vector<bool> in_region(code.size(), false);
  std::vector<int> call_stack;  // paren depth at each open parallel call
  int paren_depth = 0;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (ident_char(c)) {
      std::size_t j = i;
      while (j < code.size() && ident_char(code[j])) ++j;
      const std::string word = code.substr(i, j - i);
      if ((word == "parallel_for" || word == "parallel_reduce") &&
          (i == 0 || (!ident_char(code[i - 1]) && code[i - 1] != ':'))) {
        std::size_t k = j;
        while (k < code.size() && std::isspace(static_cast<unsigned char>(code[k]))) ++k;
        if (k < code.size() && code[k] == '(') call_stack.push_back(paren_depth);
      }
      if (!call_stack.empty())
        for (std::size_t p = i; p < j; ++p) in_region[p] = true;
      i = j;
      continue;
    }
    if (c == '(') ++paren_depth;
    if (c == ')') {
      --paren_depth;
      if (!call_stack.empty() && paren_depth == call_stack.back()) call_stack.pop_back();
    }
    if (!call_stack.empty()) in_region[i] = true;
    ++i;
  }
  return in_region;
}

// ---------------------------------------------------------------------------
// require-guard: function-definition scanner for src/puf//src/sim/ .cpp.

const std::regex& container_param_pattern() {
  static const std::regex re(
      R"(std::vector\s*<|\bMatrix\b|\bVector\b|\bChallenge\b|\bBatch\b|\bBlock\b|\bScan\b|\bDataset\b|\bstd::span\b|\bstd::size_t\b)");
  return re;
}

const std::set<std::string>& signature_stop_words() {
  static const std::set<std::string> kw = {"if",     "for",   "while", "switch",
                                           "return", "catch", "do",    "else",
                                           "struct", "class", "enum",  "union"};
  return kw;
}

struct FunctionDef {
  std::size_t line0;      ///< 0-based line of the opening signature.
  std::string signature;  ///< Text from statement start through the param ')'.
  std::string params;     ///< First balanced parenthesis group.
  std::string body;       ///< Text between the function's braces.
};

/// Blanks preprocessor-directive lines (they are not ;-terminated, so they
/// would otherwise pollute the statement buffer of the structural pass).
std::string blank_preprocessor_lines(const std::string& code) {
  std::string out = code;
  std::size_t line_start = 0;
  bool in_directive = false;  // carries across '\'-continued directive lines
  for (std::size_t i = 0; i <= code.size(); ++i) {
    if (i == code.size() || code[i] == '\n') {
      std::size_t j = line_start;
      while (j < i && std::isspace(static_cast<unsigned char>(code[j]))) ++j;
      if (j < i && code[j] == '#') in_directive = true;
      if (in_directive) {
        for (std::size_t k = line_start; k < i; ++k) out[k] = ' ';
        std::size_t last = i;
        while (last > line_start &&
               std::isspace(static_cast<unsigned char>(code[last - 1])) && code[last - 1] != '\n')
          --last;
        in_directive = last > line_start && code[last - 1] == '\\';
      }
      line_start = i + 1;
    }
  }
  return out;
}

/// Extremely small structural pass: tracks namespace nesting on the blanked
/// source and yields function definitions at namespace scope.
std::vector<FunctionDef> find_namespace_scope_functions(const std::string& raw_code) {
  const std::string code = blank_preprocessor_lines(raw_code);
  std::vector<FunctionDef> out;
  std::vector<char> scopes;  // 'n' named ns, 'a' anon ns, 'f' function, 'o' other
  std::string stmt;          // text since last ; { }
  bool stmt_has_content = false;  // stmt holds a non-whitespace char
  std::size_t stmt_line0 = 0;
  std::size_t line0 = 0;
  auto ns_depth = [&] {
    return static_cast<std::size_t>(
        std::count_if(scopes.begin(), scopes.end(), [](char s) { return s == 'n' || s == 'a'; }));
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '\n') ++line0;
    if (c == ';') {
      stmt.clear();
      stmt_has_content = false;
      stmt_line0 = line0 + 1;
      continue;
    }
    if (c == '}') {
      if (!scopes.empty()) scopes.pop_back();
      stmt.clear();
      stmt_has_content = false;
      stmt_line0 = line0 + 1;
      continue;
    }
    if (c != '{') {
      // Whitespace accumulates in stmt, so anchor the statement's line on the
      // first real character, not on stmt.empty().
      if (!stmt_has_content && !std::isspace(static_cast<unsigned char>(c))) {
        stmt_line0 = line0;
        stmt_has_content = true;
      }
      stmt.push_back(c);
      continue;
    }
    // Opening brace: classify the scope from the pending statement text.
    const std::string t = trim(stmt);
    static const std::regex ns_re(R"(^namespace(\s+[\w:]+)?\s*$)");
    std::smatch m;
    char kind = 'o';
    if (std::regex_match(t, m, ns_re)) {
      kind = m[1].matched ? 'n' : 'a';
    } else if (scopes.size() == ns_depth() && t.find('(') != std::string::npos) {
      // Candidate function definition at namespace scope. Extract the first
      // balanced paren group and the identifier before it.
      const std::size_t open = t.find('(');
      int depth = 0;
      std::size_t close = std::string::npos;
      for (std::size_t k = open; k < t.size(); ++k) {
        if (t[k] == '(') ++depth;
        if (t[k] == ')' && --depth == 0) {
          close = k;
          break;
        }
      }
      std::size_t name_end = open;
      while (name_end > 0 && std::isspace(static_cast<unsigned char>(t[name_end - 1])))
        --name_end;
      std::size_t name_begin = name_end;
      while (name_begin > 0 && ident_char(t[name_begin - 1])) --name_begin;
      const std::string name = t.substr(name_begin, name_end - name_begin);
      const bool in_anon =
          std::find(scopes.begin(), scopes.end(), 'a') != scopes.end();
      if (close != std::string::npos && !name.empty() && !in_anon &&
          !signature_stop_words().count(name) && t.find("operator") == std::string::npos &&
          t.rfind("static ", 0) != 0 && t.find('=') == std::string::npos) {
        kind = 'f';
        FunctionDef def;
        def.line0 = stmt_line0;
        def.signature = t.substr(0, close + 1);
        def.params = t.substr(open + 1, close - open - 1);
        // Capture the body: from i+1 to the matching close brace.
        int bdepth = 1;
        std::size_t j = i + 1;
        while (j < code.size() && bdepth > 0) {
          if (code[j] == '{') ++bdepth;
          if (code[j] == '}') --bdepth;
          ++j;
        }
        def.body = code.substr(i + 1, j - i - 2 < code.size() ? j - i - 2 : 0);
        out.push_back(std::move(def));
      }
    }
    scopes.push_back(kind);
    stmt.clear();
    stmt_has_content = false;
    stmt_line0 = line0 + 1;
  }
  return out;
}

// ---------------------------------------------------------------------------
// include-order.

struct IncludeDirective {
  std::size_t line0;
  std::string path;  ///< Without the delimiters.
  bool angled;
};

// Collected from the RAW lines: the comment/string blanking pass erases the
// path inside a quoted include, which is exactly the text this rule needs.
std::vector<IncludeDirective> collect_includes(const std::vector<std::string>& raw_lines) {
  static const std::regex re(R"(^\s*#\s*include\s*([<"])([^>"]+)[>"])");
  std::vector<IncludeDirective> out;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(raw_lines[i], m, re))
      out.push_back({i, m[2].str(), m[1].str() == "<"});
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

bool is_known_rule(const std::string& rule) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return r.name == rule; });
}

std::vector<std::string> parse_allow_comment(const std::string& line) {
  // Reject the allow-file form: "allow-file(" also contains "allow" but the
  // marker match below requires the next non-space char to be '('.
  const std::size_t at = line.find("xpuf-lint:");
  if (at == std::string::npos) return {};
  std::string rest = trim(line.substr(at + std::string("xpuf-lint:").size()));
  if (rest.rfind("allow", 0) != 0 || rest.rfind("allow-file", 0) == 0) return {};
  return parse_allow_list(line, "xpuf-lint:");
}

std::vector<std::string> parse_allow_file_comment(const std::string& line) {
  const std::size_t at = line.find("xpuf-lint:");
  if (at == std::string::npos) return {};
  std::string rest = trim(line.substr(at + std::string("xpuf-lint:").size()));
  if (rest.rfind("allow-file", 0) != 0) return {};
  return parse_allow_list(line, "allow-file");
}

void collect_vector_bool_names(const std::string& content, std::set<std::string>& out) {
  const std::string code = blank_comments_and_strings(content);
  auto begin = std::sregex_iterator(code.begin(), code.end(), vector_bool_decl_pattern());
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[3].str();
    if (!name.empty() && !std::isdigit(static_cast<unsigned char>(name[0]))) out.insert(name);
  }
}

std::vector<Violation> lint_source(const std::string& rel_path, const std::string& content,
                                   const Context& ctx) {
  std::vector<Violation> out;
  const std::string code = blank_comments_and_strings(content);
  const std::vector<std::string> raw_lines = split_lines(content);
  const std::vector<std::string> code_lines = split_lines(code);
  const Suppressions sup = build_suppressions(rel_path, raw_lines);

  auto report = [&](const std::string& rule, std::size_t line0, const std::string& msg) {
    if (!sup.allows(rule, line0)) out.push_back({rel_path, line0 + 1, rule, msg});
  };
  // Meta findings go through report() too, so a file documenting the
  // suppression syntax can allow(bad-suppression) its own examples.
  for (const Violation& v : sup.meta) report(v.rule, v.line - 1, v.message);

  // raw-rng / nondeterminism (path-exempt: the RNG implementation itself —
  // raw-rng for both rng files, nondeterminism for rng.cpp only, where the
  // one sanctioned entropy escape hatch may live).
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    for (const PatternRule& pr : raw_rng_patterns()) {
      const bool is_raw_rng = std::string(pr.rule) == "raw-rng";
      if (is_raw_rng && is_rng_file(rel_path)) continue;
      if (!is_raw_rng && rel_path == "src/common/rng.cpp") continue;
      if (std::regex_search(code_lines[i], pr.pattern)) report(pr.rule, i, pr.message);
    }
  }

  // raw-timing: clock reads live only in the sanctioned timing layer (the
  // Timer stopwatch and the TraceSpan recorder); everywhere else wall-clock
  // flows through those types so it can never leak into results.
  if (rel_path != "src/common/timer.hpp" && rel_path != "src/common/trace.cpp") {
    static const std::regex steady(R"(\bstd::chrono::steady_clock\b)");
    for (std::size_t i = 0; i < code_lines.size(); ++i)
      if (std::regex_search(code_lines[i], steady))
        report("raw-timing", i,
               "raw steady_clock read; use xpuf::Timer or XPUF_TRACE_SPAN instead");
  }

  // narrowing.
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    if (std::regex_search(code_lines[i], float_literal_pattern()))
      report("narrowing", i, "double literal initializes a float; add an f suffix");
    if (std::regex_search(code_lines[i], cstyle_cast_pattern()))
      report("narrowing", i, "C-style arithmetic cast; use static_cast<> so narrowing is explicit");
  }

  // vector-bool-parallel. The name set is scoped: identifiers declared in
  // this file plus in every project header this file includes.
  std::set<std::string> vb_names;
  collect_vector_bool_names(content, vb_names);
  for (const IncludeDirective& inc : collect_includes(raw_lines)) {
    if (inc.angled) continue;
    for (const auto& [file, names] : ctx.vector_bool_names_by_file) {
      if (file == inc.path || (file.size() > inc.path.size() &&
                               file.compare(file.size() - inc.path.size() - 1, 1, "/") == 0 &&
                               file.compare(file.size() - inc.path.size(), inc.path.size(),
                                            inc.path) == 0)) {
        vb_names.insert(names.begin(), names.end());
      }
    }
  }
  {
    const std::vector<bool> region = mark_parallel_regions(code);
    // Line start offsets into `code`.
    std::vector<std::size_t> line_begin;
    line_begin.push_back(0);
    for (std::size_t i = 0; i < code.size(); ++i)
      if (code[i] == '\n') line_begin.push_back(i + 1);
    for (std::size_t li = 0; li < code_lines.size(); ++li) {
      const std::size_t begin = line_begin[li];
      const std::size_t end = begin + code_lines[li].size();
      bool any_in_region = false;
      for (std::size_t p = begin; p < end && p < region.size(); ++p)
        if (region[p]) {
          any_in_region = true;
          break;
        }
      if (!any_in_region) continue;
      const std::string& line = code_lines[li];
      if (std::regex_search(line, vector_bool_use_pattern())) {
        report("vector-bool-parallel", li,
               "vector<bool> type used inside a parallel_for body; stage std::uint8_t and "
               "commit serially");
        continue;
      }
      for (const std::string& name : vb_names) {
        const std::regex use(R"((^|[^\w.])()" + name + R"()\s*\[)");
        std::smatch m;
        if (std::regex_search(line, m, use) ||
            std::regex_search(line, std::regex(R"(\.\s*()" + name + R"()\s*\[)"))) {
          report("vector-bool-parallel", li,
                 "'" + name +
                     "' is declared vector<bool>; indexing it inside a parallel_for body "
                     "races on shared words");
          break;
        }
      }
    }
  }

  // wire-portability: the frame codec (src/net/wire.*) is the one place
  // where bytes cross a machine boundary, so it must stay byte-exact on any
  // host: no struct aliasing (memcpy/reinterpret_cast/bit_cast reads memory
  // in host endianness and host padding), and no integer type whose width
  // the standard leaves to the platform. Fields serialize one at a time
  // through the explicit little-endian put_*/read_* helpers.
  if (path_has_prefix(rel_path, "src/net/wire.")) {
    static const std::vector<PatternRule> pats = {
        {"wire-portability", std::regex(R"(\bmem(cpy|move)\s*\()"),
         "memcpy/memmove aliases object bytes in host order; serialize each field "
         "through the put_/read_ helpers"},
        {"wire-portability", std::regex(R"(\breinterpret_cast\b|\bstd::bit_cast\b)"),
         "type punning reads host-endian, host-padded memory; decode through WireReader"},
        {"wire-portability",
         std::regex(R"((^|[^\w])(int|long|short|unsigned|signed|size_t|wchar_t)\b)"),
         "platform-width integer in the wire codec; use std::uintN_t so the layout is "
         "identical on every host"},
    };
    for (std::size_t i = 0; i < code_lines.size(); ++i)
      for (const PatternRule& pr : pats)
        if (std::regex_search(code_lines[i], pr.pattern)) report(pr.rule, i, pr.message);
  }

  // require-guard: only .cpp files in src/puf/ and src/sim/.
  const bool guard_scope =
      (path_has_prefix(rel_path, "src/puf/") || path_has_prefix(rel_path, "src/sim/")) &&
      rel_path.size() > 4 && rel_path.substr(rel_path.size() - 4) == ".cpp";
  if (guard_scope) {
    for (const FunctionDef& def : find_namespace_scope_functions(code)) {
      if (!std::regex_search(def.params, container_param_pattern())) continue;
      if (def.body.find("XPUF_REQUIRE") != std::string::npos) continue;
      // A body that immediately delegates has its guard in the callee; the
      // heuristic skips single-statement forwarders.
      if (std::count(def.body.begin(), def.body.end(), ';') <= 1) continue;
      report("require-guard", def.line0,
             "public entry point takes dimensioned parameters but has no XPUF_REQUIRE "
             "precondition check");
    }
  }

  // scalar-eval: the scan/selection/attack hot paths (src/puf/ plus the
  // tester) route noise-free evaluation through the batched linear-view
  // core; a new per-challenge member call re-opens the cell-at-a-time cost
  // the batch rework removed. Sanctioned per-cell sites — the scalar
  // reference scan mode, the measurement-based baseline, ground-truth
  // analysis — carry allow comments stating why.
  const bool scalar_scope =
      rel_path == "src/sim/tester.cpp" ||
      (path_has_prefix(rel_path, "src/puf/") && rel_path.size() > 4 &&
       rel_path.substr(rel_path.size() - 4) == ".cpp");
  if (scalar_scope) {
    static const std::regex scalar_call(
        R"((\.|->)\s*(delay_difference|one_probability|measure_soft_response)\s*\()");
    for (std::size_t i = 0; i < code_lines.size(); ++i)
      if (std::regex_search(code_lines[i], scalar_call))
        report("scalar-eval", i,
               "per-challenge scalar evaluation call site; route the batch through the "
               "FeatureBlock core (sim/linear.hpp)");
  }

  // ml-dot: the ML stack's forward passes and objectives share one
  // accumulation order through linalg::dot and the GEMM kernels — that is
  // what makes batch-vs-scalar equivalence a bit-level claim. A new
  // `acc += a[i] * b[i]` loop in src/ml/ forks that order (and the scalar
  // cost) again; sanctioned exceptions carry allow comments stating why.
  const bool ml_scope = path_has_prefix(rel_path, "src/ml/") && rel_path.size() > 4 &&
                        rel_path.substr(rel_path.size() - 4) == ".cpp";
  if (ml_scope) {
    static const std::regex ml_dot(
        R"(\+=\s*[\w.]+\s*\[\s*(\w+)\s*\]\s*\*\s*[\w.]+\s*\[\s*\1\s*\])");
    for (std::size_t i = 0; i < code_lines.size(); ++i)
      if (std::regex_search(code_lines[i], ml_dot))
        report("ml-dot", i,
               "hand-rolled row-wise dot product; use linalg::dot (scalar) or "
               "matmul_nt/matmul_tn (batched) so the accumulation order stays shared");
  }

  // include-order.
  {
    const std::vector<IncludeDirective> includes = collect_includes(raw_lines);
    const bool is_header = rel_path.size() > 4 &&
                           rel_path.substr(rel_path.size() - 4) == ".hpp";
    if (is_header) {
      std::size_t pragma_line = std::string::npos;
      for (std::size_t i = 0; i < code_lines.size(); ++i) {
        if (std::regex_search(code_lines[i], std::regex(R"(^\s*#\s*pragma\s+once\b)"))) {
          pragma_line = i;
          break;
        }
      }
      if (pragma_line == std::string::npos) {
        report("include-order", 0, "header has no #pragma once");
      } else if (!includes.empty() && includes.front().line0 < pragma_line) {
        report("include-order", includes.front().line0,
               "#include precedes #pragma once; the guard must come first");
      }
    }
    const bool is_cpp =
        rel_path.size() > 4 && rel_path.substr(rel_path.size() - 4) == ".cpp";
    if (is_cpp && !includes.empty()) {
      std::string stem = basename_of(rel_path);
      stem = stem.substr(0, stem.size() - 4);
      const auto self = std::find_if(includes.begin(), includes.end(), [&](const auto& inc) {
        const std::string base = basename_of(inc.path);
        return !inc.angled && base == stem + ".hpp";
      });
      if (self != includes.end() && self != includes.begin()) {
        report("include-order", self->line0,
               "self header \"" + self->path + "\" must be the first include");
      }
    }
    // A leading quoted include is the TU's primary header (self header, or
    // e.g. lint.hpp for main.cpp); after it, system headers come before
    // project headers.
    std::size_t first_checked =
        (is_cpp && !includes.empty() && !includes.front().angled) ? 1 : 0;
    bool seen_quoted = false;
    for (std::size_t i = first_checked; i < includes.size(); ++i) {
      if (!includes[i].angled) {
        seen_quoted = true;
      } else if (seen_quoted) {
        report("include-order", includes[i].line0,
               "<" + includes[i].path + "> appears after \"project\" includes; system "
               "headers come first");
      }
    }
  }

  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return out;
}

std::vector<Violation> lint_tree(const std::string& root) {
  const std::vector<std::string> trees = {"src", "bench", "tests", "tools"};
  std::vector<std::pair<std::string, std::string>> files;  // rel path, content
  for (const std::string& tree : trees) {
    const fs::path dir = fs::path(root) / tree;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      files.emplace_back(fs::relative(entry.path(), root).generic_string(), ss.str());
    }
  }
  std::sort(files.begin(), files.end());

  Context ctx;
  for (const auto& [rel, content] : files)
    collect_vector_bool_names(content, ctx.vector_bool_names_by_file[rel]);

  std::vector<Violation> out;
  for (const auto& [rel, content] : files) {
    std::vector<Violation> v = lint_source(rel, content, ctx);
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

std::vector<Violation> check_tidy_config(const std::string& path) {
  std::vector<Violation> out;
  std::ifstream in(path);
  if (!in) {
    out.push_back({path, 0, "tidy-config", "config file missing or unreadable"});
    return out;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  const std::vector<std::string> lines = split_lines(content);
  bool has_checks = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.find('\t') != std::string::npos)
      out.push_back({path, i + 1, "tidy-config", "tab indentation; clang-tidy YAML requires spaces"});
    if (std::regex_search(line, std::regex(R"(^Checks\s*:)"))) has_checks = true;
    // Quote balance is checked outside YAML comments (apostrophes in prose
    // are fine).
    const std::size_t hash = line.find('#');
    const std::string yaml = hash == std::string::npos ? line : line.substr(0, hash);
    const auto quotes = std::count(yaml.begin(), yaml.end(), '\'');
    if (quotes % 2 != 0)
      out.push_back({path, i + 1, "tidy-config", "unbalanced single quote"});
  }
  if (!has_checks) out.push_back({path, 0, "tidy-config", "no top-level Checks: key"});
  return out;
}

}  // namespace xpuf::lint
