// xpuf_lint CLI.
//
//   xpuf_lint --root <repo-root>           analyze src/ bench/ tests/ tools/
//   xpuf_lint --format json                emit the SARIF-lite report instead
//                                          of text (pair with --out FILE)
//   xpuf_lint --stats                      print engine statistics after the
//                                          findings (text mode)
//   xpuf_lint --list-rules                 print the rule registry
//   xpuf_lint --check-tidy-config <file>   validate a .clang-tidy config
//
// Exit status: 0 when clean, 1 when violations were found, 2 on usage or
// I/O error. --format json exits by the same contract, so CI can both
// archive the report and gate on it.
#include "lint.hpp"

#include <cstdio>
#include <fstream>
#include <string>

#include "engine.hpp"

int main(int argc, char** argv) {
  using namespace xpuf::lint;
  std::string root = ".";
  std::string tidy_config;
  std::string format = "text";
  std::string out_path;
  bool list_rules = false;
  bool show_stats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--check-tidy-config" && i + 1 < argc) {
      tidy_config = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
      if (format != "text" && format != "json") {
        std::fprintf(stderr, "xpuf_lint: unknown format '%s' (text|json)\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: xpuf_lint [--root DIR] [--format text|json] [--out FILE] [--stats]\n"
          "                 [--list-rules] [--check-tidy-config FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "xpuf_lint: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (list_rules) {
    for (const RuleInfo& r : rules())
      std::printf("%-22s %s\n", r.name.c_str(), r.summary.c_str());
    return 0;
  }

  if (!tidy_config.empty()) {
    const auto problems = check_tidy_config(tidy_config);
    for (const Violation& v : problems)
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                   v.message.c_str());
    if (problems.empty()) std::printf("tidy config OK: %s\n", tidy_config.c_str());
    return problems.empty() ? 0 : 1;
  }

  const Report report = analyze_project(root);

  if (format == "json") {
    const std::string json = report_to_json(report);
    if (out_path.empty()) {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "xpuf_lint: cannot write '%s'\n", out_path.c_str());
        return 2;
      }
      out << json;
    }
    return report.violations.empty() ? 0 : 1;
  }

  for (const Violation& v : report.violations)
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                 v.message.c_str());
  if (show_stats) {
    const Stats& s = report.stats;
    std::printf("files scanned:       %zu\n", s.files_scanned);
    std::printf("include edges:       %zu\n", s.include_edges);
    std::printf("functions indexed:   %zu\n", s.functions_indexed);
    std::printf("counters indexed:    %zu\n", s.counters_indexed);
    std::printf("guarded-by verified: %zu\n", s.guarded_by_verified);
    std::printf("suppressions:        %zu\n", s.suppressions_total());
    for (const auto& [rule, count] : s.suppressions_by_rule)
      std::printf("  %-22s %zu\n", rule.c_str(), count);
  }
  if (report.violations.empty()) {
    std::printf("xpuf_lint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "xpuf_lint: %zu violation(s)\n", report.violations.size());
  return 1;
}
