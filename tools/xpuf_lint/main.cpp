// xpuf_lint CLI.
//
//   xpuf_lint --root <repo-root>           lint src/ bench/ tests/ tools/
//   xpuf_lint --list-rules                 print the rule registry
//   xpuf_lint --check-tidy-config <file>   validate a .clang-tidy config
//
// Exit status: 0 when clean, 1 when violations were found, 2 on usage error.
#include "lint.hpp"

#include <cstdio>
#include <string>

int main(int argc, char** argv) {
  using namespace xpuf::lint;
  std::string root = ".";
  std::string tidy_config;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--check-tidy-config" && i + 1 < argc) {
      tidy_config = argv[++i];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: xpuf_lint [--root DIR] [--list-rules] [--check-tidy-config FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "xpuf_lint: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (list_rules) {
    for (const RuleInfo& r : rules())
      std::printf("%-22s %s\n", r.name.c_str(), r.summary.c_str());
    return 0;
  }

  if (!tidy_config.empty()) {
    const auto problems = check_tidy_config(tidy_config);
    for (const Violation& v : problems)
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                   v.message.c_str());
    if (problems.empty()) std::printf("tidy config OK: %s\n", tidy_config.c_str());
    return problems.empty() ? 0 : 1;
  }

  const auto violations = lint_tree(root);
  for (const Violation& v : violations)
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                 v.message.c_str());
  if (violations.empty()) {
    std::printf("xpuf_lint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "xpuf_lint: %zu violation(s)\n", violations.size());
  return 1;
}
