#!/usr/bin/env bash
# clang-tidy driver: configures a build tree with compile_commands.json and
# runs the curated .clang-tidy check set over src/ tools/ bench/ examples/.
#
# Usage: tools/tidy.sh [build-dir]     (default: build-tidy)
#
# Exits 0 with a notice when clang-tidy is not installed, so CI matrices that
# include this step stay green on images without LLVM; the .clang-tidy file
# itself is still validated in every build via `ctest -L lint`
# (xpuf_lint --check-tidy-config).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tidy}"

TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY_BIN" >/dev/null 2>&1; then
  echo "tidy.sh: $TIDY_BIN not found on PATH; skipping (install LLVM to enable)" >&2
  exit 0
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
test -f "$BUILD_DIR/compile_commands.json" || {
  echo "tidy.sh: $BUILD_DIR/compile_commands.json missing after configure" >&2
  exit 1
}

# All first-party translation units; third-party and generated code excluded
# by construction (none is checked in).
mapfile -t SOURCES < <(find src tools bench examples -name '*.cpp' | sort)

RUNNER="$(command -v run-clang-tidy || true)"
if [ -n "$RUNNER" ]; then
  "$RUNNER" -clang-tidy-binary "$TIDY_BIN" -p "$BUILD_DIR" -quiet "${SOURCES[@]}"
else
  status=0
  for f in "${SOURCES[@]}"; do
    "$TIDY_BIN" -p "$BUILD_DIR" --quiet "$f" || status=1
  done
  exit "$status"
fi
