#!/usr/bin/env bash
# CI entry point: Release build + full test suite, then a ThreadSanitizer
# build that exercises the parallel execution layer (tests/test_parallel.cpp
# hammers the pool with 1/2/8-lane configurations, so TSan sees every
# synchronization path of common/parallel.cpp and the staged-buffer commits
# in the scan/attack/GEMM code).
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "== Release build + full ctest =="
cmake -B "${prefix}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${prefix}" -j "${jobs}"
ctest --test-dir "${prefix}" --output-on-failure -j "${jobs}"

echo
echo "== ThreadSanitizer build (parallel layer) =="
cmake -B "${prefix}-tsan" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DXPUF_SANITIZE=thread \
  -DXPUF_BUILD_BENCHMARKS=OFF \
  -DXPUF_BUILD_EXAMPLES=OFF
cmake --build "${prefix}-tsan" -j "${jobs}" --target test_parallel
"${prefix}-tsan/tests/test_parallel"

echo
echo "CI OK"
