#!/usr/bin/env bash
# CI entry point — three-job build matrix with per-job logs:
#
#   release   Release, -DXPUF_WERROR=ON, full ctest (incl. `-L lint`:
#             the semantic engine over the tree, the fixture suite
#             tests/test_lint_semantic, and .clang-tidy validation)
#   lint      xpuf_lint --format json artifact (bench_out/ci/
#             lint_report.json) gated by tools/check_lint_baseline.py:
#             zero violations, per-rule suppression counts within the
#             shrink-only budget in tools/lint_baseline.json
#   fanalyzer GCC -fanalyzer sweep of src/net/ + src/common/ (the two
#             subsystems driven by external state machines); any
#             -Wanalyzer- diagnostic besides the known-FP
#             uninitialized-value checker fails the job
#   bench     bench_scan_throughput A/B (scalar vs batched core) and
#             bench_enroll_throughput A/B (materialized vs streaming
#             enrollment, incl. the fixed-memory RSS assertion); both
#             binaries assert bit-identity, the gate checks each timing
#             JSON and that the optimized side has not regressed —
#             tools/check_bench_regression.py)
#   store     bench_db_scale at CI scale (sharded enrollment store: binary
#             log enrollment, LRU-bounded authentication with the in-run
#             flat-RSS and zero-metrics-drift audits, cold-replay recovery,
#             compaction); the gate checks the timing JSON and that the
#             LRU-cached serve path has not regressed behind cold replay
#   auth      bench_auth_throughput at CI scale (batched screening vs the
#             serial reference walk, pooled issuance vs live screening —
#             both asserted bit-identical in-run, with the zero-drift and
#             flat-RSS audits in the exit code); gates: auth.*/db.mmap_*
#             counter schema (--expect-auth) and both A/B timing pairs
#   metrics   one bench run with --metrics-out, then a JSON schema check of
#             the snapshot (tools/check_metrics_schema.py): counters/gauges/
#             histograms/spans shape, nonzero selection cost, nonzero replay
#             rejections from the re-seeded second authentication
#   service   bench_service_load over a faulty wire (exit code is the
#             zero-drift audit), net.* counter schema check (--expect-net),
#             and tests/test_service under TSan
#   service-socket
#             bench_service_load --transport socket: the epoll event-loop
#             engine over 1000 concurrent localhost connections, reconciled
#             bit-for-bit against the lockstep oracle plus a starved-queue
#             overload phase (exit code is the audit); net.async.* schema
#             check (--expect-net-socket), lockstep-vs-socket timing gate,
#             and tests/test_async_service under TSan
#   asan      ASan+UBSan RelWithDebInfo, full test suite
#   tsan      TSan RelWithDebInfo, parallel-layer tests
#             (tests/test_parallel.cpp hammers the pool with 1/2/8-lane
#             configurations, so TSan sees every synchronization path of
#             common/parallel.cpp and the staged-buffer commits in the
#             scan/attack/GEMM code)
#
# plus a clang-tidy pass (tools/tidy.sh — skips cleanly when LLVM is absent).
# Every job tees its output to bench_out/ci/<job>.log so a red matrix can be
# triaged without re-running.
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 2)"
logdir="bench_out/ci"
mkdir -p "${logdir}"

run_job() {
  local name="$1"
  shift
  echo "== ${name} =="
  if "$@" >"${logdir}/${name}.log" 2>&1; then
    echo "   ok (log: ${logdir}/${name}.log)"
  else
    echo "   FAILED — tail of ${logdir}/${name}.log:" >&2
    tail -n 40 "${logdir}/${name}.log" >&2
    return 1
  fi
}

# NOTE: each job chains with && — `set -e` is suspended inside functions
# called from an `if` condition, so a plain sequence would keep going (and
# e.g. run ctest on a half-built tree) after a failed build step.
release_job() {
  cmake -B "${prefix}" -S . -DCMAKE_BUILD_TYPE=Release -DXPUF_WERROR=ON &&
    cmake --build "${prefix}" -j "${jobs}" &&
    ctest --test-dir "${prefix}" --output-on-failure -j "${jobs}"
}

asan_job() {
  cmake -B "${prefix}-asan" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DXPUF_SANITIZE=address,undefined \
    -DXPUF_WERROR=ON \
    -DXPUF_BUILD_BENCHMARKS=OFF \
    -DXPUF_BUILD_EXAMPLES=OFF &&
    cmake --build "${prefix}-asan" -j "${jobs}" &&
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
      ctest --test-dir "${prefix}-asan" --output-on-failure -j "${jobs}"
}

tsan_configure() {
  cmake -B "${prefix}-tsan" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DXPUF_SANITIZE=thread \
    -DXPUF_WERROR=ON \
    -DXPUF_BUILD_BENCHMARKS=OFF \
    -DXPUF_BUILD_EXAMPLES=OFF
}

tsan_job() {
  tsan_configure &&
    cmake --build "${prefix}-tsan" -j "${jobs}" --target test_parallel &&
    "${prefix}-tsan/tests/test_parallel"
}

# Service layer end-to-end: the Release load bench over a faulty wire (its
# exit code IS the zero-drift audit), the net.* schema check on its snapshot,
# and the engine test suite under TSan (shard workers + sharded counters).
service_job() {
  "${prefix}/bench/bench_service_load" \
    --devices 24 --threads 2 \
    --metrics-out "${logdir}/service_metrics.json" &&
    if command -v python3 >/dev/null 2>&1; then
      python3 tools/check_metrics_schema.py "${logdir}/service_metrics.json" --expect-net
    else
      echo "python3 absent; schema check skipped (snapshot at ${logdir}/service_metrics.json)"
    fi &&
    tsan_configure &&
    cmake --build "${prefix}-tsan" -j "${jobs}" --target test_service &&
    "${prefix}-tsan/tests/test_service"
}

# Event-loop socket service end-to-end: the Release socket bench at the
# 1000-connection acceptance floor (its exit code IS the oracle
# reconciliation + zero-drift + overload audit), the net.async.* schema
# check on its snapshot, the lockstep-vs-socket timing gate, and the async
# engine suite under TSan (epoll readiness + timer wheel + stream decoder).
service_socket_job() {
  "${prefix}/bench/bench_service_load" --transport socket --devices 1000 \
    --metrics-out "${logdir}/service_socket_metrics.json" &&
    if command -v python3 >/dev/null 2>&1; then
      python3 tools/check_metrics_schema.py \
        "${logdir}/service_socket_metrics.json" --expect-net-socket &&
        python3 tools/check_bench_regression.py \
          bench_out/service_socket_timing.json
    else
      echo "python3 absent; schema check skipped (snapshot at ${logdir}/service_socket_metrics.json)"
    fi &&
    tsan_configure &&
    cmake --build "${prefix}-tsan" -j "${jobs}" --target test_async_service &&
    "${prefix}-tsan/tests/test_async_service"
}

# Scan-throughput A/B: scalar vs batched evaluation core on the acceptance
# workload. The binary itself asserts the two modes are bit-identical (and
# the timed mode thread-count-deterministic); the schema gate then checks
# the timing artifact and that batched hasn't regressed behind scalar.
# Enrollment throughput runs the same way at a CI-sized challenge count:
# the binary asserts streaming == materialized bit-identity and the
# fixed-memory RSS bound, the gate checks the timing artifact and that
# streaming hasn't regressed behind materialized.
bench_job() {
  "${prefix}/bench/bench_scan_throughput" --threads 1 &&
    if command -v python3 >/dev/null 2>&1; then
      python3 tools/check_bench_regression.py bench_out/scan_throughput_timing.json
    else
      echo "python3 absent; timing check skipped (bench_out/scan_throughput_timing.json)"
    fi &&
    "${prefix}/bench/bench_enroll_throughput" --threads 1 --challenges 131072 &&
    if command -v python3 >/dev/null 2>&1; then
      python3 tools/check_bench_regression.py bench_out/enroll_throughput_timing.json
    else
      echo "python3 absent; timing check skipped (bench_out/enroll_throughput_timing.json)"
    fi
}

# Enrollment-store scale bench at a CI-sized fleet. The binary itself is
# the crash-safety/accounting audit (flat RSS with the LRU at 1% of the
# fleet, cache/ledger/shard counter identities, cold-replay equivalence,
# compaction round-trip); the gate checks the timing artifact and that the
# cached serve path has not regressed behind uncached cold replay.
store_job() {
  "${prefix}/bench/bench_db_scale" --devices 4000 --auths 800 &&
    if command -v python3 >/dev/null 2>&1; then
      python3 tools/check_bench_regression.py bench_out/db_scale_timing.json
    else
      echo "python3 absent; timing check skipped (bench_out/db_scale_timing.json)"
    fi
}

# Authentication hot path at CI scale. The binary's exit code IS the audit
# (bit-identical screening modes, pure pooled drains, zero metrics drift,
# flat RSS); the gates then check the auth.*/db.mmap_* counter schema and
# both A/B pairs (batched-screening, pooled-issue) for regressions. The
# acceptance-scale >= 3x pooled floor runs on the million-device fleet
# (BENCH_auth_throughput.json), not here — CI shares one noisy core.
auth_job() {
  "${prefix}/bench/bench_auth_throughput" --devices 4000 --auths 800 \
    --metrics-out "${logdir}/auth_metrics.json" &&
    if command -v python3 >/dev/null 2>&1; then
      python3 tools/check_metrics_schema.py "${logdir}/auth_metrics.json" \
        --expect-auth &&
        python3 tools/check_bench_regression.py bench_out/auth_throughput_timing.json
    else
      echo "python3 absent; gates skipped (bench_out/auth_throughput_timing.json)"
    fi
}

# Lint artifact + suppression-budget gate. The engine's exit code is folded
# into the python gate (which prints the offending findings); without
# python3 the raw exit code is the gate.
lint_job() {
  local status=0
  "${prefix}/tools/xpuf_lint" --root . --format json \
    --out "${logdir}/lint_report.json" || status=$?
  if command -v python3 >/dev/null 2>&1; then
    python3 tools/check_lint_baseline.py "${logdir}/lint_report.json" \
      tools/lint_baseline.json
  else
    echo "python3 absent; budget gate skipped (report at ${logdir}/lint_report.json)"
    [ "${status}" -eq 0 ]
  fi
}

# GCC static analyzer over the protocol and concurrency layers — the code
# paths driven by externally-supplied bytes and thread scheduling, where the
# analyzer's path-sensitive checks (leaks, use-after-free, infinite loops)
# pay off. -Wanalyzer-use-of-uninitialized-value is disabled: GCC 12 reports
# known false positives through libstdc++ string internals and the
# thread-pool lambda captures. Anything else fails the job.
fanalyzer_job() {
  local diags="${logdir}/fanalyzer_diagnostics.log"
  : >"${diags}"
  local tu
  for tu in src/net/*.cpp src/common/*.cpp; do
    echo "-- ${tu}"
    g++ -std=c++20 -Isrc -O1 -fanalyzer \
      -Wno-analyzer-use-of-uninitialized-value \
      -c -o /dev/null "${tu}" 2>>"${diags}" || {
      echo "fanalyzer: ${tu} failed to compile:" >&2
      tail -n 20 "${diags}" >&2
      return 1
    }
  done
  if grep -q -- "-Wanalyzer-" "${diags}"; then
    echo "fanalyzer: unexpected analyzer diagnostics:" >&2
    grep -- "-Wanalyzer-" "${diags}" >&2
    return 1
  fi
  echo "analyzer sweep clean (diagnostics log: ${diags})"
}

metrics_job() {
  "${prefix}/bench/bench_tabB_authentication" \
    --challenges 4000 --trials 1000 --chips 1 \
    --metrics-out "${logdir}/tabB_metrics.json" &&
    if command -v python3 >/dev/null 2>&1; then
      python3 tools/check_metrics_schema.py "${logdir}/tabB_metrics.json"
    else
      echo "python3 absent; schema check skipped (snapshot at ${logdir}/tabB_metrics.json)"
    fi
}

run_job release release_job
run_job lint lint_job
run_job fanalyzer fanalyzer_job
run_job bench bench_job
run_job store store_job
run_job auth auth_job
run_job metrics metrics_job
run_job service service_job
run_job service-socket service_socket_job
run_job asan asan_job
run_job tsan tsan_job
run_job tidy ./tools/tidy.sh "${prefix}-tidy"

echo
echo "CI OK (logs under ${logdir}/)"
