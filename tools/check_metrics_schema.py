#!/usr/bin/env python3
"""Validates a --metrics-out JSON snapshot (tools/ci.sh `metrics` job).

Checks the structural schema every consumer of the observability layer
relies on, plus the protocol accounting the paper's Fig 7 flow must never
silently drop: nonzero selection cost and — when the run exercised the
replay ledger — nonzero replay rejections.

Usage: check_metrics_schema.py <snapshot.json> [--allow-zero-replay]
"""
import json
import sys


def fail(msg: str) -> None:
    print(f"metrics schema: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: check_metrics_schema.py <snapshot.json> [--allow-zero-replay]")
    path = sys.argv[1]
    allow_zero_replay = "--allow-zero-replay" in sys.argv[2:]
    try:
        with open(path, encoding="utf-8") as f:
            snap = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    for key, kind in [("name", str), ("threads", int), ("counters", dict),
                      ("gauges", dict), ("histograms", dict), ("spans", dict)]:
        if key not in snap:
            fail(f"missing top-level key '{key}'")
        if not isinstance(snap[key], kind):
            fail(f"'{key}' must be {kind.__name__}, got {type(snap[key]).__name__}")

    for name, value in snap["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"counter '{name}' must be a non-negative integer, got {value!r}")
    for name, value in snap["gauges"].items():
        if not isinstance(value, (int, float)):
            fail(f"gauge '{name}' must be numeric, got {value!r}")
    for name, h in snap["histograms"].items():
        if sorted(h) != ["bounds", "counts", "total"]:
            fail(f"histogram '{name}' must have exactly bounds/counts/total")
        if len(h["counts"]) != len(h["bounds"]) + 1:
            fail(f"histogram '{name}': counts must have bounds+1 entries")
        if h["bounds"] != sorted(h["bounds"]):
            fail(f"histogram '{name}': bounds must be ascending")
        if sum(h["counts"]) != h["total"]:
            fail(f"histogram '{name}': counts sum to {sum(h['counts'])}, total says {h['total']}")
    for name, s in snap["spans"].items():
        if "calls" not in s or not isinstance(s["calls"], int) or s["calls"] <= 0:
            fail(f"span '{name}' must report a positive integer call count")
        if "seconds" in s and (not isinstance(s["seconds"], (int, float)) or s["seconds"] < 0):
            fail(f"span '{name}' seconds must be non-negative")

    # Protocol accounting the bugfixes restored (ISSUE 3): selection cost and
    # replay rejections must be visible, not silently zero.
    tried = snap["counters"].get("selection.candidates_tried", 0)
    if tried <= 0:
        fail("counter 'selection.candidates_tried' absent or zero — selection cost lost")
    replay = snap["counters"].get("auth.replay_rejected")
    if replay is None:
        fail("counter 'auth.replay_rejected' absent — replay accounting lost")
    if replay <= 0 and not allow_zero_replay:
        fail("counter 'auth.replay_rejected' is zero but the run replays a session")
    if not snap["spans"]:
        fail("no spans recorded — TraceSpan instrumentation missing")

    print(f"metrics schema: OK ({path}: {len(snap['counters'])} counters, "
          f"{len(snap['spans'])} spans, selection.candidates_tried={tried}, "
          f"auth.replay_rejected={replay})")


if __name__ == "__main__":
    main()
