#!/usr/bin/env python3
"""Validates a --metrics-out JSON snapshot (tools/ci.sh `metrics` job).

Checks the structural schema every consumer of the observability layer
relies on, plus the protocol accounting the paper's Fig 7 flow must never
silently drop: nonzero selection cost and — when the run exercised the
replay ledger — nonzero replay rejections.

With --expect-net the snapshot must additionally carry the service-layer
net.* counters (tools/ci.sh `service` job, fed by bench_service_load) and
they must satisfy the frame-conservation and session-partition relations
the ServiceEngine reconciles.

With --expect-auth (tools/ci.sh `auth` job, fed by bench_auth_throughput)
the snapshot must carry the issuance-pool and zero-copy-serving counters
and they must satisfy the pool ledger relations: every issue() is exactly
one pool hit or one pool miss, refills actually ran and their screening
cost is visible in the selection.candidates_tried ledger, and mmap bytes
flow only when mmap hits occur.

With --expect-net-socket (tools/ci.sh `service-socket` job, fed by
bench_service_load --transport socket) the net.* relations above must hold
AND the event-loop layer must show its work: the net.async.* counters
present, nonzero accepted connections, byte conservation
(bytes_read == bytes_written at quiescence), overload evidence
(request_overflow > 0 — the CI bench always runs its starved-queue phase),
and a session latency histogram accounting for every opened session.

Usage: check_metrics_schema.py <snapshot.json>
       [--allow-zero-replay] [--expect-net] [--expect-net-socket]
"""
import json
import sys


def fail(msg: str) -> None:
    print(f"metrics schema: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_net_counters(counters: dict) -> str:
    """Validates the service-layer counters; returns a one-line summary."""
    required = [
        "net.frames_sent", "net.frames_delivered", "net.frames_corrupt",
        "net.frames_dropped", "net.frames_duplicated", "net.frames_truncated",
        "net.frames_bitflipped", "net.sessions_opened", "net.session_approved",
        "net.session_denied", "net.session_rejected", "net.session_failed",
        "net.retries",
    ]
    for name in required:
        if name not in counters:
            fail(f"--expect-net: counter '{name}' absent")
    c = counters
    if c["net.frames_sent"] <= 0:
        fail("--expect-net: 'net.frames_sent' is zero — no traffic recorded")
    # Endpoint counts can only lose frames to the wire, never invent them
    # (corrupt frames are a subset of delivered: they arrive, then fail to
    # decode).
    if c["net.frames_delivered"] > c["net.frames_sent"] + c["net.frames_duplicated"]:
        fail("--expect-net: more frames arrived than were sent (+duplicated)")
    if c["net.frames_corrupt"] > c["net.frames_delivered"]:
        fail("--expect-net: frames_corrupt exceeds frames_delivered")
    # Corruption has exactly two injection sources.
    if c["net.frames_corrupt"] != c["net.frames_truncated"] + c["net.frames_bitflipped"]:
        fail("--expect-net: frames_corrupt != frames_truncated + frames_bitflipped")
    # Terminal states partition the opened sessions.
    terminals = (c["net.session_approved"] + c["net.session_denied"] +
                 c["net.session_rejected"] + c["net.session_failed"])
    if terminals != c["net.sessions_opened"]:
        fail(f"--expect-net: {terminals} terminal sessions but "
             f"{c['net.sessions_opened']} opened — not a partition")
    return (f"net: frames_sent={c['net.frames_sent']} "
            f"corrupt={c['net.frames_corrupt']} retries={c['net.retries']} "
            f"sessions={c['net.sessions_opened']}")


def check_socket_counters(counters: dict, histograms: dict) -> str:
    """Validates the event-loop net.async.* layer; returns a summary."""
    required = [
        "net.async.bytes_read", "net.async.bytes_written",
        "net.async.connections_accepted", "net.async.connections_closed",
        "net.async.accept_overflow", "net.async.request_overflow",
        "net.async.timers_fired", "net.async.resync_bytes",
        "net.async.write_overflow",
    ]
    for name in required:
        if name not in counters:
            fail(f"--expect-net-socket: counter '{name}' absent")
    c = counters
    if c["net.async.connections_accepted"] <= 0:
        fail("--expect-net-socket: no connections accepted — the event loop "
             "never served a socket")
    if c["net.async.bytes_read"] <= 0:
        fail("--expect-net-socket: 'net.async.bytes_read' is zero")
    # Loopback quiescence: every written byte was read back before teardown.
    if c["net.async.bytes_read"] != c["net.async.bytes_written"]:
        fail(f"--expect-net-socket: byte conservation broken — read "
             f"{c['net.async.bytes_read']} != written "
             f"{c['net.async.bytes_written']}")
    # Every accepted connection (and every client socket) is eventually
    # closed and counted; a gap means a descriptor left the loop untracked.
    if c["net.async.connections_closed"] < c["net.async.connections_accepted"]:
        fail("--expect-net-socket: fewer connections closed than accepted")
    # The CI bench always runs its starved-queue overload phase, so a
    # snapshot without request-queue overflow means the typed-backpressure
    # path went unexercised.
    if c["net.async.request_overflow"] <= 0:
        fail("--expect-net-socket: 'net.async.request_overflow' is zero — "
             "the overload/busy-NACK path went unexercised")
    if c["net.async.timers_fired"] <= 0:
        fail("--expect-net-socket: no timers fired — retry/TTL deadlines "
             "cannot have been armed")
    lat = histograms.get("net.async.session_latency_ms")
    if lat is None:
        fail("--expect-net-socket: histogram 'net.async.session_latency_ms' absent")
    if lat["total"] != c.get("net.sessions_opened", -1):
        fail(f"--expect-net-socket: latency histogram holds {lat['total']} "
             f"sessions but {c.get('net.sessions_opened')} were opened")
    return (f"socket: connections={c['net.async.connections_accepted']} "
            f"bytes={c['net.async.bytes_read']} "
            f"request_overflow={c['net.async.request_overflow']} "
            f"latency_sessions={lat['total']}")


def check_auth_counters(counters: dict, gauges: dict, histograms: dict) -> str:
    """Validates the issuance-pool / zero-copy-serving ledger; returns a summary."""
    required = [
        "db.issue_requests", "auth.pool_hits", "auth.pool_misses",
        "auth.pool_refills", "db.mmap_hits", "db.mmap_bytes",
    ]
    for name in required:
        if name not in counters:
            fail(f"--expect-auth: counter '{name}' absent")
    c = counters
    if c["db.issue_requests"] <= 0:
        fail("--expect-auth: 'db.issue_requests' is zero — no issuance recorded")
    # Every issue() resolves to exactly one of the two pool verdicts.
    if c["auth.pool_hits"] + c["auth.pool_misses"] != c["db.issue_requests"]:
        fail(f"--expect-auth: pool_hits ({c['auth.pool_hits']}) + pool_misses "
             f"({c['auth.pool_misses']}) != issue_requests ({c['db.issue_requests']})")
    if c["auth.pool_hits"] <= 0:
        fail("--expect-auth: 'auth.pool_hits' is zero — the pooled fast path "
             "went unexercised")
    if c["auth.pool_refills"] <= 0:
        fail("--expect-auth: 'auth.pool_refills' is zero — pools were never "
             "screened/topped up")
    # Refill screening must show its work in the selection cost ledger: each
    # screen() batch lands one observation in selection.batch_candidates, and
    # accepted challenges are a subset of tried candidates.
    tried = c.get("selection.candidates_tried", 0)
    accepted = c.get("selection.accepted", 0)
    if accepted <= 0 or accepted > tried:
        fail(f"--expect-auth: selection.accepted ({accepted}) must be positive "
             f"and <= selection.candidates_tried ({tried})")
    batches = histograms.get("selection.batch_candidates")
    if batches is None or batches["total"] < c["auth.pool_refills"]:
        fail("--expect-auth: 'selection.batch_candidates' must record at least "
             "one screening batch per pool refill")
    # Zero-copy serving: bytes flow iff mapped hits occurred.
    if (c["db.mmap_hits"] > 0) != (c["db.mmap_bytes"] > 0):
        fail(f"--expect-auth: mmap_hits ({c['db.mmap_hits']}) and mmap_bytes "
             f"({c['db.mmap_bytes']}) must be zero or nonzero together")
    if "auth.pool_size" not in gauges:
        fail("--expect-auth: gauge 'auth.pool_size' absent")
    return (f"auth: issues={c['db.issue_requests']} hits={c['auth.pool_hits']} "
            f"refills={c['auth.pool_refills']} mmap_hits={c['db.mmap_hits']}")


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: check_metrics_schema.py <snapshot.json>"
             " [--allow-zero-replay] [--expect-net] [--expect-auth]")
    path = sys.argv[1]
    allow_zero_replay = "--allow-zero-replay" in sys.argv[2:]
    expect_auth = "--expect-auth" in sys.argv[2:]
    expect_net_socket = "--expect-net-socket" in sys.argv[2:]
    # The socket job checks every lockstep net.* relation first, then the
    # event-loop layer on top.
    expect_net = "--expect-net" in sys.argv[2:] or expect_net_socket
    # The service bench replies to retransmitted submits from its result
    # cache, so a clean service snapshot legitimately has zero replays; the
    # auth bench issues disjoint challenge batches, so the same applies.
    allow_zero_replay = allow_zero_replay or expect_net or expect_auth
    try:
        with open(path, encoding="utf-8") as f:
            snap = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    for key, kind in [("name", str), ("threads", int), ("counters", dict),
                      ("gauges", dict), ("histograms", dict), ("spans", dict)]:
        if key not in snap:
            fail(f"missing top-level key '{key}'")
        if not isinstance(snap[key], kind):
            fail(f"'{key}' must be {kind.__name__}, got {type(snap[key]).__name__}")

    for name, value in snap["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"counter '{name}' must be a non-negative integer, got {value!r}")
    for name, value in snap["gauges"].items():
        if not isinstance(value, (int, float)):
            fail(f"gauge '{name}' must be numeric, got {value!r}")
    for name, h in snap["histograms"].items():
        if sorted(h) != ["bounds", "counts", "total"]:
            fail(f"histogram '{name}' must have exactly bounds/counts/total")
        if len(h["counts"]) != len(h["bounds"]) + 1:
            fail(f"histogram '{name}': counts must have bounds+1 entries")
        if h["bounds"] != sorted(h["bounds"]):
            fail(f"histogram '{name}': bounds must be ascending")
        if sum(h["counts"]) != h["total"]:
            fail(f"histogram '{name}': counts sum to {sum(h['counts'])}, total says {h['total']}")
    live_spans = 0
    for name, s in snap["spans"].items():
        # A span registered before a mid-run MetricsRegistry::reset() (the
        # socket bench resets between its oracle and event-loop phases)
        # legitimately reports zero calls — but then it must also report
        # zero time, and at least one span in the snapshot must be live.
        if "calls" not in s or not isinstance(s["calls"], int) or s["calls"] < 0:
            fail(f"span '{name}' must report a non-negative integer call count")
        if "seconds" in s and (not isinstance(s["seconds"], (int, float)) or s["seconds"] < 0):
            fail(f"span '{name}' seconds must be non-negative")
        if s["calls"] > 0:
            live_spans += 1
        elif s.get("seconds", 0) != 0:
            fail(f"span '{name}' reports zero calls but nonzero seconds")
    if snap["spans"] and live_spans == 0:
        fail("every span reports zero calls — instrumentation never ran")

    # Protocol accounting the bugfixes restored (ISSUE 3): selection cost and
    # replay rejections must be visible, not silently zero.
    tried = snap["counters"].get("selection.candidates_tried", 0)
    if tried <= 0:
        fail("counter 'selection.candidates_tried' absent or zero — selection cost lost")
    replay = snap["counters"].get("auth.replay_rejected")
    if replay is None:
        fail("counter 'auth.replay_rejected' absent — replay accounting lost")
    if replay <= 0 and not allow_zero_replay:
        fail("counter 'auth.replay_rejected' is zero but the run replays a session")
    if not snap["spans"]:
        fail("no spans recorded — TraceSpan instrumentation missing")

    net_summary = ""
    if expect_auth:
        net_summary += "; " + check_auth_counters(snap["counters"], snap["gauges"],
                                                  snap["histograms"])
    if expect_net:
        net_summary += "; " + check_net_counters(snap["counters"])
    if expect_net_socket:
        net_summary += "; " + check_socket_counters(snap["counters"],
                                                   snap["histograms"])

    print(f"metrics schema: OK ({path}: {len(snap['counters'])} counters, "
          f"{len(snap['spans'])} spans, selection.candidates_tried={tried}, "
          f"auth.replay_rejected={replay}{net_summary})")


if __name__ == "__main__":
    main()
